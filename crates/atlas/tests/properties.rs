//! Property tests for knee detection and the pipeline stages.

use ar_atlas::{
    allocation_count_knee, detect_dynamic, find_knee, ConnLogEntry, ConnectionLog, PipelineConfig,
    ProbeId,
};
use ar_simnet::asn::Asn;
use ar_simnet::time::{SimTime, TimeWindow};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// find_knee never panics and always returns an in-range point.
    #[test]
    fn kneedle_total(ys in proptest::collection::vec(-1e5f64..1e5, 0..300), s in 0.1f64..4.0) {
        let points: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        if let Some(k) = find_knee(&points, s) {
            prop_assert!(k.index < points.len());
            prop_assert_eq!(k.x, points[k.index].0);
            prop_assert_eq!(k.y, points[k.index].1);
        }
    }

    /// allocation_count_knee returns a value inside the multi-allocation
    /// support when it returns at all.
    #[test]
    fn knee_in_support(counts in proptest::collection::vec(1u32..2_000, 0..500)) {
        if let Some(knee) = allocation_count_knee(&counts, 1.0) {
            let max = counts.iter().copied().max().unwrap_or(0);
            prop_assert!(knee >= 2);
            prop_assert!(knee <= max.max(2));
        }
    }

    /// Pipeline funnels are always monotone on arbitrary logs, and the
    /// detected addresses always appear in the log.
    #[test]
    fn pipeline_monotone(
        raw in proptest::collection::vec(
            (0u32..20, 0u64..500, any::<u32>()),
            0..400,
        )
    ) {
        let mut entries: Vec<ConnLogEntry> = raw
            .iter()
            .map(|&(probe, day, ip)| ConnLogEntry {
                probe: ProbeId(probe),
                time: SimTime(day * 86_400),
                ip: Ipv4Addr::from(ip),
            })
            .collect();
        entries.sort_by_key(|e| (e.probe, e.time));
        let log = ConnectionLog {
            window: TimeWindow::new(SimTime(0), SimTime(500 * 86_400)),
            entries,
        };
        // Map every address into one AS so the same-AS filter is permissive;
        // pipeline behaviour must still be monotone.
        let d = detect_dynamic(&log, &PipelineConfig::default(), |_| Some(Asn(1)));
        prop_assert!(d.all.probes.len() >= d.same_as.probes.len());
        prop_assert!(d.same_as.probes.len() >= d.frequent.probes.len());
        prop_assert!(d.frequent.probes.len() >= d.daily.probes.len());
        let logged: std::collections::HashSet<Ipv4Addr> =
            log.entries.iter().map(|e| e.ip).collect();
        for ip in &d.dynamic_addresses {
            prop_assert!(logged.contains(ip));
        }
        // covers() holds for every detected address.
        for ip in &d.dynamic_addresses {
            prop_assert!(d.covers(*ip));
        }
    }

    /// allocations_for collapses consecutive duplicates only.
    #[test]
    fn allocation_collapse(ips in proptest::collection::vec(0u32..4, 1..100)) {
        let entries: Vec<ConnLogEntry> = ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| ConnLogEntry {
                probe: ProbeId(0),
                time: SimTime(i as u64 * 100),
                ip: Ipv4Addr::from(ip),
            })
            .collect();
        let log = ConnectionLog {
            window: TimeWindow::new(SimTime(0), SimTime(1_000_000)),
            entries,
        };
        let allocations = log.allocations_for(ProbeId(0));
        // No two consecutive allocations share an address.
        for w in allocations.windows(2) {
            prop_assert_ne!(w[0].1, w[1].1);
        }
        // The collapsed sequence reproduces the original modulo repeats.
        let mut expect = Vec::new();
        for &ip in &ips {
            let ip = Ipv4Addr::from(ip);
            if expect.last() != Some(&ip) {
                expect.push(ip);
            }
        }
        let got: Vec<Ipv4Addr> = allocations.iter().map(|(_, ip)| *ip).collect();
        prop_assert_eq!(got, expect);
    }
}
