//! RIPE-Atlas probe fleet simulator.
//!
//! Every RIPE Atlas probe "connects to a central infrastructure … All
//! measurements are logged to include the unique probe ID and the IP
//! address through which the measurement was made" (§3.2). This module
//! produces those connection logs for the probe hosts of a universe:
//!
//! * probes on static or NAT attachments log one constant address,
//! * probes on dynamic subscriptions log every reallocation (from the
//!   shared [`AllocationPlan`], so the addresses are consistent with what
//!   the other substrates observe),
//! * *multi-AS movers* — the 13.1% of probes the paper excludes — relocate
//!   partway through the window and continue logging from a different AS.

use crate::probe::{ConnLogEntry, ConnectionLog, Probe, ProbeId};
use ar_simnet::alloc::AllocationPlan;
use ar_simnet::hosts::Attachment;
use ar_simnet::rng::Seed;
use ar_simnet::stats;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use ar_simnet::universe::Universe;
use rand::Rng;
use std::net::Ipv4Addr;

/// Interval between keepalive log entries when the address is unchanged.
const KEEPALIVE: SimDuration = SimDuration(7 * 86_400);

/// Build the probe fleet and its connection log over `window`.
///
/// `alloc` must be an [`AllocationPlan`] covering `window` that simulated
/// (at least) probe hosts — `InterestSet::ProbesOnly` or broader.
pub fn generate_fleet(
    universe: &Universe,
    alloc: &AllocationPlan,
    window: TimeWindow,
) -> (Vec<Probe>, ConnectionLog) {
    let mut probes = Vec::new();
    let mut entries: Vec<ConnLogEntry> = Vec::new();
    let mut rng = universe.seed.fork("atlas-fleet").rng();

    for host in universe.probe_hosts() {
        let probe_id = ProbeId(probes.len() as u32);
        probes.push(Probe {
            id: probe_id,
            host: host.id,
        });

        // Relocated probes exist on every attachment kind (the paper's
        // 13.1% multi-AS probes).
        if host.behavior.multi_as_mover {
            log_mover(
                universe,
                alloc,
                window,
                probe_id,
                host.id,
                universe.seed.fork_idx("mover", u64::from(host.id.0)),
                &mut entries,
            );
            continue;
        }

        match host.attachment {
            Attachment::Static { ip } => log_constant(probe_id, ip, window, &mut entries),
            Attachment::NatUser { nat, .. } => {
                // The probe sits behind the NAT; its logged public address
                // is the gateway's (constant).
                log_constant(probe_id, universe.nat(nat).ip, window, &mut entries)
            }
            Attachment::DynamicSub { .. } => {
                if let Some(tl) = alloc.timeline(host.id) {
                    for &(t, ip) in tl.events() {
                        entries.push(ConnLogEntry {
                            probe: probe_id,
                            time: t,
                            ip,
                        });
                    }
                    // Keepalives between events for realism of the raw log.
                    if let Some(&(last_t, last_ip)) = tl.events().last() {
                        let mut t = last_t + KEEPALIVE;
                        while t < window.end {
                            entries.push(ConnLogEntry {
                                probe: probe_id,
                                time: t,
                                ip: last_ip,
                            });
                            t += KEEPALIVE;
                        }
                    }
                } else {
                    // Not simulated (shouldn't happen with ProbesOnly, but
                    // stay total): fall back to a constant placeholder from
                    // its pool.
                    let pool = match host.attachment {
                        Attachment::DynamicSub { pool, .. } => universe.pool(pool),
                        _ => unreachable!(),
                    };
                    log_constant(probe_id, pool.range.first, window, &mut entries);
                }
            }
        }
        let _ = &mut rng;
    }

    entries.sort_by_key(|e| (e.probe, e.time));
    (probes, ConnectionLog { window, entries })
}

fn log_constant(probe: ProbeId, ip: Ipv4Addr, window: TimeWindow, entries: &mut Vec<ConnLogEntry>) {
    let mut t = window.start;
    while t < window.end {
        entries.push(ConnLogEntry { probe, time: t, ip });
        t += KEEPALIVE;
    }
}

/// A mover probe: first a real segment from its home pool, then one or two
/// synthetic segments in *different* ASes (disconnection + reinstallation
/// at a new site). The synthetic addresses come from real prefixes of the
/// destination AS so AS attribution works; they are never joined by-address
/// with other substrates.
fn log_mover(
    universe: &Universe,
    alloc: &AllocationPlan,
    window: TimeWindow,
    probe: ProbeId,
    host: ar_simnet::hosts::HostId,
    seed: Seed,
    entries: &mut Vec<ConnLogEntry>,
) {
    let mut rng = seed.rng();
    let move_at = SimTime(
        window.start.as_secs()
            + (window.duration().as_secs() as f64 * rng.gen_range(0.3..0.7)) as u64,
    );

    // Segment 1: the home network before the move — real pool allocations
    // for dynamic subscribers, the constant public address otherwise.
    match universe.host(host).attachment {
        Attachment::DynamicSub { .. } => {
            if let Some(tl) = alloc.timeline(host) {
                for &(t, ip) in tl.events() {
                    if t < move_at {
                        entries.push(ConnLogEntry { probe, time: t, ip });
                    }
                }
            }
        }
        Attachment::Static { ip } => {
            entries.push(ConnLogEntry {
                probe,
                time: window.start,
                ip,
            });
        }
        Attachment::NatUser { nat, .. } => {
            entries.push(ConnLogEntry {
                probe,
                time: window.start,
                ip: universe.nat(nat).ip,
            });
        }
    }

    // Segment 2: a different AS.
    let home_asn = universe.host(host).asn;
    let foreign: Vec<&ar_simnet::universe::PrefixRecord> = universe
        .prefixes
        .iter()
        .filter(|r| r.asn != home_asn)
        .collect();
    if foreign.is_empty() {
        return;
    }
    let rec = foreign[rng.gen_range(0..foreign.len())];
    // The new site may itself be dynamic: a handful of reallocations.
    let changes = rng.gen_range(1..6);
    let seg = TimeWindow::new(move_at, window.end);
    let mut t = seg.start;
    for _ in 0..changes {
        if t >= seg.end {
            break;
        }
        let ip = rec.prefix.host(rng.gen_range(1..255) as u8);
        entries.push(ConnLogEntry { probe, time: t, ip });
        let gap =
            stats::sample_exponential(&mut rng, seg.duration().as_secs() as f64 / changes as f64)
                .max(3600.0);
        t += SimDuration(gap as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::alloc::InterestSet;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::time::ATLAS_WINDOW;

    fn fixture() -> (Universe, AllocationPlan) {
        let u = Universe::generate(Seed(51), &UniverseConfig::tiny());
        let alloc = AllocationPlan::build(&u, ATLAS_WINDOW, InterestSet::ProbesOnly);
        (u, alloc)
    }

    #[test]
    fn fleet_matches_probe_hosts() {
        let (u, alloc) = fixture();
        let (probes, log) = generate_fleet(&u, &alloc, ATLAS_WINDOW);
        assert_eq!(probes.len(), u.probe_hosts().count());
        assert!(!log.entries.is_empty());
        // Log is sorted per probe.
        for w in log.entries.windows(2) {
            assert!((w[0].probe, w[0].time) <= (w[1].probe, w[1].time));
        }
    }

    #[test]
    fn static_probes_log_one_address() {
        let (u, alloc) = fixture();
        let (probes, log) = generate_fleet(&u, &alloc, ATLAS_WINDOW);
        let mut verified = 0;
        for p in &probes {
            if u.host(p.host).behavior.multi_as_mover {
                continue; // relocated probes legitimately change address
            }
            if let Attachment::Static { ip } = u.host(p.host).attachment {
                let addrs: std::collections::HashSet<_> =
                    log.entries_for(p.id).map(|e| e.ip).collect();
                assert_eq!(addrs.len(), 1);
                assert!(addrs.contains(&ip));
                verified += 1;
            }
        }
        assert!(verified > 0, "tiny universe has static probes");
    }

    #[test]
    fn dynamic_probes_log_reallocation_events() {
        let (u, alloc) = fixture();
        let (probes, log) = generate_fleet(&u, &alloc, ATLAS_WINDOW);
        let mut multi = 0;
        for p in &probes {
            if !matches!(u.host(p.host).attachment, Attachment::DynamicSub { .. }) {
                continue;
            }
            if u.host(p.host).behavior.multi_as_mover {
                continue;
            }
            let addrs: std::collections::HashSet<_> = log.entries_for(p.id).map(|e| e.ip).collect();
            if addrs.len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 0, "dynamic probes must show address changes");
    }

    #[test]
    fn movers_span_multiple_ases() {
        let (u, alloc) = fixture();
        let (probes, log) = generate_fleet(&u, &alloc, ATLAS_WINDOW);
        let mut movers_checked = 0;
        for p in &probes {
            let h = u.host(p.host);
            if !h.behavior.multi_as_mover {
                continue;
            }
            let ases: std::collections::HashSet<_> = log
                .entries_for(p.id)
                .filter_map(|e| u.asn_of(e.ip))
                .collect();
            if ases.len() >= 2 {
                movers_checked += 1;
            }
        }
        assert!(movers_checked > 0, "some movers span ASes");
    }
}
