//! The dynamic-address detection pipeline (paper §3.2, Figures 2 and 4).
//!
//! Stages, each a pure function of the connection log plus an IP→AS
//! resolver (standing in for public BGP data):
//!
//! 0. **All probes** — every /24 ever hosting a probe address ("RIPE
//!    prefixes"; the paper had 90.5K of them).
//! 1. **Same-AS** — discard probes whose addresses span multiple ASes
//!    (relocated devices; 13.1% in the paper).
//! 2. **Frequent** — keep probes with at least *knee* allocations, the knee
//!    found by Kneedle on the sorted allocation-count curve (paper: 8).
//! 3. **Daily** — keep probes whose mean time between changes is within
//!    one day; their covering /24s are the dynamically allocated prefixes.

use crate::kneedle;
use crate::probe::{ConnectionLog, ProbeId};
use ar_simnet::asn::Asn;
use ar_simnet::ip::Prefix24;
use ar_simnet::par;
use ar_simnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Pipeline knobs. Defaults reproduce the paper; the alternates feed the
/// ablation experiments.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Kneedle sensitivity (paper uses the offline default).
    pub knee_sensitivity: f64,
    /// Override the knee with a fixed allocation-count threshold
    /// (`ablation_knee` sweeps this).
    pub knee_override: Option<u32>,
    /// Maximum mean inter-change duration for the final stage
    /// (paper: 1 day). `None` disables the filter (ablation).
    pub max_mean_interchange: Option<SimDuration>,
    /// Expand detected addresses to their covering /24 (paper's
    /// conservative choice). `false` marks only the observed addresses
    /// (`ablation_prefix`).
    pub expand_to_prefix: bool,
    /// Worker threads for the per-probe summarization fan-out. `None`
    /// resolves to the ambient budget (`AR_THREADS`, else available
    /// parallelism); output is identical for any value.
    pub threads: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            knee_sensitivity: 1.0,
            knee_override: None,
            max_mean_interchange: Some(SimDuration::from_days(1)),
            expand_to_prefix: true,
            threads: None,
        }
    }
}

/// Per-probe digest extracted from the raw log.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeSummary {
    pub probe: ProbeId,
    /// Distinct consecutive allocations (≥ 1).
    pub allocation_count: u32,
    /// ASes the probe's addresses map into (unmapped addresses count as a
    /// pseudo-AS each, making the probe multi-AS — conservative).
    pub as_count: u32,
    /// Mean time between address changes, when the probe changed at all.
    pub mean_interchange: Option<SimDuration>,
    /// Every address the probe held.
    pub addresses: Vec<Ipv4Addr>,
}

/// The probes and prefix set surviving a pipeline stage.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageSet {
    pub probes: Vec<ProbeId>,
    pub prefixes: BTreeSet<Prefix24>,
}

impl StageSet {
    fn from_probes<'a>(probes: impl Iterator<Item = &'a ProbeSummary>) -> StageSet {
        let mut set = StageSet::default();
        for p in probes {
            set.probes.push(p.probe);
            set.prefixes
                .extend(p.addresses.iter().map(|&ip| Prefix24::of(ip)));
        }
        set
    }
}

/// Full pipeline output.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicDetection {
    pub summaries: Vec<ProbeSummary>,
    /// The knee used as the frequent-changer threshold.
    pub knee: u32,
    /// Stage 0: all probes / all RIPE prefixes.
    pub all: StageSet,
    /// Stage 1: single-AS probes.
    pub same_as: StageSet,
    /// Stage 2: ≥ knee allocations.
    pub frequent: StageSet,
    /// Stage 3 (final): daily changers.
    pub daily: StageSet,
    /// The detected dynamic address space: covering /24s (or the bare
    /// addresses when prefix expansion is disabled).
    pub dynamic_prefixes: BTreeSet<Prefix24>,
    /// Raw addresses of final-stage probes.
    pub dynamic_addresses: BTreeSet<Ipv4Addr>,
}

impl DynamicDetection {
    /// Publish the detection funnel under `atlas.*`: per-stage survivors
    /// (gauges), per-stage drops (counters, so the funnel is auditable as
    /// kept + dropped = previous stage), the knee, and an
    /// allocations-per-probe histogram.
    pub fn record_obs(&self, obs: &ar_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.set_gauge("atlas.knee", i64::from(self.knee));
        let stages = [
            ("stage0_all", &self.all),
            ("stage1_same_as", &self.same_as),
            ("stage2_frequent", &self.frequent),
            ("stage3_daily", &self.daily),
        ];
        for (name, set) in stages {
            obs.set_gauge(
                &format!("atlas.funnel.{name}.probes"),
                set.probes.len() as i64,
            );
            obs.set_gauge(
                &format!("atlas.funnel.{name}.prefixes"),
                set.prefixes.len() as i64,
            );
        }
        obs.add("atlas.probes", self.all.probes.len() as u64);
        obs.add(
            "atlas.probes_dropped_multi_as",
            (self.all.probes.len() - self.same_as.probes.len()) as u64,
        );
        obs.add(
            "atlas.probes_dropped_infrequent",
            (self.same_as.probes.len() - self.frequent.probes.len()) as u64,
        );
        obs.add(
            "atlas.probes_dropped_slow",
            (self.frequent.probes.len() - self.daily.probes.len()) as u64,
        );
        obs.add("atlas.dynamic_prefixes", self.dynamic_prefixes.len() as u64);
        obs.add(
            "atlas.dynamic_addresses",
            self.dynamic_addresses.len() as u64,
        );
        let h = obs.histogram("atlas.allocations_per_probe");
        for s in &self.summaries {
            h.observe(u64::from(s.allocation_count));
        }
    }

    /// Is `ip` inside the detected dynamic space?
    pub fn covers(&self, ip: Ipv4Addr) -> bool {
        if self.dynamic_prefixes.contains(&Prefix24::of(ip)) {
            return true;
        }
        self.dynamic_addresses.contains(&ip)
    }
}

/// Run the full pipeline.
///
/// `asn_of` stands in for public IP→AS mapping data (route collectors);
/// in the reproduction it is backed by the universe's announced prefixes.
pub fn detect_dynamic(
    log: &ConnectionLog,
    config: &PipelineConfig,
    asn_of: impl Fn(Ipv4Addr) -> Option<Asn> + Sync,
) -> DynamicDetection {
    let summaries = summarize_threaded(log, &asn_of, par::resolve(config.threads));

    let all = StageSet::from_probes(summaries.iter());
    let same_as: Vec<&ProbeSummary> = summaries.iter().filter(|s| s.as_count <= 1).collect();
    let same_as_set = StageSet::from_probes(same_as.iter().copied());

    // Knee on the same-AS population's allocation counts (the paper's
    // Figure 2 curve).
    let counts: Vec<u32> = same_as.iter().map(|s| s.allocation_count).collect();
    let knee = config.knee_override.unwrap_or_else(|| {
        kneedle::allocation_count_knee(&counts, config.knee_sensitivity).unwrap_or(8)
    });

    let frequent: Vec<&ProbeSummary> = same_as
        .iter()
        .copied()
        .filter(|s| s.allocation_count >= knee)
        .collect();
    let frequent_set = StageSet::from_probes(frequent.iter().copied());

    let daily: Vec<&ProbeSummary> = frequent
        .iter()
        .copied()
        .filter(
            |s| match (config.max_mean_interchange, s.mean_interchange) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(max), Some(mean)) => mean <= max,
            },
        )
        .collect();
    let daily_set = StageSet::from_probes(daily.iter().copied());

    let dynamic_addresses: BTreeSet<Ipv4Addr> = daily
        .iter()
        .flat_map(|s| s.addresses.iter().copied())
        .collect();
    let dynamic_prefixes: BTreeSet<Prefix24> = if config.expand_to_prefix {
        daily_set.prefixes.clone()
    } else {
        BTreeSet::new()
    };

    DynamicDetection {
        summaries,
        knee,
        all,
        same_as: same_as_set,
        frequent: frequent_set,
        daily: daily_set,
        dynamic_prefixes,
        dynamic_addresses,
    }
}

/// Extract per-probe summaries from the raw log (single-threaded).
pub fn summarize(
    log: &ConnectionLog,
    asn_of: &(impl Fn(Ipv4Addr) -> Option<Asn> + Sync),
) -> Vec<ProbeSummary> {
    summarize_threaded(log, asn_of, 1)
}

/// [`summarize`] with the per-probe loop — the pipeline's hottest — fanned
/// out over up to `threads` scoped worker threads. Probes are independent
/// (each reads its own slice of the sorted log) and results come back in
/// probe order, so the summary vector is identical for any thread count.
pub fn summarize_threaded(
    log: &ConnectionLog,
    asn_of: &(impl Fn(Ipv4Addr) -> Option<Asn> + Sync),
    threads: usize,
) -> Vec<ProbeSummary> {
    let probes = log.probes();
    par::par_map(threads, &probes, |&probe| {
        let allocations = log.allocations_for(probe);
        let mut ases: BTreeSet<Option<Asn>> = BTreeSet::new();
        let mut addresses = Vec::with_capacity(allocations.len());
        for (_, ip) in &allocations {
            ases.insert(asn_of(*ip));
            addresses.push(*ip);
        }
        // Treat unmapped addresses conservatively: a None among Some's makes
        // the probe look multi-AS (we cannot vouch for single-AS-ness).
        let as_count = if ases.contains(&None) && !allocations.is_empty() {
            (ases.len()) as u32 + 1
        } else {
            ases.len() as u32
        };
        let mean_interchange = mean_interchange(&allocations);
        ProbeSummary {
            probe,
            allocation_count: allocations.len() as u32,
            as_count,
            mean_interchange,
            addresses,
        }
    })
}

/// Histogram of mean inter-change durations across probes, in day-sized
/// buckets (`[0,1)d`, `[1,2)d`, …, last bucket open-ended). Diagnostic for
/// the §3.2 "within 1 day" criterion: the first bucket is exactly the
/// population the final pipeline stage keeps.
pub fn interchange_histogram(summaries: &[ProbeSummary], buckets: usize) -> Vec<usize> {
    let mut hist = vec![0usize; buckets.max(1)];
    for s in summaries {
        if let Some(mean) = s.mean_interchange {
            let day = (mean.as_secs() / 86_400) as usize;
            let idx = day.min(hist.len() - 1);
            hist[idx] += 1;
        }
    }
    hist
}

fn mean_interchange(allocations: &[(SimTime, Ipv4Addr)]) -> Option<SimDuration> {
    if allocations.len() < 2 {
        return None;
    }
    let first = allocations.first().expect("nonempty").0;
    let last = allocations.last().expect("nonempty").0;
    Some(SimDuration(
        (last - first).as_secs() / (allocations.len() as u64 - 1),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ConnLogEntry;
    use ar_simnet::time::TimeWindow;

    const DAY: u64 = 86_400;

    struct LogBuilder {
        entries: Vec<ConnLogEntry>,
    }

    impl LogBuilder {
        fn new() -> Self {
            LogBuilder {
                entries: Vec::new(),
            }
        }
        /// Probe with `n` allocations spaced `gap_secs` apart, addresses in
        /// 10.<block>.x.0/24 space.
        fn probe(&mut self, id: u32, block: u8, n: u32, gap_secs: u64) -> &mut Self {
            for i in 0..n {
                self.entries.push(ConnLogEntry {
                    probe: ProbeId(id),
                    time: SimTime(u64::from(i) * gap_secs),
                    ip: Ipv4Addr::new(10, block, (i % 2) as u8, (i % 250) as u8 + 1),
                });
            }
            self
        }
        fn build(&mut self) -> ConnectionLog {
            self.entries.sort_by_key(|e| (e.probe, e.time));
            ConnectionLog {
                window: TimeWindow::new(SimTime(0), SimTime(500 * DAY)),
                entries: std::mem::take(&mut self.entries),
            }
        }
    }

    /// AS mapping: 10.<block>.0.0/16 → AS(block).
    fn asn_of(ip: Ipv4Addr) -> Option<Asn> {
        let o = ip.octets();
        (o[0] == 10).then(|| Asn(u32::from(o[1])))
    }

    fn default_run(log: &ConnectionLog) -> DynamicDetection {
        detect_dynamic(log, &PipelineConfig::default(), asn_of)
    }

    #[test]
    fn static_probes_never_detected() {
        let log = LogBuilder::new().probe(1, 1, 1, DAY).build();
        let d = default_run(&log);
        assert!(d.dynamic_prefixes.is_empty());
        assert_eq!(d.all.probes.len(), 1);
        assert_eq!(d.same_as.probes.len(), 1);
        assert!(d.frequent.probes.is_empty() || d.knee <= 1);
    }

    #[test]
    fn daily_changer_is_detected_and_expanded() {
        let mut b = LogBuilder::new();
        // Population: 30 static probes, 5 weekly changers, 5 daily changers
        // with 60 allocations each.
        for i in 0..30 {
            b.probe(i, 1, 1, DAY);
        }
        for i in 30..35 {
            b.probe(i, 2, 10, 7 * DAY);
        }
        for i in 35..40 {
            b.probe(i, 3, 60, DAY / 2);
        }
        let log = b.build();
        let d = default_run(&log);
        // The daily probes live in 10.3.0.0/16 → prefixes 10.3.0.0/24 and
        // 10.3.1.0/24.
        assert!(!d.daily.probes.is_empty(), "knee={}", d.knee);
        for p in &d.daily.probes {
            assert!(p.0 >= 35, "probe {p:?} wrongly classified daily");
        }
        assert!(d.dynamic_prefixes.contains(&"10.3.0.0/24".parse().unwrap()));
        assert!(
            d.covers(Ipv4Addr::new(10, 3, 0, 200)),
            "expansion covers siblings"
        );
        assert!(!d.covers(Ipv4Addr::new(10, 2, 0, 1)));
    }

    #[test]
    fn weekly_changers_filtered_by_daily_rule() {
        let mut b = LogBuilder::new();
        for i in 0..20 {
            b.probe(i, 1, 1, DAY);
        }
        // Frequent but slow: 20 allocations, one per week.
        for i in 20..25 {
            b.probe(i, 2, 20, 7 * DAY);
        }
        let log = b.build();
        let d = default_run(&log);
        // They pass the knee (20 ≥ knee) but fail the 1-day rule.
        assert!(d.frequent.probes.iter().any(|p| p.0 >= 20));
        assert!(d.daily.probes.is_empty());
        assert!(d.dynamic_prefixes.is_empty());
    }

    #[test]
    fn multi_as_probes_are_excluded_before_knee() {
        let mut b = LogBuilder::new();
        for i in 0..10 {
            b.probe(i, 1, 1, DAY);
        }
        // A fast changer that hops between AS 4 and AS 5: must be dropped.
        for i in 0..40u32 {
            b.entries.push(ConnLogEntry {
                probe: ProbeId(99),
                time: SimTime(u64::from(i) * DAY / 2),
                ip: Ipv4Addr::new(10, 4 + (i % 2) as u8, 0, 1 + (i % 200) as u8),
            });
        }
        let log = b.build();
        let d = default_run(&log);
        assert!(d.same_as.probes.iter().all(|p| p.0 != 99));
        assert!(d.daily.probes.is_empty());
        // But it still counts in stage 0.
        assert!(d.all.probes.contains(&ProbeId(99)));
    }

    #[test]
    fn knee_override_and_no_expansion() {
        let mut b = LogBuilder::new();
        for i in 0..10 {
            b.probe(i, 1, 1, DAY);
        }
        b.probe(50, 6, 4, DAY / 4); // 4 allocations, 6h apart
        let log = b.build();
        let config = PipelineConfig {
            knee_override: Some(4),
            expand_to_prefix: false,
            ..PipelineConfig::default()
        };
        let d = detect_dynamic(&log, &config, asn_of);
        assert_eq!(d.knee, 4);
        assert!(d.daily.probes.contains(&ProbeId(50)));
        assert!(d.dynamic_prefixes.is_empty(), "expansion disabled");
        assert!(!d.dynamic_addresses.is_empty());
        // covers() falls back to exact addresses.
        let addr = *d.dynamic_addresses.iter().next().unwrap();
        assert!(d.covers(addr));
        assert!(
            !d.covers(Ipv4Addr::new(10, 6, 0, 254))
                || d.dynamic_addresses.contains(&Ipv4Addr::new(10, 6, 0, 254))
        );
    }

    #[test]
    fn unmapped_addresses_make_probe_multi_as() {
        let mut b = LogBuilder::new();
        for i in 0..5 {
            b.probe(i, 1, 1, DAY);
        }
        // Probe logging from unannounced space (192.0.2.0/24): excluded.
        for i in 0..20u32 {
            b.entries.push(ConnLogEntry {
                probe: ProbeId(77),
                time: SimTime(u64::from(i) * DAY / 2),
                ip: Ipv4Addr::new(192, 0, 2, 1 + (i % 200) as u8),
            });
        }
        let log = b.build();
        let d = default_run(&log);
        assert!(d.same_as.probes.iter().all(|p| p.0 != 77));
    }

    #[test]
    fn summarize_thread_count_does_not_change_output() {
        let mut b = LogBuilder::new();
        for i in 0..40 {
            b.probe(i, (i % 6) as u8 + 1, 1 + (i % 30), DAY / 2);
        }
        let log = b.build();
        let serial = summarize_threaded(&log, &asn_of, 1);
        let parallel = summarize_threaded(&log, &asn_of, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.allocation_count, b.allocation_count);
            assert_eq!(a.as_count, b.as_count);
            assert_eq!(a.mean_interchange, b.mean_interchange);
            assert_eq!(a.addresses, b.addresses);
        }
    }

    #[test]
    fn interchange_histogram_buckets_by_day() {
        let mut b = LogBuilder::new();
        b.probe(1, 1, 10, DAY / 2); // mean 0.5d → bucket 0
        b.probe(2, 2, 10, 3 * DAY); // mean 3d → bucket 3
        b.probe(3, 3, 1, DAY); // no changes → not counted
        b.probe(4, 4, 5, 30 * DAY); // mean 30d → overflow bucket
        let log = b.build();
        let summaries = summarize(&log, &asn_of);
        let hist = interchange_histogram(&summaries, 8);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[3], 1);
        assert_eq!(hist[7], 1, "overflow lands in the last bucket");
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn funnel_is_monotone() {
        let mut b = LogBuilder::new();
        for i in 0..50 {
            b.probe(i, (i % 6) as u8 + 1, 1 + (i % 30), DAY / 2);
        }
        let log = b.build();
        let d = default_run(&log);
        assert!(d.all.probes.len() >= d.same_as.probes.len());
        assert!(d.same_as.probes.len() >= d.frequent.probes.len());
        assert!(d.frequent.probes.len() >= d.daily.probes.len());
        assert!(d.all.prefixes.len() >= d.same_as.prefixes.len());
        assert!(d.same_as.prefixes.len() >= d.frequent.prefixes.len());
        assert!(d.frequent.prefixes.len() >= d.daily.prefixes.len());
    }
}
