//! # ar-atlas — RIPE-Atlas probe simulator and dynamic-address detection
//!
//! Implements §3.2 of the paper end to end:
//!
//! * [`probe`] — the connection-log schema (probe id, timestamp, address),
//!   identical in shape to RIPE Atlas's public logs;
//! * [`fleet`] — the probe-fleet simulator producing those logs from the
//!   shared ground-truth universe (static CPEs, dynamic subscribers,
//!   multi-AS movers);
//! * [`kneedle`] — knee-point detection (Satopää et al. 2011), used to set
//!   the frequent-changer threshold (the paper's knee of 8);
//! * [`pipeline`] — the staged filter (same-AS → ≥knee allocations → daily
//!   changers → /24 expansion) yielding dynamically allocated prefixes.
//!
//! The pipeline consumes only the log plus an IP→AS resolver, so it would
//! run unchanged on real Atlas connection logs.
//!
//! ```
//! use ar_atlas::{fleet, pipeline};
//! use ar_simnet::alloc::{AllocationPlan, InterestSet};
//! use ar_simnet::{Seed, Universe, UniverseConfig, ATLAS_WINDOW};
//!
//! let universe = Universe::generate(Seed(9), &UniverseConfig::tiny());
//! let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
//! let (_probes, log) = fleet::generate_fleet(&universe, &alloc, ATLAS_WINDOW);
//! let detection = pipeline::detect_dynamic(
//!     &log,
//!     &pipeline::PipelineConfig::default(),
//!     |ip| universe.asn_of(ip),
//! );
//! assert!(detection.all.probes.len() >= detection.daily.probes.len());
//! ```

pub mod fleet;
pub mod ingest;
pub mod kneedle;
pub mod pipeline;
pub mod probe;

pub use fleet::generate_fleet;
pub use ingest::{read_jsonl, write_jsonl, IngestError};
pub use kneedle::{allocation_count_knee, find_knee, Knee};
pub use pipeline::{
    detect_dynamic, interchange_histogram, summarize, summarize_threaded, DynamicDetection,
    PipelineConfig, ProbeSummary, StageSet,
};
pub use probe::{apply_atlas_gaps, ConnLogEntry, ConnectionLog, Probe, ProbeId};

#[cfg(test)]
mod tests {
    //! End-to-end: simulated fleet → pipeline → ground-truth validation.

    use super::*;
    use ar_simnet::alloc::{AllocationPlan, InterestSet};
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::ATLAS_WINDOW;
    use ar_simnet::universe::Universe;

    struct Fx {
        universe: Universe,
        log: ConnectionLog,
        probes: Vec<Probe>,
    }

    impl Fx {
        fn new(seed: u64) -> Self {
            let universe = Universe::generate(Seed(seed), &UniverseConfig::small());
            let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
            let (probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);
            Fx {
                universe,
                log,
                probes,
            }
        }
        fn detect(&self) -> DynamicDetection {
            detect_dynamic(&self.log, &PipelineConfig::default(), |ip| {
                self.universe.asn_of(ip)
            })
        }
    }

    #[test]
    fn detected_prefixes_are_truly_dynamic() {
        let fx = Fx::new(61);
        let d = fx.detect();
        assert!(
            !d.dynamic_prefixes.is_empty(),
            "small universe should yield dynamic detections (knee={})",
            d.knee
        );
        let truth = fx.universe.true_dynamic_prefixes(false);
        for p in &d.dynamic_prefixes {
            assert!(
                truth.contains(p),
                "false positive: {p} detected dynamic but is not a pool prefix"
            );
        }
    }

    #[test]
    fn detection_is_a_lower_bound_on_fast_prefixes() {
        let fx = Fx::new(62);
        let d = fx.detect();
        let fast_truth = fx.universe.true_dynamic_prefixes(true);
        // Coverage is partial (only prefixes hosting a probe can be found),
        // but what's found should be mostly the fast pools.
        let fast_hits = d
            .dynamic_prefixes
            .iter()
            .filter(|p| fast_truth.contains(p))
            .count();
        assert!(
            fast_hits * 10 >= d.dynamic_prefixes.len() * 7,
            "≥70% of detections should be fast pools: {fast_hits}/{}",
            d.dynamic_prefixes.len()
        );
        // And it misses plenty (lower bound, as the paper stresses).
        assert!(d.dynamic_prefixes.len() < fast_truth.len());
    }

    #[test]
    fn stage_proportions_echo_figure_2() {
        let fx = Fx::new(63);
        let d = fx.detect();
        let total = d.all.probes.len() as f64;
        let single_alloc = d
            .summaries
            .iter()
            .filter(|s| s.allocation_count <= 1)
            .count() as f64;
        // Paper: 59% of probes never change; accept a generous band around
        // it since universes are stochastic.
        let share = single_alloc / total;
        assert!(
            (0.30..0.85).contains(&share),
            "single-allocation share {share:.2} outside plausible band"
        );
        // Multi-AS exclusions exist (paper: 13.1%).
        let excluded = d.all.probes.len() - d.same_as.probes.len();
        assert!(excluded > 0);
        // Funnel is strictly narrowing to a nonempty final stage.
        assert!(!d.daily.probes.is_empty());
        assert!(d.daily.probes.len() < d.frequent.probes.len());
    }

    #[test]
    fn knee_lands_near_paper_value() {
        let fx = Fx::new(64);
        let d = fx.detect();
        assert!(
            (3..=40).contains(&d.knee),
            "knee {} implausibly far from the paper's 8",
            d.knee
        );
    }

    #[test]
    fn mover_probes_never_reach_final_stage() {
        let fx = Fx::new(65);
        let d = fx.detect();
        let daily: std::collections::HashSet<_> = d.daily.probes.iter().copied().collect();
        for probe in &fx.probes {
            let h = fx.universe.host(probe.host);
            if h.behavior.multi_as_mover && daily.contains(&probe.id) {
                panic!("mover {:?} survived the same-AS filter", probe.id);
            }
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = Fx::new(66).detect();
        let b = Fx::new(66).detect();
        assert_eq!(a.knee, b.knee);
        assert_eq!(a.dynamic_prefixes, b.dynamic_prefixes);
        assert_eq!(a.daily.probes, b.daily.probes);
    }
}
