//! Knee-point detection ("Kneedle", Satopää et al. 2011).
//!
//! The paper uses Kneedle to pick the allocation-count threshold that
//! separates frequently-readdressed probes from the rest: "We use a
//! technique proposed by Satopää et al. to determine the knee point to be
//! at eight addresses" (§3.2, Figure 2).
//!
//! Implementation follows the paper's offline algorithm:
//! 1. normalise the curve to the unit square,
//! 2. compute the difference curve `y_d = y_n - x_n`,
//! 3. knee candidates are local maxima of the difference curve;
//! 4. a candidate is a knee if the difference curve falls below a
//!    sensitivity-adjusted threshold before the next local maximum.

/// A knee found in a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knee {
    /// Index into the input slice.
    pub index: usize,
    /// x-value of the knee (as passed in).
    pub x: f64,
    /// y-value of the knee (as passed in).
    pub y: f64,
}

/// Find the most prominent knee of a concave-decreasing or
/// convex-increasing curve given as `(x, y)` pairs sorted by `x`.
///
/// `sensitivity` is Kneedle's `S` (the paper's authors recommend 1.0 for
/// offline use).
pub fn find_knee(points: &[(f64, f64)], sensitivity: f64) -> Option<Knee> {
    if points.len() < 3 {
        return None;
    }
    let n = points.len();

    // 1. Normalise to the unit square.
    let (x_min, x_max) = (points[0].0, points[n - 1].0);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, y) in points {
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let xs: Vec<f64> = points.iter().map(|&(x, _)| (x - x_min) / x_span).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| (y - y_min) / y_span).collect();

    // Detect direction and convexity, then transform into the canonical
    // "concave increasing" frame in which knees are maxima of y - x.
    //
    // Direction: endpoint comparison. Convexity: the curve's value at the
    // x-midpoint versus the chord between the endpoints.
    let increasing = ys[n - 1] >= ys[0];
    let mid_y = interpolate(&xs, &ys, 0.5);
    let chord_mid = (ys[0] + ys[n - 1]) / 2.0;
    let concave = mid_y >= chord_mid;

    // Transform table (flip_x reverses the point order and maps x→1-x;
    // invert_y maps y→1-y):
    //   increasing  concave  → identity
    //   increasing  convex   → flip_x + invert_y
    //   decreasing  concave  → flip_x
    //   decreasing  convex   → invert_y
    let flip_x = increasing != concave;
    let invert_y = !concave;

    let (xs_inc, y_final): (Vec<f64>, Vec<f64>) = if flip_x {
        (
            xs.iter().rev().map(|x| 1.0 - x).collect(),
            if invert_y {
                ys.iter().rev().map(|y| 1.0 - y).collect()
            } else {
                ys.iter().rev().copied().collect()
            },
        )
    } else {
        (
            xs.clone(),
            if invert_y {
                ys.iter().map(|y| 1.0 - y).collect()
            } else {
                ys.clone()
            },
        )
    };

    // 2. Difference curve.
    let diff: Vec<f64> = y_final.iter().zip(&xs_inc).map(|(y, x)| y - x).collect();

    // 3/4. Scan local maxima with the sensitivity threshold.
    let mean_dx = 1.0 / (n as f64 - 1.0);
    let mut best: Option<(usize, f64)> = None;
    let mut i = 1;
    while i + 1 < n {
        if diff[i] > diff[i - 1] && diff[i] >= diff[i + 1] {
            let threshold = diff[i] - sensitivity * mean_dx;
            // Confirmed knee if the difference curve drops below the
            // threshold before rising to a higher maximum.
            let mut j = i + 1;
            let mut confirmed = false;
            while j < n {
                if diff[j] > diff[i] {
                    break; // superseded by a later, higher maximum
                }
                if diff[j] < threshold {
                    confirmed = true;
                    break;
                }
                j += 1;
            }
            // The global end of curve also confirms (offline variant).
            if j == n {
                confirmed = true;
            }
            if confirmed && best.map_or(true, |(_, d)| diff[i] > d) {
                best = Some((i, diff[i]));
            }
        }
        i += 1;
    }

    best.map(|(idx_inc, _)| {
        let index = if flip_x { n - 1 - idx_inc } else { idx_inc };
        Knee {
            index,
            x: points[index].0,
            y: points[index].1,
        }
    })
}

/// Convenience for the Figure 2 use-case: per-probe allocation counts. The
/// counts are sorted descending (as in the paper's plot), and the knee is
/// reported as the *count value* at the knee (the paper's "eight
/// addresses").
///
/// Figure 2 plots the counts on a log axis, and that is the curve whose
/// knee the paper takes; we therefore run Kneedle on `log10(count)` (knees
/// of heavy-tailed curves are meaningless on a linear axis, where the
/// largest outlier flattens everything else to zero). Probes that never
/// changed address (59% in the paper) form a flat unit plateau whose corner
/// would always win; the paper distinguishes them from the "remaining 27%
/// \[that\] go through multiple address changes" before taking the knee, so
/// the knee is computed over multi-allocation probes only.
pub fn allocation_count_knee(counts: &[u32], sensitivity: f64) -> Option<u32> {
    let mut sorted: Vec<u32> = counts.iter().copied().filter(|&c| c >= 2).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let points: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64, f64::from(c.max(1)).log10()))
        .collect();
    let knee = find_knee(&points, sensitivity)?;
    Some((10f64.powf(knee.y).round() as u32).max(2))
}

fn interpolate(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    match xs.iter().position(|&v| v >= x) {
        Some(0) => ys[0],
        Some(i) => {
            let (x0, x1) = (xs[i - 1], xs[i]);
            let (y0, y1) = (ys[i - 1], ys[i]);
            if (x1 - x0).abs() < f64::EPSILON {
                y0
            } else {
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
        None => *ys.last().expect("nonempty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_three_points() {
        assert!(find_knee(&[(0.0, 0.0), (1.0, 1.0)], 1.0).is_none());
        assert!(find_knee(&[], 1.0).is_none());
    }

    #[test]
    fn knee_of_concave_increasing_curve() {
        // y = sqrt(x): gentle knee early.
        let points: Vec<(f64, f64)> = (0..=100).map(|i| (i as f64, (i as f64).sqrt())).collect();
        let knee = find_knee(&points, 1.0).expect("knee exists");
        assert!(
            knee.x > 5.0 && knee.x < 40.0,
            "sqrt knee around x=25 expected, got {}",
            knee.x
        );
    }

    #[test]
    fn knee_of_decreasing_hockey_stick() {
        // Steep drop then flat tail: knee at the corner (x = 10).
        let mut points = Vec::new();
        for i in 0..=10 {
            points.push((f64::from(i), 1000.0 - 95.0 * f64::from(i)));
        }
        for i in 11..=100 {
            points.push((f64::from(i), 50.0 - 0.4 * f64::from(i - 10)));
        }
        let knee = find_knee(&points, 1.0).expect("knee exists");
        assert!(
            (8.0..=14.0).contains(&knee.x),
            "corner at 10 expected, got {}",
            knee.x
        );
    }

    #[test]
    fn straight_line_has_no_strong_knee() {
        let points: Vec<(f64, f64)> = (0..=50).map(|i| (f64::from(i), f64::from(i))).collect();
        // A perfectly straight line's difference curve is ~0 everywhere;
        // any "knee" found would be noise at machine epsilon.
        if let Some(k) = find_knee(&points, 1.0) {
            // Tolerated only if the difference is negligible — check by
            // asserting the knee y is on the line.
            assert!((k.y - k.x).abs() < 1e-9);
        }
    }

    #[test]
    fn allocation_counts_reproduce_paper_band() {
        // Synthetic Figure 2: 59% of probes with 1 address, a tail of
        // frequent changers up to hundreds.
        let mut counts = vec![1; 5900];
        for i in 0..2700 {
            counts.push(2 + (i % 5)); // moderate changers: 2..6
        }
        for i in 0..1400 {
            counts.push(8 + (i % 180)); // heavy tail: 8..188
        }
        let counts: Vec<u32> = counts.into_iter().map(|c| c as u32).collect();
        let knee = allocation_count_knee(&counts, 1.0).expect("knee");
        assert!(
            (5..=16).contains(&knee),
            "paper found the knee at 8 allocations; got {knee}"
        );
    }

    #[test]
    fn knee_is_deterministic() {
        let points: Vec<(f64, f64)> = (0..=60)
            .map(|i| (f64::from(i), 100.0 / (1.0 + f64::from(i))))
            .collect();
        assert_eq!(find_knee(&points, 1.0), find_knee(&points, 1.0));
    }
}
