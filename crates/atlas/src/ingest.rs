//! Connection-log serialisation: JSON-lines interchange.
//!
//! RIPE Atlas publishes its connection events as JSON records; this module
//! reads and writes the same shape (`{"prb_id":…,"timestamp":…,"ip":"…"}`
//! per line) so the §3.2 pipeline can ingest real exports — and so
//! simulated logs can be archived and re-analysed without re-running the
//! simulator.

use crate::probe::{ConnLogEntry, ConnectionLog, ProbeId};
use ar_simnet::time::{SimTime, TimeWindow};
use std::fmt;
use std::net::Ipv4Addr;

/// The wire record (RIPE-style field names).
#[derive(Debug)]
struct WireRecord {
    prb_id: u32,
    timestamp: u64,
    ip: Ipv4Addr,
}

/// Parse one RIPE-style record. The schema is flat — three scalar fields,
/// none of whose values can contain a comma — so a hand parser covers the
/// full shape without a serde round-trip. Field order is free; unknown or
/// missing fields are rejected.
fn parse_record(line: &str) -> Result<WireRecord, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "record is not a JSON object".to_string())?;
    let mut prb_id = None;
    let mut timestamp = None;
    let mut ip = None;
    for field in inner.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("field {field:?} is not key:value"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "prb_id" => {
                prb_id = Some(
                    value
                        .parse::<u32>()
                        .map_err(|_| format!("bad prb_id {value:?}"))?,
                )
            }
            "timestamp" => {
                timestamp = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad timestamp {value:?}"))?,
                )
            }
            "ip" => {
                let quoted = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("ip must be a JSON string, got {value:?}"))?;
                ip = Some(
                    quoted
                        .parse::<Ipv4Addr>()
                        .map_err(|_| format!("bad ip {quoted:?}"))?,
                );
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    Ok(WireRecord {
        prb_id: prb_id.ok_or("missing prb_id")?,
        timestamp: timestamp.ok_or("missing timestamp")?,
        ip: ip.ok_or("missing ip")?,
    })
}

/// Ingestion failure with line number.
#[derive(Debug)]
pub struct IngestError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IngestError {}

/// Serialise a log to JSON lines.
pub fn write_jsonl(log: &ConnectionLog) -> String {
    let mut out = String::new();
    for e in &log.entries {
        // Rendered by hand: the schema has no strings needing escapes, and
        // this keeps the writer total (no serialiser to fail or panic).
        out.push_str(&format!(
            "{{\"prb_id\":{},\"timestamp\":{},\"ip\":\"{}\"}}\n",
            e.probe.0,
            e.time.as_secs(),
            e.ip,
        ));
    }
    out
}

/// Parse a JSON-lines export. Entries are re-sorted into the canonical
/// `(probe, time)` order; the window is inferred from the data unless
/// given.
///
/// Each probe's records must carry strictly increasing timestamps in input
/// order — Atlas exports are append-only per probe, so a duplicate or
/// out-of-order timestamp means a corrupted or doubly-concatenated file,
/// and silently sorting it would fabricate an allocation history. Both are
/// rejected with the offending and first-seen line numbers.
pub fn read_jsonl(input: &str, window: Option<TimeWindow>) -> Result<ConnectionLog, IngestError> {
    let mut entries = Vec::new();
    let mut last_seen: std::collections::BTreeMap<u32, (u64, usize)> =
        std::collections::BTreeMap::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let record = parse_record(line).map_err(|message| IngestError {
            line: i + 1,
            message,
        })?;
        if let Some(&(prev_ts, prev_line)) = last_seen.get(&record.prb_id) {
            if record.timestamp == prev_ts {
                return Err(IngestError {
                    line: i + 1,
                    message: format!(
                        "duplicate timestamp {} for probe {} (first seen on line {})",
                        record.timestamp, record.prb_id, prev_line
                    ),
                });
            }
            if record.timestamp < prev_ts {
                return Err(IngestError {
                    line: i + 1,
                    message: format!(
                        "out-of-order timestamp {} for probe {} (line {} already at {})",
                        record.timestamp, record.prb_id, prev_line, prev_ts
                    ),
                });
            }
        }
        last_seen.insert(record.prb_id, (record.timestamp, i + 1));
        entries.push(ConnLogEntry {
            probe: ProbeId(record.prb_id),
            time: SimTime(record.timestamp),
            ip: record.ip,
        });
    }
    entries.sort_by_key(|e| (e.probe, e.time));
    let window = window.unwrap_or_else(|| {
        let start = entries.iter().map(|e| e.time).min().unwrap_or(SimTime(0));
        let end = entries
            .iter()
            .map(|e| e.time)
            .max()
            .map_or(SimTime(1), |t| SimTime(t.as_secs() + 1));
        TimeWindow::new(start, end)
    });
    Ok(ConnectionLog { window, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{detect_dynamic, PipelineConfig};
    use ar_simnet::asn::Asn;

    #[test]
    fn roundtrip_preserves_entries() {
        let log = ConnectionLog {
            window: TimeWindow::new(SimTime(0), SimTime(1000)),
            entries: vec![
                ConnLogEntry {
                    probe: ProbeId(7),
                    time: SimTime(100),
                    ip: "10.0.0.1".parse().unwrap(),
                },
                ConnLogEntry {
                    probe: ProbeId(7),
                    time: SimTime(200),
                    ip: "10.0.0.2".parse().unwrap(),
                },
                ConnLogEntry {
                    probe: ProbeId(9),
                    time: SimTime(50),
                    ip: "10.1.0.1".parse().unwrap(),
                },
            ],
        };
        let text = write_jsonl(&log);
        assert_eq!(text.lines().count(), 3);
        let back = read_jsonl(&text, Some(log.window)).unwrap();
        assert_eq!(back.entries, log.entries);
        assert_eq!(back.window, log.window);
    }

    #[test]
    fn window_inferred_when_absent() {
        let text = r#"{"prb_id":1,"timestamp":500,"ip":"10.0.0.1"}
{"prb_id":1,"timestamp":900,"ip":"10.0.0.2"}"#;
        let log = read_jsonl(text, None).unwrap();
        assert_eq!(log.window.start, SimTime(500));
        assert_eq!(log.window.end, SimTime(901));
    }

    #[test]
    fn rejects_malformed_with_line_numbers() {
        let text = "{\"prb_id\":1,\"timestamp\":500,\"ip\":\"10.0.0.1\"}\nnot json\n";
        let err = read_jsonl(text, None).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_duplicate_timestamp_per_probe() {
        let text = "{\"prb_id\":3,\"timestamp\":500,\"ip\":\"10.0.0.1\"}\n\
                    {\"prb_id\":4,\"timestamp\":500,\"ip\":\"10.0.0.9\"}\n\
                    {\"prb_id\":3,\"timestamp\":500,\"ip\":\"10.0.0.2\"}\n";
        let err = read_jsonl(text, None).unwrap_err();
        assert_eq!(err.line, 3, "the repeated record is the bad one");
        assert!(
            err.message.contains("duplicate timestamp 500"),
            "{}",
            err.message
        );
        assert!(err.message.contains("line 1"), "{}", err.message);
    }

    #[test]
    fn rejects_out_of_order_timestamps_per_probe() {
        // Probe 5 goes backwards; probe 6 interleaving at its own pace is
        // fine (order is per probe, not global).
        let text = "{\"prb_id\":5,\"timestamp\":900,\"ip\":\"10.0.0.1\"}\n\
                    {\"prb_id\":6,\"timestamp\":100,\"ip\":\"10.0.1.1\"}\n\
                    {\"prb_id\":5,\"timestamp\":800,\"ip\":\"10.0.0.2\"}\n";
        let err = read_jsonl(text, None).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(
            err.message.contains("out-of-order timestamp 800"),
            "{}",
            err.message
        );

        let ok = "{\"prb_id\":5,\"timestamp\":900,\"ip\":\"10.0.0.1\"}\n\
                  {\"prb_id\":6,\"timestamp\":100,\"ip\":\"10.0.1.1\"}\n\
                  {\"prb_id\":5,\"timestamp\":901,\"ip\":\"10.0.0.2\"}\n";
        assert_eq!(read_jsonl(ok, None).unwrap().entries.len(), 3);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n{\"prb_id\":1,\"timestamp\":5,\"ip\":\"10.0.0.1\"}\n";
        let log = read_jsonl(text, None).unwrap();
        assert_eq!(log.entries.len(), 1);
    }

    #[test]
    fn ingested_log_feeds_the_pipeline() {
        // A daily changer serialised and re-ingested must be detected.
        let day = 86_400;
        let mut text = String::new();
        for i in 0..30 {
            text.push_str(&format!(
                "{{\"prb_id\":1,\"timestamp\":{},\"ip\":\"10.0.{}.{}\"}}\n",
                i * day / 2,
                i % 2,
                i % 200 + 1,
            ));
        }
        // Plus static companions so the knee exists.
        for p in 2..12 {
            text.push_str(&format!(
                "{{\"prb_id\":{p},\"timestamp\":0,\"ip\":\"10.9.0.{p}\"}}\n"
            ));
        }
        let log = read_jsonl(&text, None).unwrap();
        let d = detect_dynamic(
            &log,
            &PipelineConfig {
                knee_override: Some(8),
                ..PipelineConfig::default()
            },
            |_| Some(Asn(1)),
        );
        assert!(d.daily.probes.contains(&ProbeId(1)));
    }
}
