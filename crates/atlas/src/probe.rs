//! Probe and connection-log data model.
//!
//! Mirrors the shape of RIPE Atlas's public connection logs: a flat record
//! stream of `(probe id, timestamp, address)`. The detection pipeline
//! consumes only this schema — it never touches the simulator's ground
//! truth — so it would run unchanged on real Atlas data.

use ar_simnet::hosts::HostId;
use ar_simnet::time::{SimTime, TimeWindow};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Unique probe identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProbeId(pub u32);

/// A deployed probe (the `host` link exists only for ground-truth
/// validation; the pipeline does not use it).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Probe {
    pub id: ProbeId,
    pub host: HostId,
}

/// One connection-log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnLogEntry {
    pub probe: ProbeId,
    pub time: SimTime,
    /// Public address the probe connected through.
    pub ip: Ipv4Addr,
}

/// The full measurement log over a window, sorted by `(probe, time)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectionLog {
    pub window: TimeWindow,
    pub entries: Vec<ConnLogEntry>,
}

impl ConnectionLog {
    /// All entries of one probe, in time order.
    pub fn entries_for(&self, probe: ProbeId) -> impl Iterator<Item = &ConnLogEntry> {
        let start = self.entries.partition_point(|e| e.probe < probe);
        self.entries[start..]
            .iter()
            .take_while(move |e| e.probe == probe)
    }

    /// Distinct probes present in the log.
    pub fn probes(&self) -> Vec<ProbeId> {
        let mut out = Vec::new();
        for e in &self.entries {
            if out.last() != Some(&e.probe) {
                out.push(e.probe);
            }
        }
        out
    }

    /// The *allocation sequence* of a probe: consecutive runs of the same
    /// address collapsed to `(first_seen, ip)`.
    ///
    /// This is the pipeline's core extraction: keepalives with an unchanged
    /// address do not constitute reallocation.
    pub fn allocations_for(&self, probe: ProbeId) -> Vec<(SimTime, Ipv4Addr)> {
        let mut out: Vec<(SimTime, Ipv4Addr)> = Vec::new();
        for e in self.entries_for(probe) {
            match out.last() {
                Some((_, last_ip)) if *last_ip == e.ip => {}
                _ => out.push((e.time, e.ip)),
            }
        }
        out
    }
}

/// Drop every entry that falls inside one of `plan`'s Atlas collection
/// gaps — what the archive looks like after the collector was down.
/// Returns the censored log and the number of entries lost. A plan with no
/// gaps returns the log untouched.
pub fn apply_atlas_gaps(
    log: &ConnectionLog,
    plan: &ar_faults::FaultPlan,
) -> (ConnectionLog, usize) {
    if !plan.has_atlas_gaps() {
        return (log.clone(), 0);
    }
    let entries: Vec<ConnLogEntry> = log
        .entries
        .iter()
        .filter(|e| !plan.in_atlas_gap(e.time))
        .copied()
        .collect();
    let dropped = log.entries.len() - entries.len();
    (
        ConnectionLog {
            window: log.window,
            entries,
        },
        dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::time::SimDuration;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn log() -> ConnectionLog {
        let w = TimeWindow::new(SimTime(0), SimTime(1_000_000));
        let mk = |p: u32, t: u64, o: u8| ConnLogEntry {
            probe: ProbeId(p),
            time: SimTime(t),
            ip: ip(o),
        };
        ConnectionLog {
            window: w,
            entries: vec![
                mk(1, 0, 1),
                mk(1, 100, 1), // keepalive, same ip
                mk(1, 200, 2), // reallocation
                mk(1, 300, 1), // back to a previous ip: still a change
                mk(2, 0, 9),
                mk(2, 500, 9),
            ],
        }
    }

    #[test]
    fn entries_for_filters_by_probe() {
        let l = log();
        assert_eq!(l.entries_for(ProbeId(1)).count(), 4);
        assert_eq!(l.entries_for(ProbeId(2)).count(), 2);
        assert_eq!(l.entries_for(ProbeId(3)).count(), 0);
    }

    #[test]
    fn allocations_collapse_keepalives() {
        let l = log();
        let a1 = l.allocations_for(ProbeId(1));
        assert_eq!(
            a1,
            vec![
                (SimTime(0), ip(1)),
                (SimTime(200), ip(2)),
                (SimTime(300), ip(1)),
            ]
        );
        let a2 = l.allocations_for(ProbeId(2));
        assert_eq!(a2, vec![(SimTime(0), ip(9))]);
    }

    #[test]
    fn probes_lists_distinct() {
        assert_eq!(log().probes(), vec![ProbeId(1), ProbeId(2)]);
    }

    #[test]
    fn window_duration_sanity() {
        let l = log();
        assert!(l.window.duration() > SimDuration::from_secs(0));
    }

    #[test]
    fn atlas_gaps_censor_entries() {
        use ar_faults::{AtlasGap, FaultPlan};
        use ar_simnet::rng::Seed;

        let l = log();
        // No gaps: identical log, nothing dropped.
        let (same, dropped) = apply_atlas_gaps(&l, &FaultPlan::zero(Seed(1)));
        assert_eq!(dropped, 0);
        assert_eq!(same.entries, l.entries);

        // A gap over [100, 400) swallows exactly the entries inside it.
        let mut plan = FaultPlan::zero(Seed(1));
        plan.atlas_gaps.push(AtlasGap {
            window: TimeWindow::new(SimTime(100), SimTime(400)),
        });
        plan.rebuild_indexes();
        let (censored, dropped) = apply_atlas_gaps(&l, &plan);
        assert_eq!(dropped, 3);
        assert!(censored
            .entries
            .iter()
            .all(|e| !(100..400).contains(&e.time.as_secs())));
        assert_eq!(censored.entries.len(), 3);
    }
}
