//! The length-prefixed TCP protocol.
//!
//! Every frame is `len:u32be` followed by `len` payload bytes, `len`
//! capped at [`MAX_FRAME`]. Request payloads open with an op byte:
//!
//! * [`OP_QUERY`] — `op:u8 n:u32be (ip:u32be)*n`: answer `n` addresses.
//! * [`OP_GENERATION`] — `op:u8`: report the serving snapshot generation.
//! * [`OP_HEALTH`] — `op:u8`: report the health state machine.
//! * [`OP_STATS`] — `op:u8`: scrape the live telemetry plane (a canonical
//!   binary [`StatsFrame`]: logical tick, per-shard queue depths,
//!   cumulative counters, retained windows, SLO state, trace digest).
//!
//! Response payloads open with a status byte: `0` then the body (for a
//! query, `n:u32be` followed by the concatenated verdict encodings of
//! [`crate::snapshot::Verdict::encode_into`]; for a generation probe,
//! `gen:u64be`; for a health probe, `state:u8 gen:u64be last_good:u64be
//! reason_len:u16be reason`; for a stats probe, the layout documented on
//! [`encode_stats_response`]), `1` then a UTF-8 error message, or `2` then
//! a UTF-8 message when admission control shed the request
//! ([`WireError::Overloaded`] — retryable, unlike status `1`). Decoding is
//! total — every malformed input returns a [`WireError`], never panics —
//! because the fault-injection suite feeds this module arbitrary bytes.

use crate::health::{HealthProbe, HealthState};
use crate::snapshot::{ListVerdict, Verdict, VerdictClass};
use crate::telemetry::{SloState, StatsFrame, WindowSummary};
use ar_blocklists::policy::{Action, ReuseEvidence};
use ar_blocklists::ListId;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::Ipv4Addr;

/// Largest accepted frame payload (1 MiB ≈ 260k query addresses).
pub const MAX_FRAME: u32 = 1 << 20;

/// Request op: batch verdict query.
pub const OP_QUERY: u8 = 1;
/// Request op: snapshot-generation probe.
pub const OP_GENERATION: u8 = 2;
/// Request op: health/readiness probe.
pub const OP_HEALTH: u8 = 3;
/// Request op: live telemetry scrape.
pub const OP_STATS: u8 = 4;

/// Why a frame or payload was refused.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// Transport failure underneath the codec.
    Io(std::io::Error),
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// Payload ended before its declared contents.
    Truncated(&'static str),
    /// Unknown request op byte.
    BadOp(u8),
    /// Structurally invalid payload.
    Malformed(&'static str),
    /// The peer answered with an error frame; the message is theirs.
    Remote(String),
    /// Admission control shed the request; retry after backoff.
    Overloaded(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            WireError::Truncated(what) => write!(f, "truncated payload: {what}"),
            WireError::BadOp(op) => write!(f, "unknown op {op}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
            WireError::Overloaded(msg) => write!(f, "server overloaded: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Query(Vec<u32>),
    Generation,
    Health,
    Stats,
}

/// Write one `len:u32be` + payload frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME) {
        return Err(WireError::TooLarge(payload.len() as u32));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. A clean EOF on the length prefix is [`WireError::Closed`];
/// an oversized declaration is refused before any allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Truncated("length prefix")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated("frame body")
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(payload)
}

/// Encode a query request payload.
pub fn encode_query(ips: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + ips.len() * 4);
    out.push(OP_QUERY);
    out.extend_from_slice(&(ips.len() as u32).to_be_bytes());
    for ip in ips {
        out.extend_from_slice(&ip.to_be_bytes());
    }
    out
}

/// Encode a generation-probe request payload.
pub fn encode_generation_probe() -> Vec<u8> {
    vec![OP_GENERATION]
}

/// Encode a health-probe request payload.
pub fn encode_health_probe() -> Vec<u8> {
    vec![OP_HEALTH]
}

/// Encode a stats-scrape request payload.
pub fn encode_stats_probe() -> Vec<u8> {
    vec![OP_STATS]
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (&op, rest) = payload
        .split_first()
        .ok_or(WireError::Truncated("empty payload"))?;
    match op {
        OP_QUERY => {
            let n_bytes: [u8; 4] = rest
                .get(..4)
                .and_then(|s| s.try_into().ok())
                .ok_or(WireError::Truncated("query count"))?;
            let n = u32::from_be_bytes(n_bytes) as usize;
            let body = rest.get(4..).unwrap_or(&[]);
            if body.len() != n * 4 {
                return Err(WireError::Malformed("query body length"));
            }
            let ips = body
                .chunks_exact(4)
                .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(Request::Query(ips))
        }
        OP_GENERATION => {
            if rest.is_empty() {
                Ok(Request::Generation)
            } else {
                Err(WireError::Malformed("generation probe carries a body"))
            }
        }
        OP_HEALTH => {
            if rest.is_empty() {
                Ok(Request::Health)
            } else {
                Err(WireError::Malformed("health probe carries a body"))
            }
        }
        OP_STATS => {
            if rest.is_empty() {
                Ok(Request::Stats)
            } else {
                Err(WireError::Malformed("stats probe carries a body"))
            }
        }
        other => Err(WireError::BadOp(other)),
    }
}

/// Encode an ok query response payload.
pub fn encode_query_response(verdicts: &[Verdict]) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&(verdicts.len() as u32).to_be_bytes());
    for v in verdicts {
        v.encode_into(&mut out);
    }
    out
}

/// Encode an ok generation response payload.
pub fn encode_generation_response(generation: u64) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&generation.to_be_bytes());
    out
}

/// Encode an ok health response payload.
pub fn encode_health_response(probe: &HealthProbe) -> Vec<u8> {
    let reason = probe.reason.as_bytes();
    let reason_len = reason.len().min(usize::from(u16::MAX));
    let mut out = vec![0u8, probe.state.code()];
    out.extend_from_slice(&probe.generation.to_be_bytes());
    out.extend_from_slice(&probe.last_good_generation.to_be_bytes());
    out.extend_from_slice(&(reason_len as u16).to_be_bytes());
    out.extend_from_slice(&reason[..reason_len]);
    out
}

/// Encode one `name_len:u16be name value:u64be` counter entry.
fn encode_counter(out: &mut Vec<u8>, name: &str, value: u64) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&bytes[..len]);
    out.extend_from_slice(&value.to_be_bytes());
}

/// Encode a `count:u16be` + counter-entry map. Iteration over the
/// `BTreeMap` is sorted by name, so the encoding is canonical.
fn encode_counter_map(out: &mut Vec<u8>, counters: &BTreeMap<String, u64>) {
    let n = counters.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(n as u16).to_be_bytes());
    for (name, &value) in counters.iter().take(n) {
        encode_counter(out, name, value);
    }
}

/// Encode an ok stats response payload. Canonical layout (everything
/// big-endian, maps sorted by name):
///
/// ```text
/// status:u8(=0) tick:u64 gen:u64 health:u8
/// shard_count:u16 (queue_depth:u64)*shard_count
/// counter_count:u16 (name_len:u16 name value:u64)*counter_count
/// window_count:u16 (index:u64 counter_count:u16 counters
///                   batch_count:u64 batch_sum:u64)*window_count
/// breached:u8 breaches:u64 recoveries:u64 windows_evaluated:u64
/// last_shed_permille:u32 shed_budget_permille:u32
/// trace_count:u64 trace_digest:u64
/// ```
pub fn encode_stats_response(frame: &StatsFrame) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&frame.tick.to_be_bytes());
    out.extend_from_slice(&frame.generation.to_be_bytes());
    out.push(frame.health_state.code());
    let shards = frame.queue_depths.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(shards as u16).to_be_bytes());
    for depth in frame.queue_depths.iter().take(shards) {
        out.extend_from_slice(&depth.to_be_bytes());
    }
    encode_counter_map(&mut out, &frame.counters);
    let windows = frame.windows.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(windows as u16).to_be_bytes());
    for w in frame.windows.iter().take(windows) {
        out.extend_from_slice(&w.index.to_be_bytes());
        encode_counter_map(&mut out, &w.counters);
        out.extend_from_slice(&w.batch_count.to_be_bytes());
        out.extend_from_slice(&w.batch_sum.to_be_bytes());
    }
    out.push(u8::from(frame.slo.breached));
    out.extend_from_slice(&frame.slo.breaches.to_be_bytes());
    out.extend_from_slice(&frame.slo.recoveries.to_be_bytes());
    out.extend_from_slice(&frame.slo.windows_evaluated.to_be_bytes());
    out.extend_from_slice(&frame.slo.last_shed_permille.to_be_bytes());
    out.extend_from_slice(&frame.slo.shed_budget_permille.to_be_bytes());
    out.extend_from_slice(&frame.trace_count.to_be_bytes());
    out.extend_from_slice(&frame.trace_digest.to_be_bytes());
    out
}

/// Decode a `count:u16be` + counter-entry map (inverse of
/// [`encode_counter_map`]).
fn decode_counter_map(r: &mut Reader<'_>) -> Result<BTreeMap<String, u64>, WireError> {
    let n = r.u16("counter count")?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let name_len = usize::from(r.u16("counter name length")?);
        let bytes = r.bytes(name_len, "counter name")?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| WireError::Malformed("counter name utf-8"))?
            .to_owned();
        let value = r.u64("counter value")?;
        out.insert(name, value);
    }
    Ok(out)
}

/// Decode an ok stats response (client side).
pub fn decode_stats_response(payload: &[u8]) -> Result<StatsFrame, WireError> {
    let body = response_body(payload)?;
    let mut r = Reader { buf: body, pos: 0 };
    let tick = r.u64("stats tick")?;
    let generation = r.u64("stats generation")?;
    let health_state = HealthState::from_code(r.u8("stats health state")?)
        .ok_or(WireError::Malformed("stats health state"))?;
    let shards = r.u16("shard count")?;
    let mut queue_depths = Vec::with_capacity(usize::from(shards));
    for _ in 0..shards {
        queue_depths.push(r.u64("queue depth")?);
    }
    let counters = decode_counter_map(&mut r)?;
    let window_count = r.u16("window count")?;
    let mut windows = Vec::with_capacity(usize::from(window_count));
    for _ in 0..window_count {
        let index = r.u64("window index")?;
        let counters = decode_counter_map(&mut r)?;
        let batch_count = r.u64("window batch count")?;
        let batch_sum = r.u64("window batch sum")?;
        windows.push(WindowSummary {
            index,
            counters,
            batch_count,
            batch_sum,
        });
    }
    let breached = match r.u8("slo breached")? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("slo breached flag")),
    };
    let slo = SloState {
        breached,
        breaches: r.u64("slo breaches")?,
        recoveries: r.u64("slo recoveries")?,
        windows_evaluated: r.u64("slo windows evaluated")?,
        last_shed_permille: r.u32("slo last shed permille")?,
        shed_budget_permille: r.u32("slo shed budget permille")?,
    };
    let trace_count = r.u64("trace count")?;
    let trace_digest = r.u64("trace digest")?;
    if r.pos != body.len() {
        return Err(WireError::Malformed("trailing bytes after stats frame"));
    }
    Ok(StatsFrame {
        tick,
        generation,
        health_state,
        queue_depths,
        counters,
        windows,
        slo,
        trace_count,
        trace_digest,
    })
}

/// Encode an error response payload.
pub fn encode_error_response(message: &str) -> Vec<u8> {
    let mut out = vec![1u8];
    out.extend_from_slice(message.as_bytes());
    out
}

/// Encode an overloaded (load-shed) response payload.
pub fn encode_overloaded_response(message: &str) -> Vec<u8> {
    let mut out = vec![2u8];
    out.extend_from_slice(message.as_bytes());
    out
}

/// Cursor-style helpers for response decoding.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], WireError> {
        let bytes: [u8; N] = self
            .buf
            .get(self.pos..self.pos + N)
            .and_then(|s| s.try_into().ok())
            .ok_or(WireError::Truncated(what))?;
        self.pos += N;
        Ok(bytes)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(what)?))
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated(what))?;
        self.pos += n;
        Ok(slice)
    }
}

/// Split a response payload into its ok body, or surface the remote error.
fn response_body(payload: &[u8]) -> Result<&[u8], WireError> {
    match payload.split_first() {
        Some((0, body)) => Ok(body),
        Some((1, msg)) => Err(WireError::Remote(String::from_utf8_lossy(msg).into_owned())),
        Some((2, msg)) => Err(WireError::Overloaded(
            String::from_utf8_lossy(msg).into_owned(),
        )),
        Some(_) => Err(WireError::Malformed("unknown response status")),
        None => Err(WireError::Truncated("empty response")),
    }
}

/// Decode one verdict at the cursor (inverse of [`Verdict::encode_into`]).
fn decode_verdict(r: &mut Reader<'_>) -> Result<Verdict, WireError> {
    let ip = Ipv4Addr::from(r.u32("verdict ip")?);
    let generation = r.u64("verdict generation")?;
    let class = match r.u8("verdict class")? {
        0 => VerdictClass::Unlisted,
        1 => VerdictClass::Block,
        2 => VerdictClass::Greylist,
        _ => return Err(WireError::Malformed("verdict class")),
    };
    let evidence = match r.u8("evidence tag")? {
        0 => None,
        1 => Some(ReuseEvidence::Natted {
            users: r.u32("nat users")?,
        }),
        2 => Some(ReuseEvidence::DynamicPrefix),
        _ => return Err(WireError::Malformed("evidence tag")),
    };
    let n_lists = r.u16("list count")?;
    let mut lists = Vec::with_capacity(usize::from(n_lists));
    for _ in 0..n_lists {
        let list = ListId(r.u16("list id")?);
        let action = match r.u8("list action")? {
            0 => Action::Block,
            1 => Action::Greylist,
            _ => return Err(WireError::Malformed("list action")),
        };
        lists.push(ListVerdict { list, action });
    }
    Ok(Verdict {
        ip,
        generation,
        class,
        evidence,
        lists,
    })
}

/// Decode an ok query response back into verdicts (client side).
pub fn decode_query_response(payload: &[u8]) -> Result<Vec<Verdict>, WireError> {
    let body = response_body(payload)?;
    let mut r = Reader { buf: body, pos: 0 };
    let n = r.u32("verdict count")?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(decode_verdict(&mut r)?);
    }
    if r.pos != body.len() {
        return Err(WireError::Malformed("trailing bytes after verdicts"));
    }
    Ok(out)
}

/// Decode an ok generation response (client side).
pub fn decode_generation_response(payload: &[u8]) -> Result<u64, WireError> {
    let body = response_body(payload)?;
    let mut r = Reader { buf: body, pos: 0 };
    let gen = r.u64("generation")?;
    if r.pos != body.len() {
        return Err(WireError::Malformed("trailing bytes after generation"));
    }
    Ok(gen)
}

/// Decode an ok health response (client side).
pub fn decode_health_response(payload: &[u8]) -> Result<HealthProbe, WireError> {
    let body = response_body(payload)?;
    let mut r = Reader { buf: body, pos: 0 };
    let state = HealthState::from_code(r.u8("health state")?)
        .ok_or(WireError::Malformed("health state"))?;
    let generation = r.u64("serving generation")?;
    let last_good_generation = r.u64("last-good generation")?;
    let reason_len = usize::from(r.u16("reason length")?);
    let reason_bytes = body
        .get(r.pos..r.pos + reason_len)
        .ok_or(WireError::Truncated("health reason"))?;
    r.pos += reason_len;
    if r.pos != body.len() {
        return Err(WireError::Malformed("trailing bytes after health reason"));
    }
    let reason = std::str::from_utf8(reason_bytes)
        .map_err(|_| WireError::Malformed("health reason utf-8"))?
        .to_owned();
    Ok(HealthProbe {
        state,
        generation,
        last_good_generation,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let ips = vec![0u32, 1, 0xDEAD_BEEF, u32::MAX];
        let payload = encode_query(&ips);
        assert_eq!(decode_request(&payload).unwrap(), Request::Query(ips));
        assert_eq!(
            decode_request(&encode_generation_probe()).unwrap(),
            Request::Generation
        );
    }

    #[test]
    fn malformed_requests_are_refused_not_panicked() {
        assert!(matches!(decode_request(&[]), Err(WireError::Truncated(_))));
        assert!(matches!(decode_request(&[9]), Err(WireError::BadOp(9))));
        assert!(matches!(
            decode_request(&[OP_QUERY, 0, 0]),
            Err(WireError::Truncated(_))
        ));
        // Count says 2 addresses, body carries 1.
        let mut short = encode_query(&[5, 6]);
        short.truncate(short.len() - 4);
        assert!(matches!(
            decode_request(&short),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[OP_GENERATION, 0]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cursor = &oversized[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge(_))
        ));

        // Truncated body: declared 10 bytes, stream carries 3.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&10u32.to_be_bytes());
        truncated.extend_from_slice(b"abc");
        let mut cursor = &truncated[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Truncated(_))
        ));
    }

    #[test]
    fn error_responses_surface_the_remote_message() {
        let payload = encode_error_response("bad op 9");
        match decode_query_response(&payload) {
            Err(WireError::Remote(msg)) => assert_eq!(msg, "bad op 9"),
            other => panic!("expected remote error, got {other:?}"),
        }
    }

    #[test]
    fn generation_response_round_trips() {
        let payload = encode_generation_response(42);
        assert_eq!(decode_generation_response(&payload).unwrap(), 42);
    }

    #[test]
    fn health_probe_and_response_round_trip() {
        assert_eq!(
            decode_request(&encode_health_probe()).unwrap(),
            Request::Health
        );
        assert!(matches!(
            decode_request(&[OP_HEALTH, 0]),
            Err(WireError::Malformed(_))
        ));
        let probe = HealthProbe {
            state: HealthState::Degraded,
            generation: 7,
            last_good_generation: 6,
            reason: "snapshot rejected: checksum mismatch".to_owned(),
        };
        let decoded = decode_health_response(&encode_health_response(&probe)).unwrap();
        assert_eq!(decoded, probe);
        // Empty reason is fine too.
        let quiet = HealthProbe {
            state: HealthState::Serving,
            generation: 1,
            last_good_generation: 1,
            reason: String::new(),
        };
        assert_eq!(
            decode_health_response(&encode_health_response(&quiet)).unwrap(),
            quiet
        );
        // A truncated reason is refused, not panicked.
        let mut cut = encode_health_response(&probe);
        cut.truncate(cut.len() - 3);
        assert!(matches!(
            decode_health_response(&cut),
            Err(WireError::Truncated(_))
        ));
    }

    #[test]
    fn stats_probe_and_response_round_trip() {
        assert_eq!(
            decode_request(&encode_stats_probe()).unwrap(),
            Request::Stats
        );
        assert!(matches!(
            decode_request(&[OP_STATS, 1]),
            Err(WireError::Malformed(_))
        ));
        let frame = StatsFrame {
            tick: 4096,
            generation: 3,
            health_state: HealthState::Serving,
            queue_depths: vec![0, 7, 2],
            counters: BTreeMap::from([
                ("serve.queries".to_owned(), 4096),
                ("serve.overloaded".to_owned(), 12),
            ]),
            windows: vec![
                WindowSummary {
                    index: 2,
                    counters: BTreeMap::from([("queries".to_owned(), 1024)]),
                    batch_count: 16,
                    batch_sum: 1024,
                },
                WindowSummary {
                    index: 3,
                    counters: BTreeMap::new(),
                    batch_count: 0,
                    batch_sum: 0,
                },
            ],
            slo: SloState {
                breached: true,
                breaches: 2,
                recoveries: 1,
                windows_evaluated: 3,
                last_shed_permille: 75,
                shed_budget_permille: 50,
            },
            trace_count: 40,
            trace_digest: 0xDEAD_BEEF_CAFE_F00D,
        };
        let payload = encode_stats_response(&frame);
        assert_eq!(decode_stats_response(&payload).unwrap(), frame);
        // Canonical: encoding the decoded frame is byte-identical.
        assert_eq!(
            encode_stats_response(&decode_stats_response(&payload).unwrap()),
            payload
        );
        // Truncation anywhere is refused, not panicked.
        for cut in [1, payload.len() / 2, payload.len() - 1] {
            assert!(decode_stats_response(&payload[..cut]).is_err());
        }
        // Trailing garbage is refused.
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            decode_stats_response(&long),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn empty_stats_frame_round_trips() {
        let frame = StatsFrame {
            tick: 0,
            generation: 1,
            health_state: HealthState::Starting,
            queue_depths: Vec::new(),
            counters: BTreeMap::new(),
            windows: Vec::new(),
            slo: SloState::idle(),
            trace_count: 0,
            trace_digest: 0,
        };
        let payload = encode_stats_response(&frame);
        assert_eq!(decode_stats_response(&payload).unwrap(), frame);
    }

    #[test]
    fn overloaded_responses_decode_as_retryable() {
        let payload = encode_overloaded_response("shard 1 queue full");
        match decode_query_response(&payload) {
            Err(WireError::Overloaded(msg)) => assert_eq!(msg, "shard 1 queue full"),
            other => panic!("expected overloaded, got {other:?}"),
        }
        // Status 2 is distinct from status 1: callers can tell shed from error.
        match decode_generation_response(&encode_error_response("boom")) {
            Err(WireError::Remote(msg)) => assert_eq!(msg, "boom"),
            other => panic!("expected remote error, got {other:?}"),
        }
    }
}
