//! Serving-path fault injection: the live hooks behind an
//! [`ar_faults::ServeFaultPlan`], plus the hostile-client driver the
//! chaos tests and `bench_chaos` use.
//!
//! This module is deliberately *outside* the ar-lint R3 panic scope: an
//! injected worker panic is a real `panic!` on the worker thread, which
//! is exactly what the shard supervisor in [`crate::server`] must catch.
//! Every injection is recorded in a chaos log whose canonical snapshot
//! ([`FaultInjector::log_snapshot`]) is sorted by fault key, so two runs
//! of the same seeded workload produce identical logs regardless of
//! thread interleaving.

use ar_faults::{ClientMisbehavior, ServeFaultPlan};
use ar_obs::Obs;
use parking_lot::Mutex;
use serde::Serialize;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One injected fault, keyed by where in the workload it fired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct ChaosEvent {
    /// `worker_stall`, `worker_panic` or `query_delay`.
    pub class: &'static str,
    pub shard: u64,
    /// Per-shard connection admission ordinal.
    pub conn: u64,
    /// Frame index on the connection (0 for connection-level faults).
    pub frame: u64,
    /// Injected sleep in milliseconds (0 for panics).
    pub magnitude_ms: u64,
}

impl ChaosEvent {
    fn counter(&self) -> &'static str {
        match self.class {
            "worker_stall" => "serve.chaos.worker_stalls",
            "worker_panic" => "serve.chaos.worker_panics",
            _ => "serve.chaos.query_delays",
        }
    }
}

/// The server-side injector: consults the plan at each hook point,
/// records what fired, then injects (sleep or panic).
pub struct FaultInjector {
    plan: Option<ServeFaultPlan>,
    log: Mutex<Vec<ChaosEvent>>,
}

impl FaultInjector {
    /// A zero-intensity plan is dropped outright so the hot path stays a
    /// single `Option` check (zero intensity is a strict no-op).
    pub fn new(plan: Option<ServeFaultPlan>) -> FaultInjector {
        FaultInjector {
            plan: plan.filter(|p| !p.is_zero()),
            log: Mutex::new(Vec::new()),
        }
    }

    pub fn active(&self) -> bool {
        self.plan.is_some()
    }

    pub fn plan(&self) -> Option<ServeFaultPlan> {
        self.plan
    }

    /// Canonically sorted copy of everything injected so far.
    pub fn log_snapshot(&self) -> Vec<ChaosEvent> {
        let mut log = self.log.lock().clone();
        log.sort();
        log
    }

    fn record(&self, obs: &Obs, event: ChaosEvent) {
        obs.add(event.counter(), 1);
        self.log.lock().push(event);
    }

    /// Hook: the shard worker is taking up admitted connection `conn`.
    /// May sleep (worker stall) and may panic (worker panic — the shard
    /// supervisor catches, records and restarts).
    pub(crate) fn on_connection(&self, obs: &Obs, shard: u64, conn: u64) {
        let Some(plan) = &self.plan else { return };
        if let Some(stall) = plan.worker_stall(shard, conn) {
            self.record(
                obs,
                ChaosEvent {
                    class: "worker_stall",
                    shard,
                    conn,
                    frame: 0,
                    magnitude_ms: stall.as_millis() as u64,
                },
            );
            std::thread::sleep(stall);
        }
        if plan.worker_panic(shard, conn) {
            self.record(
                obs,
                ChaosEvent {
                    class: "worker_panic",
                    shard,
                    conn,
                    frame: 0,
                    magnitude_ms: 0,
                },
            );
            panic!("injected fault: worker panic on shard {shard} connection {conn}");
        }
    }

    /// Hook: the worker is about to answer frame `frame` of connection
    /// `conn`. May sleep (latency spike).
    pub(crate) fn before_frame(&self, obs: &Obs, shard: u64, conn: u64, frame: u64) {
        let Some(plan) = &self.plan else { return };
        if let Some(delay) = plan.query_delay(shard, conn, frame) {
            self.record(
                obs,
                ChaosEvent {
                    class: "query_delay",
                    shard,
                    conn,
                    frame,
                    magnitude_ms: delay.as_millis() as u64,
                },
            );
            std::thread::sleep(delay);
        }
    }
}

/// Drive one hostile client session against `addr` per `behavior`;
/// `query_payload` is the request the session would have sent honestly.
/// Returns the number of connections opened. IO errors are swallowed —
/// the server dropping a misbehaving peer is the expected outcome.
pub fn misbehave(addr: SocketAddr, behavior: ClientMisbehavior, query_payload: &[u8]) -> usize {
    match behavior {
        ClientMisbehavior::None => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return 0;
            };
            if crate::wire::write_frame(&mut stream, query_payload).is_ok() {
                let _ = crate::wire::read_frame(&mut stream);
            }
            1
        }
        ClientMisbehavior::SlowLoris { chunk, delay_ms } => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return 0;
            };
            // Trickle the frame out a few bytes at a time. A patient
            // server answers anyway; one past its stall budget cuts us off.
            let mut frame = (query_payload.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(query_payload);
            for piece in frame.chunks(chunk.max(1)) {
                if stream
                    .write_all(piece)
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    return 1;
                }
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            let _ = crate::wire::read_frame(&mut stream);
            1
        }
        ClientMisbehavior::TruncateFrame { keep_permille } => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return 0;
            };
            // Declare the full length, deliver only part of the body,
            // then vanish mid-frame.
            let keep = query_payload.len() * usize::from(keep_permille) / 1000;
            let mut partial = (query_payload.len() as u32).to_be_bytes().to_vec();
            partial.extend_from_slice(&query_payload[..keep]);
            let _ = stream.write_all(&partial).and_then(|()| stream.flush());
            drop(stream);
            1
        }
        ClientMisbehavior::ConnectionChurn { connects } => {
            let mut opened = 0;
            for _ in 0..connects {
                if let Ok(stream) = TcpStream::connect(addr) {
                    opened += 1;
                    drop(stream);
                }
            }
            opened
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::rng::Seed;

    #[test]
    fn zero_intensity_injector_is_inert() {
        let injector = FaultInjector::new(Some(ServeFaultPlan::new(Seed(1), 0.0)));
        assert!(!injector.active());
        let obs = Obs::new();
        for conn in 0..100 {
            injector.on_connection(&obs, 0, conn);
            injector.before_frame(&obs, 0, conn, 0);
        }
        assert!(injector.log_snapshot().is_empty());
        assert!(obs.report().counters.is_empty());
        assert!(!FaultInjector::new(None).active());
    }

    #[test]
    fn log_snapshot_is_canonical_regardless_of_record_order() {
        let injector = FaultInjector::new(Some(ServeFaultPlan::new(Seed(1), 1.0)));
        let obs = Obs::new();
        let forward: Vec<u64> = (0..200).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        for &conn in &reversed {
            injector.on_connection_catching(&obs, 1, conn);
        }
        let log_rev = injector.log_snapshot();
        let injector2 = FaultInjector::new(Some(ServeFaultPlan::new(Seed(1), 1.0)));
        for &conn in &forward {
            injector2.on_connection_catching(&obs, 1, conn);
        }
        assert_eq!(log_rev, injector2.log_snapshot());
        assert!(!log_rev.is_empty(), "full intensity injects something");
    }

    impl FaultInjector {
        /// Test helper: run the connection hook but swallow injected
        /// panics (there is no supervisor in a unit test).
        fn on_connection_catching(&self, obs: &Obs, shard: u64, conn: u64) {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.on_connection(obs, shard, conn)
            }));
        }
    }
}
