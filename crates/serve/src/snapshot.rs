//! The immutable, versioned artifact the service answers from.
//!
//! A [`ReputationSnapshot`] compiles a study's join outputs — the
//! blocklist membership relation, the NAT user bounds and the dynamic
//! address space — into three sorted indexes:
//!
//! * the distinct blocklisted addresses ([`ar_index::IpSet`]) with a CSR
//!   posting table mapping each address to the lists that carry it, so a
//!   lookup answers *which* of the 151 lists fired, not just "listed";
//! * the NATed addresses with their per-address user lower bounds;
//! * the dynamically-allocated space (/24 prefixes plus exact addresses).
//!
//! A lookup combines them with the §6 [`GreylistPolicy`] into a
//! [`Verdict`]. Snapshots are immutable after [`build`]; the server swaps
//! whole `Arc`s, never mutates.

use ar_blocklists::policy::{
    action_for, Action, GreylistPolicy, ReuseEvidence, ReusedAddressEntry,
};
use ar_blocklists::{BlocklistMeta, ListId};
use ar_index::{IpSet, PrefixSet};
use std::net::Ipv4Addr;

/// Headline class of a [`Verdict`]: the strictest action any list
/// produced, or `Unlisted` when no list carries the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum VerdictClass {
    /// No monitored list carries the address.
    Unlisted,
    /// At least one list demands a hard block.
    Block,
    /// Listed, and every listing softens to greylist under the policy.
    Greylist,
}

impl VerdictClass {
    /// Stable wire byte (also the order used in metrics names).
    pub fn code(self) -> u8 {
        match self {
            VerdictClass::Unlisted => 0,
            VerdictClass::Block => 1,
            VerdictClass::Greylist => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            VerdictClass::Unlisted => "unlisted",
            VerdictClass::Block => "block",
            VerdictClass::Greylist => "greylist",
        }
    }
}

/// The policy outcome for one list that carries the queried address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ListVerdict {
    pub list: ListId,
    pub action: Action,
}

/// Everything the service knows about one address under one snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Verdict {
    pub ip: Ipv4Addr,
    /// Generation of the snapshot that produced this verdict.
    pub generation: u64,
    pub class: VerdictClass,
    /// Reuse evidence backing any greylist downgrade.
    pub evidence: Option<ReuseEvidence>,
    /// Per-list outcomes, ascending by list id.
    pub lists: Vec<ListVerdict>,
}

impl Verdict {
    /// Append the fixed-layout byte encoding: `ip:u32 gen:u64 class:u8
    /// evidence:(tag:u8 [users:u32]) nlists:u16 (list:u16 action:u8)*`,
    /// all big-endian. This is the byte stream the determinism tests
    /// checksum, so the layout is part of the service contract.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::from(self.ip).to_be_bytes());
        out.extend_from_slice(&self.generation.to_be_bytes());
        out.push(self.class.code());
        match self.evidence {
            None => out.push(0),
            Some(ReuseEvidence::Natted { users }) => {
                out.push(1);
                out.extend_from_slice(&users.to_be_bytes());
            }
            Some(ReuseEvidence::DynamicPrefix) => out.push(2),
        }
        out.extend_from_slice(&(self.lists.len() as u16).to_be_bytes());
        for lv in &self.lists {
            out.extend_from_slice(&lv.list.0.to_be_bytes());
            out.push(match lv.action {
                Action::Block => 0,
                Action::Greylist => 1,
            });
        }
    }
}

/// Concatenated [`Verdict::encode_into`] of a whole stream.
pub fn encode_verdicts(verdicts: &[Verdict]) -> Vec<u8> {
    let mut out = Vec::with_capacity(verdicts.len() * 16);
    for v in verdicts {
        v.encode_into(&mut out);
    }
    out
}

/// FNV-1a 64 over a byte stream: the checksum the determinism tests and
/// the CI smoke job compare across shard counts and transports. This is
/// the workspace-shared implementation (`ar_simnet::fnv`), re-exported so
/// existing `ar_serve::fnv1a64` callers keep working.
pub use ar_index::fnv::fnv1a64;

/// Checksum of a verdict stream's canonical encoding.
pub fn checksum_verdicts(verdicts: &[Verdict]) -> u64 {
    fnv1a64(&encode_verdicts(verdicts))
}

/// Raw inputs to [`ReputationSnapshot::build`]: the join artifacts in
/// neutral form, so the builder does not depend on the study crate.
#[derive(Debug, Default, Clone)]
pub struct SnapshotInput {
    /// `(address, list)` membership pairs; duplicates and disorder are
    /// tolerated and canonicalised by the builder.
    pub memberships: Vec<(u32, ListId)>,
    /// `(address, user lower bound)` NAT evidence; on duplicates the
    /// largest bound wins.
    pub nat_evidence: Vec<(u32, u32)>,
    /// Dynamically-allocated /24s from the Atlas pipeline.
    pub dynamic_prefixes: PrefixSet,
    /// Exact dynamic addresses (when prefix expansion is off).
    pub dynamic_addresses: IpSet,
}

/// Why a snapshot failed validation and must not be installed.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum SnapshotDefect {
    /// The stored content checksum does not match the indexes.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// An index array violates a structural invariant; the message names
    /// the broken one.
    Structural(&'static str),
    /// The offered generation is not strictly newer than the serving one
    /// (only produced by [`crate::server::ReputationServer::offer_swap`]).
    GenerationRegression { offered: u64, serving: u64 },
}

impl std::fmt::Display for SnapshotDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDefect::ChecksumMismatch { stored, computed } => write!(
                f,
                "content checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotDefect::Structural(what) => write!(f, "structural damage: {what}"),
            SnapshotDefect::GenerationRegression { offered, serving } => write!(
                f,
                "generation regression: offered {offered} while serving {serving}"
            ),
        }
    }
}

/// See module docs. Built once, then shared immutably behind an `Arc`.
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    generation: u64,
    policy: GreylistPolicy,
    catalog: Vec<BlocklistMeta>,
    /// Distinct blocklisted addresses, ascending.
    addrs: IpSet,
    /// CSR row offsets into `list_ids`; `len = addrs.len() + 1`.
    offsets: Vec<u32>,
    /// Posting lists: for the i-th address, the lists carrying it live at
    /// `list_ids[offsets[i]..offsets[i+1]]`, ascending.
    list_ids: Vec<u16>,
    /// NATed addresses, ascending, parallel to `nat_users`.
    nat: IpSet,
    nat_users: Vec<u32>,
    dynamic_prefixes: PrefixSet,
    dynamic_addresses: IpSet,
    /// FNV-1a over the canonical index encoding, taken at build time.
    /// [`ReputationSnapshot::validate`] recomputes and compares, so any
    /// post-build mutation of the indexes is detectable before a swap.
    content_checksum: u64,
}

impl ReputationSnapshot {
    /// Compile the join artifacts into the immutable serving form.
    pub fn build(
        generation: u64,
        catalog: Vec<BlocklistMeta>,
        policy: GreylistPolicy,
        input: SnapshotInput,
    ) -> ReputationSnapshot {
        let SnapshotInput {
            mut memberships,
            mut nat_evidence,
            dynamic_prefixes,
            dynamic_addresses,
        } = input;

        memberships.sort_unstable_by_key(|&(ip, list)| (ip, list.0));
        memberships.dedup();
        let mut addrs = Vec::new();
        let mut offsets = vec![0u32];
        let mut list_ids = Vec::with_capacity(memberships.len());
        for &(ip, list) in &memberships {
            if addrs.last() != Some(&ip) {
                addrs.push(ip);
                offsets.push(list_ids.len() as u32);
            }
            list_ids.push(list.0);
            if let Some(last) = offsets.last_mut() {
                *last = list_ids.len() as u32;
            }
        }

        // Largest bound wins on duplicate NAT evidence for one address.
        nat_evidence.sort_unstable();
        let mut nat = Vec::new();
        let mut nat_users: Vec<u32> = Vec::new();
        for (ip, users) in nat_evidence {
            if nat.last() == Some(&ip) {
                if let Some(u) = nat_users.last_mut() {
                    *u = (*u).max(users);
                }
            } else {
                nat.push(ip);
                nat_users.push(users);
            }
        }

        let mut snapshot = ReputationSnapshot {
            generation,
            policy,
            catalog,
            addrs: IpSet::from_sorted(addrs),
            offsets,
            list_ids,
            nat: IpSet::from_sorted(nat),
            nat_users,
            dynamic_prefixes,
            dynamic_addresses,
            content_checksum: 0,
        };
        snapshot.content_checksum = snapshot.compute_content_checksum();
        snapshot
    }

    /// FNV-1a over the canonical encoding of every index array plus the
    /// generation. Pure function of the compiled content — two snapshots
    /// built from the same canonicalised inputs share it.
    pub fn compute_content_checksum(&self) -> u64 {
        let mut bytes: Vec<u8> = Vec::with_capacity(
            16 + self.addrs.len() * 4
                + self.offsets.len() * 4
                + self.list_ids.len() * 2
                + self.nat.len() * 8,
        );
        bytes.extend_from_slice(&self.generation.to_be_bytes());
        bytes.extend_from_slice(&(self.addrs.len() as u64).to_be_bytes());
        for &ip in self.addrs.as_raw() {
            bytes.extend_from_slice(&ip.to_be_bytes());
        }
        for &off in &self.offsets {
            bytes.extend_from_slice(&off.to_be_bytes());
        }
        for &list in &self.list_ids {
            bytes.extend_from_slice(&list.to_be_bytes());
        }
        for (&ip, &users) in self.nat.as_raw().iter().zip(&self.nat_users) {
            bytes.extend_from_slice(&ip.to_be_bytes());
            bytes.extend_from_slice(&users.to_be_bytes());
        }
        for p in self.dynamic_prefixes.iter() {
            bytes.extend_from_slice(&p.raw().to_be_bytes());
        }
        for &ip in self.dynamic_addresses.as_raw() {
            bytes.extend_from_slice(&ip.to_be_bytes());
        }
        fnv1a64(&bytes)
    }

    /// The checksum taken at build time (what [`Self::validate`] compares
    /// against).
    pub fn content_checksum(&self) -> u64 {
        self.content_checksum
    }

    /// Check the snapshot is safe to install: every structural invariant
    /// the lookup paths rely on holds, and the content checksum matches a
    /// fresh recomputation. Total and allocation-light; the server runs
    /// it on every offered swap.
    pub fn validate(&self) -> Result<(), SnapshotDefect> {
        if self.offsets.len() != self.addrs.len() + 1 {
            return Err(SnapshotDefect::Structural("offsets length != addrs + 1"));
        }
        if self.offsets.first() != Some(&0) {
            return Err(SnapshotDefect::Structural("offsets must start at 0"));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotDefect::Structural("offsets must be nondecreasing"));
        }
        if self.offsets.last().copied().unwrap_or(0) as usize != self.list_ids.len() {
            return Err(SnapshotDefect::Structural(
                "last offset != posting-table length",
            ));
        }
        if self.nat.len() != self.nat_users.len() {
            return Err(SnapshotDefect::Structural(
                "nat addresses and user bounds disagree in length",
            ));
        }
        if self.addrs.as_raw().windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotDefect::Structural(
                "listed addresses must be strictly ascending",
            ));
        }
        let computed = self.compute_content_checksum();
        if computed != self.content_checksum {
            return Err(SnapshotDefect::ChecksumMismatch {
                stored: self.content_checksum,
                computed,
            });
        }
        Ok(())
    }

    /// Damage the snapshot in a controlled way (chaos tooling — the fault
    /// suites and `bench_chaos` build sabotaged snapshots to prove the
    /// validated swap path rejects them). `GenerationRegression` leaves
    /// the content intact; the regression is in the generation the caller
    /// offers it under.
    pub fn sabotaged(mut self, fault: ar_faults::SnapshotFault) -> ReputationSnapshot {
        match fault {
            ar_faults::SnapshotFault::CorruptPostings => {
                // Flip a posting bit after the checksum was taken; if the
                // posting table is empty, corrupt an offset instead.
                if let Some(list) = self.list_ids.first_mut() {
                    *list ^= 1;
                } else if let Some(off) = self.offsets.first_mut() {
                    *off ^= 1;
                }
            }
            ar_faults::SnapshotFault::ChecksumMismatch => {
                self.content_checksum ^= 0xDEAD_BEEF;
            }
            ar_faults::SnapshotFault::StructuralTruncation => {
                self.offsets.pop();
            }
            ar_faults::SnapshotFault::GenerationRegression => {}
        }
        self
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn policy(&self) -> &GreylistPolicy {
        &self.policy
    }

    /// Distinct blocklisted addresses the snapshot indexes.
    pub fn listed_addresses(&self) -> &IpSet {
        &self.addrs
    }

    /// Total membership pairs (listings collapsed to current membership).
    pub fn posting_count(&self) -> usize {
        self.list_ids.len()
    }

    /// The reuse evidence the snapshot holds for `ip`, NAT winning over
    /// dynamic (it is per-address and carries a user count).
    pub fn evidence_for(&self, ip: Ipv4Addr) -> Option<ReuseEvidence> {
        let raw: u32 = ip.into();
        if let Ok(i) = self.nat.as_raw().binary_search(&raw) {
            return Some(ReuseEvidence::Natted {
                users: self.nat_users.get(i).copied().unwrap_or(2),
            });
        }
        if self.dynamic_prefixes.contains_ip(ip) || self.dynamic_addresses.contains(ip) {
            return Some(ReuseEvidence::DynamicPrefix);
        }
        None
    }

    /// The lists carrying `ip`, ascending; empty when unlisted.
    pub fn lists_for(&self, ip: Ipv4Addr) -> &[u16] {
        let raw: u32 = ip.into();
        match self.addrs.as_raw().binary_search(&raw) {
            Ok(i) => {
                let lo = self.offsets.get(i).copied().unwrap_or(0) as usize;
                let hi = self.offsets.get(i + 1).copied().unwrap_or(0) as usize;
                self.list_ids.get(lo..hi).unwrap_or(&[])
            }
            Err(_) => &[],
        }
    }

    /// Answer one query: which lists fired, the reuse evidence, and the
    /// per-list §6 action, folded into a headline class.
    pub fn verdict(&self, raw_ip: u32) -> Verdict {
        let ip = Ipv4Addr::from(raw_ip);
        let fired = self.lists_for(ip);
        let evidence = if fired.is_empty() {
            // Unlisted addresses skip the evidence join: the reuse indexes
            // only matter for softening a listing.
            None
        } else {
            self.evidence_for(ip)
        };
        let entry = evidence.map(|evidence| ReusedAddressEntry {
            ip,
            evidence,
            lists: fired.len() as u32,
        });
        let mut lists = Vec::with_capacity(fired.len());
        let mut any_block = false;
        for &id in fired {
            let action = match self.catalog.get(usize::from(id)) {
                Some(meta) => action_for(&self.policy, meta, entry.as_ref()),
                // A posting for a list outside the catalogue cannot apply
                // category policy; fail safe to a hard block.
                None => Action::Block,
            };
            any_block |= action == Action::Block;
            lists.push(ListVerdict {
                list: ListId(id),
                action,
            });
        }
        let class = if lists.is_empty() {
            VerdictClass::Unlisted
        } else if any_block {
            VerdictClass::Block
        } else {
            VerdictClass::Greylist
        };
        Verdict {
            ip,
            generation: self.generation,
            class,
            evidence,
            lists,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_blocklists::build_catalog;
    use ar_simnet::malice::MaliceCategory;

    fn catalog_ids(category: MaliceCategory) -> Vec<ListId> {
        build_catalog()
            .iter()
            .filter(|m| m.category == category)
            .map(|m| m.id)
            .collect()
    }

    fn snapshot() -> ReputationSnapshot {
        let spam = catalog_ids(MaliceCategory::Spam)[0];
        let ddos = catalog_ids(MaliceCategory::Ddos)[0];
        let input = SnapshotInput {
            memberships: vec![
                (10, spam),
                (10, ddos),
                (10, spam), // duplicate collapses
                (20, spam),
                (30, spam),
            ],
            nat_evidence: vec![(20, 4), (20, 9), (99, 3)],
            dynamic_prefixes: PrefixSet::from_raw(vec![30 >> 8]),
            dynamic_addresses: IpSet::new(),
        };
        ReputationSnapshot::build(7, build_catalog(), GreylistPolicy::default(), input)
    }

    #[test]
    fn postings_collapse_and_sort() {
        let s = snapshot();
        assert_eq!(s.listed_addresses().len(), 3);
        assert_eq!(s.posting_count(), 4);
        assert_eq!(s.lists_for(Ipv4Addr::from(10)).len(), 2);
        assert_eq!(s.lists_for(Ipv4Addr::from(40)).len(), 0);
    }

    #[test]
    fn ddos_listing_forces_block_class() {
        let s = snapshot();
        let v = s.verdict(10);
        assert_eq!(v.class, VerdictClass::Block);
        assert_eq!(v.generation, 7);
        assert_eq!(v.lists.len(), 2);
    }

    #[test]
    fn natted_spam_listing_greylists_with_max_bound() {
        let s = snapshot();
        let v = s.verdict(20);
        assert_eq!(v.class, VerdictClass::Greylist);
        assert_eq!(v.evidence, Some(ReuseEvidence::Natted { users: 9 }));
    }

    #[test]
    fn dynamic_prefix_greylists_spam() {
        let s = snapshot();
        let v = s.verdict(30);
        assert_eq!(v.class, VerdictClass::Greylist);
        assert_eq!(v.evidence, Some(ReuseEvidence::DynamicPrefix));
    }

    #[test]
    fn unlisted_is_unlisted_even_with_evidence() {
        let s = snapshot();
        let v = s.verdict(99);
        assert_eq!(v.class, VerdictClass::Unlisted);
        assert_eq!(v.evidence, None);
        assert!(v.lists.is_empty());
    }

    #[test]
    fn fresh_snapshots_validate_and_checksums_are_content_stable() {
        let s = snapshot();
        assert!(s.validate().is_ok());
        assert_eq!(s.content_checksum(), s.compute_content_checksum());
        // An identical rebuild shares the checksum; a different generation
        // does not (the generation is part of the serving contract).
        let again = snapshot();
        assert_eq!(s.content_checksum(), again.content_checksum());
        let other = ReputationSnapshot::build(
            8,
            build_catalog(),
            GreylistPolicy::default(),
            SnapshotInput::default(),
        );
        assert_ne!(s.content_checksum(), other.content_checksum());
        assert!(other.validate().is_ok(), "empty snapshots are valid too");
    }

    #[test]
    fn every_sabotage_kind_is_caught_by_validate() {
        use ar_faults::SnapshotFault;
        let corrupt = snapshot().sabotaged(SnapshotFault::CorruptPostings);
        assert!(matches!(
            corrupt.validate(),
            Err(SnapshotDefect::ChecksumMismatch { .. })
        ));
        let lying = snapshot().sabotaged(SnapshotFault::ChecksumMismatch);
        assert!(matches!(
            lying.validate(),
            Err(SnapshotDefect::ChecksumMismatch { .. })
        ));
        let truncated = snapshot().sabotaged(SnapshotFault::StructuralTruncation);
        assert!(matches!(
            truncated.validate(),
            Err(SnapshotDefect::Structural(_))
        ));
        // Generation regression leaves content intact — the server-side
        // monotonicity check is what rejects it.
        let regressed = snapshot().sabotaged(SnapshotFault::GenerationRegression);
        assert!(regressed.validate().is_ok());
    }

    #[test]
    fn encoding_is_stable() {
        let s = snapshot();
        let stream: Vec<Verdict> = [10u32, 20, 30, 99]
            .iter()
            .map(|&ip| s.verdict(ip))
            .collect();
        let a = checksum_verdicts(&stream);
        let b = checksum_verdicts(&stream);
        assert_eq!(a, b);
        // The empty stream hashes to the FNV offset basis.
        assert_eq!(checksum_verdicts(&[]), 0xcbf2_9ce4_8422_2325);
    }
}
