//! The blocking wire-protocol client, with an optional seeded retry
//! policy (the PR-2 ping-retry shape: bounded attempts, doubling backoff,
//! deterministic jitter) so chaos runs exercise client-side recovery too.

use crate::health::HealthProbe;
use crate::snapshot::Verdict;
use crate::telemetry::StatsFrame;
use crate::wire::{self, WireError};
use ar_faults::coin;
use ar_simnet::rng::Seed;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Namespace word for retry-jitter coins (never collides with the fault
/// plan's streams).
const RETRY_NS: u64 = 0x5245_5452_5901;

/// Bounded, seeded retry for connects and queries. Defaults to off —
/// one attempt, no sleeping — so the plain client stays plain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = never retry).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Seed for the deterministic jitter multiplier.
    pub seed: Seed,
}

impl RetryPolicy {
    /// No retries: errors surface immediately.
    pub fn off() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            seed: Seed(0),
        }
    }

    /// The chaos-suite preset: a few quick, jittered attempts.
    pub fn resilient(seed: Seed) -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff: Duration::from_millis(5),
            seed,
        }
    }

    /// Sleep before retry number `attempt` (1-based); `nonce` keys the
    /// jitter so a client's successive retry storms don't sleep in
    /// lockstep. Doubling base, deterministic 0.5–1.5× jitter.
    pub fn delay(&self, attempt: u32, nonce: u64) -> Duration {
        let doubled = self
            .backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let jitter = 0.5 + coin::unit(&[self.seed.0, RETRY_NS, u64::from(attempt), nonce]);
        doubled.mul_f64(jitter)
    }

    fn retryable(error: &WireError) -> bool {
        matches!(
            error,
            WireError::Closed
                | WireError::Io(_)
                | WireError::Truncated(_)
                | WireError::Overloaded(_)
        )
    }
}

/// A minimal blocking client for the frame protocol (used by the CLI
/// selftest, the CI smoke job, the chaos suite and the benches).
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    policy: RetryPolicy,
    /// Total retries fired over the client's lifetime (also the jitter
    /// nonce, so every sleep draws a fresh coin).
    retries_fired: u64,
}

impl Client {
    /// Connect with retries off.
    pub fn connect(addr: SocketAddr) -> Result<Client, WireError> {
        Client::connect_with(addr, RetryPolicy::off())
    }

    /// Connect under `policy`: failed connects are retried with backoff
    /// until the attempt budget runs out.
    pub fn connect_with(addr: SocketAddr, policy: RetryPolicy) -> Result<Client, WireError> {
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    return Ok(Client {
                        addr,
                        stream,
                        policy,
                        retries_fired: u64::from(attempt),
                    })
                }
                Err(e) if attempt < policy.max_retries => {
                    attempt += 1;
                    std::thread::sleep(policy.delay(attempt, u64::from(attempt)));
                    let _ = e;
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }

    /// Retries fired so far (connect + request retries).
    pub fn retries_fired(&self) -> u64 {
        self.retries_fired
    }

    /// Query a batch and decode the verdict stream.
    pub fn query(&mut self, ips: &[u32]) -> Result<Vec<Verdict>, WireError> {
        let request = wire::encode_query(ips);
        self.request(&request, wire::decode_query_response)
    }

    /// Probe the serving snapshot generation.
    pub fn generation(&mut self) -> Result<u64, WireError> {
        self.request(
            &wire::encode_generation_probe(),
            wire::decode_generation_response,
        )
    }

    /// Probe the health state machine.
    pub fn health(&mut self) -> Result<HealthProbe, WireError> {
        self.request(&wire::encode_health_probe(), wire::decode_health_response)
    }

    /// Scrape the live telemetry plane (`OP_STATS`).
    pub fn stats(&mut self) -> Result<StatsFrame, WireError> {
        self.request(&wire::encode_stats_probe(), wire::decode_stats_response)
    }

    /// Send raw bytes as a frame payload (fault-injection helper; never
    /// retried — the suite wants to see the first answer).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        wire::read_frame(&mut self.stream)
    }

    /// One request/response exchange under the retry policy. Queries are
    /// idempotent reads, so a retry re-sends the whole request on a
    /// fresh connection after a transport failure or an `Overloaded`
    /// shed.
    fn request<T>(
        &mut self,
        request: &[u8],
        decode: fn(&[u8]) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt = 0u32;
        loop {
            let result = wire::write_frame(&mut self.stream, request)
                .and_then(|()| wire::read_frame(&mut self.stream))
                .and_then(|payload| decode(&payload));
            match result {
                Ok(value) => return Ok(value),
                Err(e) if attempt < self.policy.max_retries && RetryPolicy::retryable(&e) => {
                    attempt += 1;
                    self.retries_fired += 1;
                    std::thread::sleep(self.policy.delay(attempt, self.retries_fired));
                    // The old stream is likely dead (worker panic, server
                    // drop); reconnect before the next attempt. A failed
                    // reconnect burns the attempt and keeps the old
                    // stream so the loop can error out naturally.
                    if let Ok(fresh) = TcpStream::connect(self.addr) {
                        self.stream = fresh;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_jitter_deterministically() {
        let policy = RetryPolicy::resilient(Seed(11));
        let again = RetryPolicy::resilient(Seed(11));
        for attempt in 1..=4u32 {
            let d = policy.delay(attempt, 7);
            assert_eq!(d, again.delay(attempt, 7), "seeded jitter must replay");
            let base = Duration::from_millis(5).saturating_mul(1 << (attempt - 1));
            assert!(d >= base.mul_f64(0.5) && d <= base.mul_f64(1.5), "{d:?}");
        }
        assert_ne!(
            policy.delay(2, 1),
            RetryPolicy::resilient(Seed(12)).delay(2, 1),
            "seed must matter"
        );
        assert_eq!(RetryPolicy::off().delay(1, 0), Duration::ZERO);
    }

    #[test]
    fn overloaded_and_transport_errors_are_retryable_remote_is_not() {
        assert!(RetryPolicy::retryable(&WireError::Closed));
        assert!(RetryPolicy::retryable(&WireError::Truncated("x")));
        assert!(RetryPolicy::retryable(&WireError::Overloaded(
            "shed".into()
        )));
        assert!(!RetryPolicy::retryable(&WireError::Remote("bad op".into())));
        assert!(!RetryPolicy::retryable(&WireError::Malformed("x")));
        assert!(!RetryPolicy::retryable(&WireError::BadOp(9)));
    }
}
