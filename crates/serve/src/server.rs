//! The sharded server: N worker threads answering from one atomically
//! hot-swappable [`ReputationSnapshot`].
//!
//! Two entry points share every code path below the transport:
//!
//! * the **in-process batch API** ([`ReputationServer::verdict`] /
//!   [`ReputationServer::verdict_batch`]) — a batch is split into
//!   contiguous per-shard chunks, answered in parallel, and reassembled in
//!   input order, so the verdict stream is byte-identical at any shard
//!   count;
//! * the **TCP front end** ([`ReputationServer::serve`]) — an acceptor
//!   hands connections round-robin to persistent shard workers speaking
//!   the [`crate::wire`] frame protocol.
//!
//! A swap replaces the whole `Arc` under a short write lock; queries in
//! flight keep the snapshot they started with, new frames see the new
//! generation. Malformed frames are answered with an error frame and the
//! connection is closed — the worker, the other connections and the
//! server survive (R3 scope: no panics on any request path).

use crate::snapshot::{ReputationSnapshot, Verdict};
use crate::wire::{
    self, encode_error_response, encode_generation_response, encode_query_response, Request,
    WireError,
};
use ar_obs::{EventKind, Obs};
use parking_lot::RwLock;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Phase name under which the server reports metrics and events.
pub const PHASE: &str = "serve";

/// The service: an immutable snapshot behind a swap lock, plus the shard
/// plan and the observability handle.
pub struct ReputationServer {
    current: RwLock<Arc<ReputationSnapshot>>,
    obs: Obs,
    shards: usize,
}

impl ReputationServer {
    /// `shards = 0` is clamped to 1. The snapshot-generation and shard
    /// gauges are published immediately.
    pub fn new(snapshot: ReputationSnapshot, shards: usize, obs: Obs) -> Arc<ReputationServer> {
        let shards = shards.max(1);
        obs.set_gauge("serve.generation", snapshot.generation() as i64);
        obs.set_gauge("serve.shards", shards as i64);
        Arc::new(ReputationServer {
            current: RwLock::new(Arc::new(snapshot)),
            obs,
            shards,
        })
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The snapshot new queries answer from.
    pub fn snapshot(&self) -> Arc<ReputationSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Atomically install `next`; in-flight queries keep their snapshot.
    /// Returns the retired generation.
    pub fn swap(&self, next: ReputationSnapshot) -> u64 {
        let next_gen = next.generation();
        let next = Arc::new(next);
        let old_gen = {
            let mut slot = self.current.write();
            let old = slot.generation();
            *slot = next;
            old
        };
        self.obs.set_gauge("serve.generation", next_gen as i64);
        self.obs.event(
            PHASE,
            EventKind::SnapshotSwapped,
            None,
            1,
            format!("generation {old_gen} -> {next_gen}"),
        );
        old_gen
    }

    /// Answer one address.
    pub fn verdict(&self, ip: u32) -> Verdict {
        let start = Instant::now();
        let snapshot = self.snapshot();
        let v = snapshot.verdict(ip);
        self.record_answers(std::slice::from_ref(&v), start.elapsed());
        v
    }

    /// Answer a batch: contiguous per-shard chunks, reassembled in input
    /// order. One snapshot serves the whole batch, so a concurrent swap
    /// never splits a batch across generations.
    pub fn verdict_batch(&self, ips: &[u32]) -> Vec<Verdict> {
        let start = Instant::now();
        let snapshot = self.snapshot();
        let verdicts = batch_on(&snapshot, ips, self.shards);
        self.record_answers(&verdicts, start.elapsed());
        verdicts
    }

    fn record_answers(&self, verdicts: &[Verdict], took: Duration) {
        if verdicts.is_empty() || !self.obs.enabled() {
            return;
        }
        self.obs.add("serve.queries", verdicts.len() as u64);
        for v in verdicts {
            self.obs.add(
                match v.class.name() {
                    "block" => "serve.verdict.block",
                    "greylist" => "serve.verdict.greylist",
                    _ => "serve.verdict.unlisted",
                },
                1,
            );
        }
        self.obs
            .observe("serve.batch_micros", took.as_micros() as u64);
        self.obs.event(
            PHASE,
            EventKind::QueryServed,
            None,
            verdicts.len() as u64,
            "verdict batch answered",
        );
    }

    /// Start the TCP front end on `listener`: one acceptor thread plus
    /// one persistent worker per shard. Returns a handle owning the
    /// threads; dropping it (or calling [`ServerHandle::shutdown`]) stops
    /// the acceptor, drains the workers and joins everything.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut senders = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let server = Arc::clone(self);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                server.obs.event(
                    PHASE,
                    EventKind::ShardStarted,
                    None,
                    1,
                    format!("shard {shard} accepting connections"),
                );
                while let Ok(stream) = rx.recv() {
                    server.handle_connection(stream, &stop);
                }
            }));
        }

        let acceptor = {
            let server = Arc::clone(self);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut next = 0usize;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Round-robin connection placement across the
                            // shard workers.
                            let shard = next % senders.len().max(1);
                            next = next.wrapping_add(1);
                            if let Some(tx) = senders.get(shard) {
                                if tx.send(stream).is_err() {
                                    return;
                                }
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => {
                            server.obs.add("serve.accept_errors", 1);
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Serve one connection until it closes, sends garbage, or the server
    /// shuts down. Reads run against a short timeout with an incremental
    /// frame buffer — partial frames survive a timeout intact, and the
    /// worker polls `stop` between reads so a blocked connection can never
    /// deadlock [`ServerHandle::shutdown`]. Every malformed frame is
    /// answered with an error frame and counted; the worker then drops
    /// the connection and moves on.
    fn handle_connection(&self, mut stream: TcpStream, stop: &AtomicBool) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            // Drain every complete frame currently buffered.
            loop {
                if buf.len() < 4 {
                    break;
                }
                let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
                if declared > wire::MAX_FRAME {
                    self.reject_frame(&mut stream, &WireError::TooLarge(declared));
                    return;
                }
                let total = 4 + declared as usize;
                if buf.len() < total {
                    break;
                }
                let payload: Vec<u8> = buf[4..total].to_vec();
                buf.drain(..total);
                if !self.answer_frame(&mut stream, &payload) {
                    return;
                }
            }
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed; bytes left in the buffer are a frame
                    // that was promised but never completed.
                    if !buf.is_empty() {
                        self.reject_frame(
                            &mut stream,
                            &WireError::Truncated("connection closed mid-frame"),
                        );
                    }
                    return;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Idle tick: loop around and re-check the stop flag.
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.obs.add("serve.connection_drops", 1);
                    return;
                }
            }
        }
    }

    /// Decode and answer one frame payload. Returns `false` when the
    /// connection should be dropped.
    fn answer_frame(&self, stream: &mut TcpStream, payload: &[u8]) -> bool {
        let start = Instant::now();
        match wire::decode_request(payload) {
            Ok(Request::Query(ips)) => {
                // The worker thread is the shard: each connection's
                // frames are answered serially on one snapshot each.
                let snapshot = self.snapshot();
                let verdicts = batch_on(&snapshot, &ips, 1);
                self.record_answers(&verdicts, start.elapsed());
                self.obs
                    .observe("serve.frame_micros", start.elapsed().as_micros() as u64);
                if wire::write_frame(stream, &encode_query_response(&verdicts)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Ok(Request::Generation) => {
                let generation = self.snapshot().generation();
                if wire::write_frame(stream, &encode_generation_response(generation)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Err(e) => {
                self.reject_frame(stream, &e);
                false
            }
        }
    }

    fn reject_frame(&self, stream: &mut TcpStream, error: &WireError) {
        self.obs.add("serve.frames_rejected", 1);
        self.obs.event(
            PHASE,
            EventKind::FrameRejected,
            None,
            1,
            format!("refused frame: {error}"),
        );
        // Best effort: the peer may already be gone.
        let _ = wire::write_frame(stream, &encode_error_response(&error.to_string()));
    }
}

/// Split `ips` into `shards` contiguous chunks, answer each on its own
/// thread, and reassemble in input order. Chunk boundaries depend only on
/// `ips.len()` and `shards`, and every verdict depends only on the
/// snapshot, so the output is invariant under the shard count.
fn batch_on(snapshot: &ReputationSnapshot, ips: &[u32], shards: usize) -> Vec<Verdict> {
    let shards = shards.max(1).min(ips.len().max(1));
    if shards == 1 {
        return ips.iter().map(|&ip| snapshot.verdict(ip)).collect();
    }
    let chunk = ips.len().div_ceil(shards);
    let mut out = Vec::with_capacity(ips.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ips
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(|&ip| snapshot.verdict(ip)).collect()))
            .collect();
        for handle in handles {
            let part: Vec<Verdict> = match handle.join() {
                Ok(part) => part,
                // A panicking shard would already have poisoned the test
                // run; degrade to empty rather than propagate.
                Err(_) => Vec::new(),
            };
            out.extend(part);
        }
    });
    out
}

/// Owns the acceptor and shard worker threads of one TCP front end.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor owned the work senders; its exit closes the
        // channels and the workers drain out.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A minimal blocking client for the frame protocol (used by the CLI
/// selftest, the CI smoke job and the test suites).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Result<Client, WireError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Query a batch and decode the verdict stream.
    pub fn query(&mut self, ips: &[u32]) -> Result<Vec<Verdict>, WireError> {
        wire::write_frame(&mut self.stream, &wire::encode_query(ips))?;
        let payload = wire::read_frame(&mut self.stream)?;
        wire::decode_query_response(&payload)
    }

    /// Probe the serving snapshot generation.
    pub fn generation(&mut self) -> Result<u64, WireError> {
        wire::write_frame(&mut self.stream, &wire::encode_generation_probe())?;
        let payload = wire::read_frame(&mut self.stream)?;
        wire::decode_generation_response(&payload)
    }

    /// Send raw bytes as a frame payload (fault-injection helper).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        wire::read_frame(&mut self.stream)
    }
}

/// NaN-safe latency/throughput summary of one serve histogram: with zero
/// queries served every field renders as `0` or `n/a`, never `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_micros: f64,
    /// Log₂-bucket upper bound of the median, when any query was served.
    pub p50_micros: Option<u64>,
    /// Log₂-bucket upper bound of the 99th percentile, likewise.
    pub p99_micros: Option<u64>,
}

impl LatencySummary {
    /// Summarise `histogram` out of `report`; a missing histogram (the
    /// server never answered anything) summarises as zero, not NaN.
    pub fn from_report(report: &ar_obs::RunReport, histogram: &str) -> LatencySummary {
        match report.histograms.get(histogram) {
            Some(h) => LatencySummary {
                count: h.count,
                mean_micros: h.mean(),
                p50_micros: h.quantile(0.5),
                p99_micros: h.quantile(0.99),
            },
            None => LatencySummary {
                count: 0,
                mean_micros: 0.0,
                p50_micros: None,
                p99_micros: None,
            },
        }
    }

    /// `"<count> obs, mean <µs>, p50 <µs|n/a>, p99 <µs|n/a>"`.
    pub fn render(&self) -> String {
        let quant = |q: Option<u64>| match q {
            Some(v) => format!("{v}µs"),
            None => "n/a".into(),
        };
        format!(
            "{} obs, mean {:.1}µs, p50 {}, p99 {}",
            self.count,
            self.mean_micros,
            quant(self.p50_micros),
            quant(self.p99_micros)
        )
    }
}

/// Monotonically increasing generation source for callers that rebuild
/// snapshots in a loop (the CLI and benches).
pub struct GenerationCounter(AtomicU64);

impl GenerationCounter {
    pub fn starting_at(first: u64) -> GenerationCounter {
        GenerationCounter(AtomicU64::new(first))
    }

    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{checksum_verdicts, SnapshotInput};
    use ar_blocklists::policy::GreylistPolicy;
    use ar_blocklists::{build_catalog, ListId};

    fn small_snapshot(generation: u64) -> ReputationSnapshot {
        let input = SnapshotInput {
            memberships: (0..200u32)
                .map(|ip| (ip * 7, ListId((ip % 151) as u16)))
                .collect(),
            nat_evidence: (0..40u32).map(|ip| (ip * 14, 2 + ip % 9)).collect(),
            dynamic_prefixes: ar_index::PrefixSet::from_raw(vec![0, 3]),
            dynamic_addresses: ar_index::IpSet::new(),
        };
        ReputationSnapshot::build(
            generation,
            build_catalog(),
            GreylistPolicy::default(),
            input,
        )
    }

    #[test]
    fn batch_is_shard_count_invariant() {
        let snapshot = small_snapshot(1);
        let ips: Vec<u32> = (0..1000u32).map(|i| i * 3).collect();
        let base = batch_on(&snapshot, &ips, 1);
        for shards in [2, 3, 4, 7] {
            assert_eq!(
                checksum_verdicts(&batch_on(&snapshot, &ips, shards)),
                checksum_verdicts(&base),
                "shards={shards}"
            );
        }
        assert!(batch_on(&snapshot, &[], 4).is_empty());
    }

    #[test]
    fn swap_is_atomic_and_observable() {
        let obs = Obs::new();
        let server = ReputationServer::new(small_snapshot(1), 2, obs);
        assert_eq!(server.snapshot().generation(), 1);
        let old = server.swap(small_snapshot(2));
        assert_eq!(old, 1);
        assert_eq!(server.snapshot().generation(), 2);
        let report = server.obs().report();
        assert_eq!(report.gauges["serve.generation"], 2);
        assert_eq!(report.event_counts["snapshot_swapped"], 1);
    }

    #[test]
    fn verdict_classes_are_counted() {
        let server = ReputationServer::new(small_snapshot(1), 1, Obs::new());
        let ips: Vec<u32> = (0..500u32).collect();
        let verdicts = server.verdict_batch(&ips);
        assert_eq!(verdicts.len(), 500);
        let report = server.obs().report();
        assert_eq!(report.counters["serve.queries"], 500);
        let classed = report.counters.get("serve.verdict.block").unwrap_or(&0)
            + report.counters.get("serve.verdict.greylist").unwrap_or(&0)
            + report.counters.get("serve.verdict.unlisted").unwrap_or(&0);
        assert_eq!(classed, 500);
        assert_eq!(report.event_counts["query_served"], 500);
    }

    #[test]
    fn zero_query_latency_summary_is_nan_free() {
        let server = ReputationServer::new(small_snapshot(1), 4, Obs::new());
        let report = server.obs().report();
        let summary = LatencySummary::from_report(&report, "serve.batch_micros");
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mean_micros, 0.0);
        assert_eq!(summary.p50_micros, None);
        assert_eq!(summary.p99_micros, None);
        let rendered = summary.render();
        assert!(
            rendered.contains("p50 n/a") && rendered.contains("p99 n/a"),
            "{rendered}"
        );
        assert!(!rendered.contains("NaN"), "{rendered}");
        // And once queries flow, the quantiles appear.
        server.verdict_batch(&[1, 2, 3]);
        let summary = LatencySummary::from_report(&server.obs().report(), "serve.batch_micros");
        assert_eq!(summary.count, 1);
        assert!(summary.p50_micros.is_some() && summary.p99_micros.is_some());
        assert!(!summary.render().contains("NaN"));
    }

    #[test]
    fn generation_counter_is_monotone() {
        let gens = GenerationCounter::starting_at(5);
        assert_eq!(gens.next(), 5);
        assert_eq!(gens.next(), 6);
    }
}
