//! The sharded server: N supervised worker threads answering from one
//! atomically hot-swappable [`ReputationSnapshot`].
//!
//! Two entry points share every code path below the transport:
//!
//! * the **in-process batch API** ([`ReputationServer::verdict`] /
//!   [`ReputationServer::verdict_batch`]) — a batch is split into
//!   contiguous per-shard chunks, answered in parallel, and reassembled in
//!   input order, so the verdict stream is byte-identical at any shard
//!   count;
//! * the **TCP front end** ([`ReputationServer::serve`]) — an acceptor
//!   admits connections round-robin into bounded per-shard queues drained
//!   by persistent, supervised shard workers speaking the [`crate::wire`]
//!   frame protocol.
//!
//! Resilience mechanisms, each paired with a fault class in
//! [`ar_faults::ServeFaultPlan`]:
//!
//! * **shard supervision** — a worker panic is caught, recorded
//!   (`worker_panicked`) and the worker restarted (`worker_restarted`);
//!   only the connection being serviced is lost, other shards' verdict
//!   streams are untouched;
//! * **admission control** — the per-shard queue is bounded
//!   ([`ServeOptions::queue_cap`]) and carries a deadline budget
//!   ([`ServeOptions::queue_deadline`]); excess or expired admissions are
//!   shed with an explicit `Overloaded` wire reply instead of unbounded
//!   latency;
//! * **validated hot swap** ([`ReputationServer::offer_swap`]) — an
//!   offered snapshot must pass the FNV content checksum, the structural
//!   invariants and generation monotonicity; a failing offer is refused
//!   (`snapshot_rejected`) and the server keeps answering from the pinned
//!   last-good snapshot in a visible `Degraded` health state;
//! * **slow-loris defense** — a partial frame must complete within
//!   [`ServeOptions::stall_timeout`] or the connection is cut off.
//!
//! A swap replaces the whole `Arc` under a short write lock; queries in
//! flight keep the snapshot they started with, new frames see the new
//! generation. Malformed frames are answered with an error frame and the
//! connection is closed — the worker, the other connections and the
//! server survive (R3 scope: no panics on any request path; injected
//! chaos panics live in [`crate::chaos`], outside that scope).

use crate::chaos::{ChaosEvent, FaultInjector};
use crate::health::{HealthCell, HealthProbe, HealthState, ServeHealthReport};
use crate::snapshot::{ReputationSnapshot, SnapshotDefect, Verdict};
use crate::telemetry::{BatchOrigin, StatsFrame, Telemetry, TelemetryConfig};
use crate::wire::{
    self, encode_error_response, encode_generation_response, encode_health_response,
    encode_overloaded_response, encode_query_response, encode_stats_response, Request, WireError,
};
use ar_faults::ServeFaultPlan;
use ar_obs::{EventKind, Obs};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Phase name under which the server reports metrics and events.
pub const PHASE: &str = "serve";

/// Tuning knobs for the TCP front end. The defaults are loose enough
/// that a well-behaved workload never notices them; the chaos suite
/// tightens them to force the shedding paths.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded per-shard admission queue depth (clamped to ≥ 1); a full
    /// queue sheds new connections with an `Overloaded` reply.
    pub queue_cap: usize,
    /// How long an admitted connection may wait in the queue before the
    /// worker sheds it instead of servicing it.
    pub queue_deadline: Duration,
    /// How long a started frame may dribble in before the connection is
    /// cut off (slow-loris defense).
    pub stall_timeout: Duration,
    /// Serving-path fault plan (`None` or zero intensity = no injection).
    pub faults: Option<ServeFaultPlan>,
    /// Live telemetry plane tuning (windows, tracing, SLO budgets).
    /// Observation-only: the verdict stream is byte-identical with
    /// telemetry on or off.
    pub telemetry: TelemetryConfig,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            queue_cap: 256,
            queue_deadline: Duration::from_secs(5),
            stall_timeout: Duration::from_secs(30),
            faults: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// One connection admitted into a shard queue.
struct Admitted {
    stream: TcpStream,
    /// Per-shard admission ordinal (keys the fault plan's coins).
    ordinal: u64,
    admitted_at: Instant,
}

/// The service: an immutable snapshot behind a swap lock, plus the shard
/// plan, the health cell, the fault injector and the observability handle.
pub struct ReputationServer {
    current: RwLock<Arc<ReputationSnapshot>>,
    obs: Obs,
    shards: usize,
    options: ServeOptions,
    health: HealthCell,
    chaos: FaultInjector,
    telemetry: Telemetry,
}

impl ReputationServer {
    /// `shards = 0` is clamped to 1. The snapshot-generation, shard and
    /// health gauges are published immediately.
    pub fn new(snapshot: ReputationSnapshot, shards: usize, obs: Obs) -> Arc<ReputationServer> {
        ReputationServer::with_options(snapshot, shards, obs, ServeOptions::default())
    }

    /// [`ReputationServer::new`] with explicit [`ServeOptions`].
    pub fn with_options(
        snapshot: ReputationSnapshot,
        shards: usize,
        obs: Obs,
        options: ServeOptions,
    ) -> Arc<ReputationServer> {
        let shards = shards.max(1);
        let generation = snapshot.generation();
        obs.set_gauge("serve.generation", generation as i64);
        obs.set_gauge("serve.last_good_generation", generation as i64);
        obs.set_gauge("serve.shards", shards as i64);
        obs.set_gauge("serve.health", i64::from(HealthState::Starting.code()));
        let chaos = FaultInjector::new(options.faults);
        let telemetry = Telemetry::new(options.telemetry, shards);
        Arc::new(ReputationServer {
            current: RwLock::new(Arc::new(snapshot)),
            obs,
            shards,
            options,
            health: HealthCell::starting(generation),
            chaos,
            telemetry,
        })
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The snapshot new queries answer from.
    pub fn snapshot(&self) -> Arc<ReputationSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Where the server is in its lifecycle, with the pinned last-good
    /// generation and the reason for the current state.
    pub fn health_probe(&self) -> HealthProbe {
        HealthProbe {
            state: self.health.state(),
            generation: self.snapshot().generation(),
            last_good_generation: self.health.last_good_generation(),
            reason: self.health.reason(),
        }
    }

    /// `StudyHealth`-style rollup: the live probe plus the resilience
    /// counters out of this server's obs.
    pub fn health_report(&self) -> ServeHealthReport {
        ServeHealthReport::from_parts(&self.health_probe(), &self.obs.report())
    }

    /// Canonically sorted log of every fault injected so far (empty
    /// without a plan). Identical seeds and workload shapes produce
    /// identical logs.
    pub fn chaos_log(&self) -> Vec<ChaosEvent> {
        self.chaos.log_snapshot()
    }

    /// Atomically install `next` without validation; in-flight queries
    /// keep their snapshot. Returns the retired generation. This is the
    /// trusted path (tests, in-process rebuild loops) — deployment-style
    /// callers should prefer [`ReputationServer::offer_swap`], which
    /// validates before installing.
    pub fn swap(&self, next: ReputationSnapshot) -> u64 {
        let next_gen = next.generation();
        let next = Arc::new(next);
        let old_gen = {
            let mut slot = self.current.write();
            let old = slot.generation();
            *slot = next;
            old
        };
        self.health.pin_last_good(next_gen);
        self.obs.set_gauge("serve.generation", next_gen as i64);
        self.obs
            .set_gauge("serve.last_good_generation", next_gen as i64);
        self.obs.event(
            PHASE,
            EventKind::SnapshotSwapped,
            None,
            1,
            format!("generation {old_gen} -> {next_gen}"),
        );
        old_gen
    }

    /// Validated hot swap: `next` must pass the content checksum and
    /// structural invariants of [`ReputationSnapshot::validate`] and be
    /// strictly newer than the serving generation. A failing offer is
    /// refused — `snapshot_rejected` is emitted, the health state drops
    /// to `Degraded`, and the server keeps answering from the pinned
    /// last-good snapshot. The next valid offer recovers to `Serving`.
    /// Returns the retired generation on success.
    ///
    /// Offers are expected from one deployer loop; concurrent offers are
    /// safe but may interleave their monotonicity checks.
    pub fn offer_swap(&self, next: ReputationSnapshot) -> Result<u64, SnapshotDefect> {
        let serving = self.snapshot().generation();
        let offered = next.generation();
        let defect = if offered <= serving {
            Some(SnapshotDefect::GenerationRegression { offered, serving })
        } else {
            next.validate().err()
        };
        if let Some(defect) = defect {
            self.obs.add("serve.snapshots_rejected", 1);
            self.obs.event(
                PHASE,
                EventKind::SnapshotRejected,
                None,
                1,
                format!("offered generation {offered} refused: {defect}"),
            );
            self.health.transition(
                &self.obs,
                HealthState::Degraded,
                &format!(
                    "snapshot rejected: {defect}; serving pinned last-good generation {}",
                    self.health.last_good_generation()
                ),
            );
            return Err(defect);
        }
        let old = self.swap(next);
        match self.health.state() {
            HealthState::Degraded => self.health.transition(
                &self.obs,
                HealthState::Serving,
                &format!("recovered at generation {offered}"),
            ),
            // Refresh the reason so the report names the generation it
            // serves; same-state transitions emit no event.
            HealthState::Serving => self.health.transition(
                &self.obs,
                HealthState::Serving,
                &format!("serving generation {offered}"),
            ),
            HealthState::Starting | HealthState::Draining => {}
        }
        Ok(old)
    }

    /// Answer one address.
    pub fn verdict(&self, ip: u32) -> Verdict {
        let start = Instant::now();
        let snapshot = self.snapshot();
        let v = snapshot.verdict(ip);
        self.record_answers(
            std::slice::from_ref(&v),
            start.elapsed(),
            snapshot.generation(),
            &BatchOrigin::in_process(),
        );
        v
    }

    /// Answer a batch: contiguous per-shard chunks, reassembled in input
    /// order. One snapshot serves the whole batch, so a concurrent swap
    /// never splits a batch across generations.
    pub fn verdict_batch(&self, ips: &[u32]) -> Vec<Verdict> {
        let start = Instant::now();
        let snapshot = self.snapshot();
        let verdicts = batch_on(&snapshot, ips, self.shards);
        self.record_answers(
            &verdicts,
            start.elapsed(),
            snapshot.generation(),
            &BatchOrigin::in_process(),
        );
        verdicts
    }

    fn record_answers(
        &self,
        verdicts: &[Verdict],
        took: Duration,
        generation: u64,
        origin: &BatchOrigin,
    ) {
        if verdicts.is_empty() {
            return;
        }
        let mut classes = (0u64, 0u64, 0u64);
        for v in verdicts {
            match v.class.name() {
                "block" => classes.0 += 1,
                "greylist" => classes.1 += 1,
                _ => classes.2 += 1,
            }
        }
        // The telemetry clock advances whether or not the cumulative
        // registry is on: ticks are the wire-visible time base.
        self.telemetry.on_batch(
            &self.obs,
            &self.health,
            origin,
            classes,
            generation,
            verdicts.len() as u64,
            took.as_micros() as u64,
        );
        if !self.obs.enabled() {
            return;
        }
        self.obs.add("serve.queries", verdicts.len() as u64);
        for (name, n) in [
            ("serve.verdict.block", classes.0),
            ("serve.verdict.greylist", classes.1),
            ("serve.verdict.unlisted", classes.2),
        ] {
            if n > 0 {
                self.obs.add(name, n);
            }
        }
        self.obs
            .observe("serve.batch_micros", took.as_micros() as u64);
        self.obs.event(
            PHASE,
            EventKind::QueryServed,
            None,
            verdicts.len() as u64,
            "verdict batch answered",
        );
    }

    /// Assemble one live telemetry scrape (what `OP_STATS` answers): the
    /// logical tick, per-shard queue depths, cumulative `serve.*`
    /// counters, retained windows, SLO state and the trace digest. The
    /// aggregate `serve.frames_rejected` is *derived* here as the sum of
    /// the per-reason counters (see [`reject_reason_counter`]).
    pub fn stats_frame(&self) -> StatsFrame {
        let report = self.obs.report();
        let mut counters: BTreeMap<String, u64> = report
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("serve."))
            .map(|(name, &v)| (name.clone(), v))
            .collect();
        let rejected: u64 = REJECT_REASON_COUNTERS
            .iter()
            .filter_map(|name| counters.get(*name))
            .sum();
        if rejected > 0 {
            counters.insert("serve.frames_rejected".to_string(), rejected);
        }
        self.telemetry
            .stats_frame(self.snapshot().generation(), self.health.state(), counters)
    }

    /// The canonical deterministic trace sample captured so far.
    pub fn trace_log(&self) -> Vec<ar_obs::TraceRecord> {
        self.telemetry.trace_log()
    }

    /// Start the TCP front end on `listener`: one acceptor thread plus
    /// one persistent, supervised worker per shard. Returns a handle
    /// owning the threads; dropping it (or calling
    /// [`ServerHandle::shutdown`]) moves health to `Draining`, stops the
    /// acceptor, drains the workers and joins everything.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        self.health
            .transition(&self.obs, HealthState::Serving, "accepting connections");

        let mut senders = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (tx, rx) = sync_channel::<Admitted>(self.options.queue_cap.max(1));
            senders.push(tx);
            // The receiver lives behind a mutex so it survives worker
            // panics: each supervisor restart re-borrows the same queue
            // and no admitted connection is lost with the incarnation.
            let rx: Arc<Mutex<Receiver<Admitted>>> = Arc::new(Mutex::new(rx));
            let server = Arc::clone(self);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                server.obs.event(
                    PHASE,
                    EventKind::ShardStarted,
                    None,
                    1,
                    format!("shard {shard} accepting connections"),
                );
                // Supervisor loop: a panicked incarnation is recorded and
                // replaced; the worker only retires when the acceptor has
                // closed the queue and every admission is drained.
                loop {
                    let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                        let admitted = match rx.lock().recv() {
                            Ok(admitted) => admitted,
                            Err(_) => return,
                        };
                        server.service(admitted, shard as u64, &stop);
                    }));
                    match outcome {
                        Ok(()) => return,
                        Err(payload) => {
                            let reason = panic_reason(payload.as_ref());
                            server.obs.add("serve.worker_panics", 1);
                            server.obs.event(
                                PHASE,
                                EventKind::WorkerPanicked,
                                None,
                                1,
                                format!("shard {shard} worker panicked: {reason}"),
                            );
                            server.obs.add("serve.worker_restarts", 1);
                            server.obs.event(
                                PHASE,
                                EventKind::WorkerRestarted,
                                None,
                                1,
                                format!("shard {shard} worker restarted"),
                            );
                        }
                    }
                }
            }));
        }

        let acceptor = {
            let server = Arc::clone(self);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut next = 0usize;
                let mut ordinals = vec![0u64; senders.len().max(1)];
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Round-robin connection placement across the
                            // shard queues; a full queue sheds instead of
                            // blocking the acceptor.
                            let shard = next % senders.len().max(1);
                            next = next.wrapping_add(1);
                            let (Some(tx), Some(ordinal)) =
                                (senders.get(shard), ordinals.get_mut(shard))
                            else {
                                continue;
                            };
                            let admitted = Admitted {
                                stream,
                                ordinal: *ordinal,
                                admitted_at: Instant::now(),
                            };
                            *ordinal += 1;
                            match tx.try_send(admitted) {
                                Ok(()) => server.telemetry.queue_entered(shard),
                                Err(TrySendError::Full(mut shed)) => {
                                    server.shed(
                                        &mut shed.stream,
                                        shard as u64,
                                        &format!("shard {shard} queue full"),
                                    );
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => {
                            server.obs.add("serve.accept_errors", 1);
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            server: Arc::clone(self),
        })
    }

    /// Take up one admitted connection on the worker thread: enforce the
    /// queue deadline, run the connection-level fault hooks (which may
    /// stall or panic — the supervisor catches the latter), then serve.
    fn service(&self, admitted: Admitted, shard: u64, stop: &AtomicBool) {
        let Admitted {
            mut stream,
            ordinal,
            admitted_at,
        } = admitted;
        // Depth observed as this connection leaves its queue — it rides
        // along into the trace records of the connection's batches.
        let queue_depth = self.telemetry.queue_left(shard as usize);
        if admitted_at.elapsed() > self.options.queue_deadline {
            self.shed(
                &mut stream,
                shard,
                &format!("shard {shard} queue deadline exceeded"),
            );
            return;
        }
        self.chaos.on_connection(&self.obs, shard, ordinal);
        self.handle_connection(stream, shard, ordinal, queue_depth, stop);
    }

    /// Shed one connection with an explicit `Overloaded` reply so the
    /// peer can back off and retry instead of timing out blind.
    fn shed(&self, stream: &mut TcpStream, shard: u64, reason: &str) {
        self.telemetry
            .on_shed(&self.obs, &self.health, shard as u32);
        self.obs.add("serve.overloaded", 1);
        self.reject_frame(stream, &WireError::Overloaded(reason.to_owned()));
    }

    /// Serve one connection until it closes, sends garbage, stalls past
    /// the frame budget, or the server shuts down. Reads run against a
    /// short timeout with an incremental frame buffer — partial frames
    /// survive a timeout intact, and the worker polls `stop` between
    /// reads so a blocked connection can never deadlock
    /// [`ServerHandle::shutdown`]. Every malformed frame is answered
    /// with an error frame and counted; the worker then drops the
    /// connection and moves on.
    fn handle_connection(
        &self,
        mut stream: TcpStream,
        shard: u64,
        conn: u64,
        queue_depth: u64,
        stop: &AtomicBool,
    ) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut frame_index: u64 = 0;
        let mut frame_started: Option<Instant> = None;
        loop {
            // Drain every complete frame currently buffered.
            loop {
                if buf.len() < 4 {
                    break;
                }
                let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
                if declared > wire::MAX_FRAME {
                    self.reject_frame(&mut stream, &WireError::TooLarge(declared));
                    return;
                }
                let total = 4 + declared as usize;
                if buf.len() < total {
                    break;
                }
                let payload: Vec<u8> = buf[4..total].to_vec();
                buf.drain(..total);
                self.chaos.before_frame(&self.obs, shard, conn, frame_index);
                let frame = frame_index;
                frame_index += 1;
                if !self.answer_frame(&mut stream, &payload, shard, conn, frame, queue_depth) {
                    return;
                }
            }
            // Slow-loris defense: a started frame must complete within
            // the stall budget, however steadily it trickles.
            if buf.is_empty() {
                frame_started = None;
            } else {
                match frame_started {
                    None => frame_started = Some(Instant::now()),
                    Some(started) if started.elapsed() > self.options.stall_timeout => {
                        self.reject_frame(
                            &mut stream,
                            &WireError::Truncated("frame stalled past budget"),
                        );
                        return;
                    }
                    Some(_) => {}
                }
            }
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed; bytes left in the buffer are a frame
                    // that was promised but never completed.
                    if !buf.is_empty() {
                        self.reject_frame(
                            &mut stream,
                            &WireError::Truncated("connection closed mid-frame"),
                        );
                    }
                    return;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Idle tick: loop around and re-check the stop flag.
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.obs.add("serve.connection_drops", 1);
                    return;
                }
            }
        }
    }

    /// Decode and answer one frame payload. Returns `false` when the
    /// connection should be dropped.
    fn answer_frame(
        &self,
        stream: &mut TcpStream,
        payload: &[u8],
        shard: u64,
        conn: u64,
        frame: u64,
        queue_depth: u64,
    ) -> bool {
        let start = Instant::now();
        match wire::decode_request(payload) {
            Ok(Request::Query(ips)) => {
                // The worker thread is the shard: each connection's
                // frames are answered serially on one snapshot each.
                let snapshot = self.snapshot();
                let verdicts = batch_on(&snapshot, &ips, 1);
                // Trace annotation: did the chaos plan schedule a fault
                // for this exact frame? Stateless probe, no coin burned.
                let fault = self
                    .chaos
                    .plan()
                    .and_then(|p| p.query_delay(shard, conn, frame))
                    .map(|d| format!("query_delay {}us", d.as_micros()));
                let origin = BatchOrigin {
                    shard: shard as u32,
                    queue_depth,
                    fault,
                };
                self.record_answers(&verdicts, start.elapsed(), snapshot.generation(), &origin);
                self.obs
                    .observe("serve.frame_micros", start.elapsed().as_micros() as u64);
                if wire::write_frame(stream, &encode_query_response(&verdicts)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Ok(Request::Generation) => {
                let generation = self.snapshot().generation();
                if wire::write_frame(stream, &encode_generation_response(generation)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Ok(Request::Health) => {
                let probe = self.health_probe();
                if wire::write_frame(stream, &encode_health_response(&probe)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Ok(Request::Stats) => {
                let stats = self.stats_frame();
                self.obs.add("serve.stats_served", 1);
                self.obs.event(
                    PHASE,
                    EventKind::StatsServed,
                    None,
                    1,
                    format!("stats scraped at tick {}", stats.tick),
                );
                if wire::write_frame(stream, &encode_stats_response(&stats)).is_err() {
                    self.obs.add("serve.connection_drops", 1);
                    return false;
                }
                true
            }
            Err(e) => {
                self.reject_frame(stream, &e);
                false
            }
        }
    }

    fn reject_frame(&self, stream: &mut TcpStream, error: &WireError) {
        self.obs.add(reject_reason_counter(error), 1);
        self.obs.event(
            PHASE,
            EventKind::FrameRejected,
            None,
            1,
            format!("refused frame: {error}"),
        );
        // Best effort: the peer may already be gone. An overload shed
        // answers with status 2 so the peer knows it may retry.
        let response = match error {
            WireError::Overloaded(msg) => encode_overloaded_response(msg),
            other => encode_error_response(&other.to_string()),
        };
        let _ = wire::write_frame(stream, &response);
    }
}

/// Every per-reason reject counter. Only the reasons are counted at the
/// reject site; the aggregate `serve.frames_rejected` is *derived* as
/// their sum wherever it is reported (stats frames, health reports), so
/// it can never drift from its parts.
pub(crate) const REJECT_REASON_COUNTERS: [&str; 4] = [
    "serve.frames_rejected.malformed",
    "serve.frames_rejected.oversized",
    "serve.frames_rejected.truncated",
    "serve.frames_rejected.overloaded",
];

/// Per-reason reject counter, so chaos runs are diagnosable from the
/// RunReport alone (the aggregate `serve.frames_rejected` is derived as
/// the sum of these).
fn reject_reason_counter(error: &WireError) -> &'static str {
    match error {
        WireError::TooLarge(_) => "serve.frames_rejected.oversized",
        WireError::Truncated(_) | WireError::Closed => "serve.frames_rejected.truncated",
        WireError::Overloaded(_) => "serve.frames_rejected.overloaded",
        _ => "serve.frames_rejected.malformed",
    }
}

/// Human-readable panic payload (same shape as the study supervisor's).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Split `ips` into `shards` contiguous chunks, answer each on its own
/// thread, and reassemble in input order. Chunk boundaries depend only on
/// `ips.len()` and `shards`, and every verdict depends only on the
/// snapshot, so the output is invariant under the shard count.
fn batch_on(snapshot: &ReputationSnapshot, ips: &[u32], shards: usize) -> Vec<Verdict> {
    let shards = shards.max(1).min(ips.len().max(1));
    if shards == 1 {
        return ips.iter().map(|&ip| snapshot.verdict(ip)).collect();
    }
    let chunk = ips.len().div_ceil(shards);
    let mut out = Vec::with_capacity(ips.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ips
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(|&ip| snapshot.verdict(ip)).collect()))
            .collect();
        for handle in handles {
            let part: Vec<Verdict> = match handle.join() {
                Ok(part) => part,
                // A panicking shard would already have poisoned the test
                // run; degrade to empty rather than propagate.
                Err(_) => Vec::new(),
            };
            out.extend(part);
        }
    });
    out
}

/// Owns the acceptor and shard worker threads of one TCP front end.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    server: Arc<ReputationServer>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            self.server.health.transition(
                &self.server.obs,
                HealthState::Draining,
                "shutdown requested",
            );
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor owned the work senders; its exit closes the
        // queues and the workers drain out.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// NaN-safe latency/throughput summary of one serve histogram: with zero
/// queries served every field renders as `0` or `n/a`, never `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_micros: f64,
    /// Log₂-bucket upper bound of the median, when any query was served.
    pub p50_micros: Option<u64>,
    /// Log₂-bucket upper bound of the 99th percentile, likewise.
    pub p99_micros: Option<u64>,
}

impl LatencySummary {
    /// Summarise `histogram` out of `report`; a missing histogram (the
    /// server never answered anything) summarises as zero, not NaN.
    pub fn from_report(report: &ar_obs::RunReport, histogram: &str) -> LatencySummary {
        match report.histograms.get(histogram) {
            Some(h) => LatencySummary {
                count: h.count,
                mean_micros: h.mean(),
                p50_micros: h.quantile(0.5),
                p99_micros: h.quantile(0.99),
            },
            None => LatencySummary {
                count: 0,
                mean_micros: 0.0,
                p50_micros: None,
                p99_micros: None,
            },
        }
    }

    /// `"<count> obs, mean <µs>, p50 <µs|n/a>, p99 <µs|n/a>"`.
    pub fn render(&self) -> String {
        let quant = |q: Option<u64>| match q {
            Some(v) => format!("{v}µs"),
            None => "n/a".into(),
        };
        format!(
            "{} obs, mean {:.1}µs, p50 {}, p99 {}",
            self.count,
            self.mean_micros,
            quant(self.p50_micros),
            quant(self.p99_micros)
        )
    }
}

/// Monotonically increasing generation source for callers that rebuild
/// snapshots in a loop (the CLI and benches).
pub struct GenerationCounter(AtomicU64);

impl GenerationCounter {
    pub fn starting_at(first: u64) -> GenerationCounter {
        GenerationCounter(AtomicU64::new(first))
    }

    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{checksum_verdicts, SnapshotInput};
    use ar_blocklists::policy::GreylistPolicy;
    use ar_blocklists::{build_catalog, ListId};

    fn small_snapshot(generation: u64) -> ReputationSnapshot {
        let input = SnapshotInput {
            memberships: (0..200u32)
                .map(|ip| (ip * 7, ListId((ip % 151) as u16)))
                .collect(),
            nat_evidence: (0..40u32).map(|ip| (ip * 14, 2 + ip % 9)).collect(),
            dynamic_prefixes: ar_index::PrefixSet::from_raw(vec![0, 3]),
            dynamic_addresses: ar_index::IpSet::new(),
        };
        ReputationSnapshot::build(
            generation,
            build_catalog(),
            GreylistPolicy::default(),
            input,
        )
    }

    #[test]
    fn batch_is_shard_count_invariant() {
        let snapshot = small_snapshot(1);
        let ips: Vec<u32> = (0..1000u32).map(|i| i * 3).collect();
        let base = batch_on(&snapshot, &ips, 1);
        for shards in [2, 3, 4, 7] {
            assert_eq!(
                checksum_verdicts(&batch_on(&snapshot, &ips, shards)),
                checksum_verdicts(&base),
                "shards={shards}"
            );
        }
        assert!(batch_on(&snapshot, &[], 4).is_empty());
    }

    #[test]
    fn swap_is_atomic_and_observable() {
        let obs = Obs::new();
        let server = ReputationServer::new(small_snapshot(1), 2, obs);
        assert_eq!(server.snapshot().generation(), 1);
        let old = server.swap(small_snapshot(2));
        assert_eq!(old, 1);
        assert_eq!(server.snapshot().generation(), 2);
        let report = server.obs().report();
        assert_eq!(report.gauges["serve.generation"], 2);
        assert_eq!(report.gauges["serve.last_good_generation"], 2);
        assert_eq!(report.event_counts["snapshot_swapped"], 1);
    }

    #[test]
    fn offer_swap_rejects_damage_and_pins_last_good() {
        use ar_faults::SnapshotFault;
        let server = ReputationServer::new(small_snapshot(1), 2, Obs::new());
        let corrupt = small_snapshot(2).sabotaged(SnapshotFault::CorruptPostings);
        let defect = match server.offer_swap(corrupt) {
            Err(defect) => defect,
            Ok(gen) => panic!("corrupt offer installed over generation {gen}"),
        };
        assert!(matches!(defect, SnapshotDefect::ChecksumMismatch { .. }));
        // Still serving the pinned last-good snapshot, visibly degraded.
        let probe = server.health_probe();
        assert_eq!(probe.state, HealthState::Degraded);
        assert_eq!(probe.generation, 1);
        assert_eq!(probe.last_good_generation, 1);
        assert!(probe.reason.contains("snapshot rejected"), "{probe:?}");
        assert_eq!(server.verdict_batch(&[0, 7, 14]).len(), 3);
        let report = server.obs().report();
        assert_eq!(report.counters["serve.snapshots_rejected"], 1);
        assert_eq!(report.event_counts["snapshot_rejected"], 1);
        assert_eq!(report.gauges["serve.health"], 2);
        // A valid offer recovers.
        assert_eq!(server.offer_swap(small_snapshot(3)), Ok(1));
        let probe = server.health_probe();
        assert_eq!(probe.state, HealthState::Serving);
        assert_eq!(probe.generation, 3);
        assert_eq!(probe.last_good_generation, 3);
    }

    #[test]
    fn offer_swap_rejects_generation_regression() {
        let server = ReputationServer::new(small_snapshot(5), 1, Obs::new());
        match server.offer_swap(small_snapshot(5)) {
            Err(SnapshotDefect::GenerationRegression { offered, serving }) => {
                assert_eq!((offered, serving), (5, 5));
            }
            other => panic!("expected regression rejection, got {other:?}"),
        }
        assert_eq!(server.snapshot().generation(), 5);
        // The raw swap stays available for trusted callers that need to
        // move backwards (tests do).
        server.swap(small_snapshot(2));
        assert_eq!(server.snapshot().generation(), 2);
    }

    #[test]
    fn verdict_classes_are_counted() {
        let server = ReputationServer::new(small_snapshot(1), 1, Obs::new());
        let ips: Vec<u32> = (0..500u32).collect();
        let verdicts = server.verdict_batch(&ips);
        assert_eq!(verdicts.len(), 500);
        let report = server.obs().report();
        assert_eq!(report.counters["serve.queries"], 500);
        let classed = report.counters.get("serve.verdict.block").unwrap_or(&0)
            + report.counters.get("serve.verdict.greylist").unwrap_or(&0)
            + report.counters.get("serve.verdict.unlisted").unwrap_or(&0);
        assert_eq!(classed, 500);
        assert_eq!(report.event_counts["query_served"], 500);
    }

    #[test]
    fn zero_query_latency_summary_is_nan_free() {
        let server = ReputationServer::new(small_snapshot(1), 4, Obs::new());
        let report = server.obs().report();
        let summary = LatencySummary::from_report(&report, "serve.batch_micros");
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mean_micros, 0.0);
        assert_eq!(summary.p50_micros, None);
        assert_eq!(summary.p99_micros, None);
        let rendered = summary.render();
        assert!(
            rendered.contains("p50 n/a") && rendered.contains("p99 n/a"),
            "{rendered}"
        );
        assert!(!rendered.contains("NaN"), "{rendered}");
        // And once queries flow, the quantiles appear.
        server.verdict_batch(&[1, 2, 3]);
        let summary = LatencySummary::from_report(&server.obs().report(), "serve.batch_micros");
        assert_eq!(summary.count, 1);
        assert!(summary.p50_micros.is_some() && summary.p99_micros.is_some());
        assert!(!summary.render().contains("NaN"));
    }

    #[test]
    fn generation_counter_is_monotone() {
        let gens = GenerationCounter::starting_at(5);
        assert_eq!(gens.next(), 5);
        assert_eq!(gens.next(), 6);
    }
}
