//! The serve health/readiness state machine.
//!
//! The server moves through `Starting → Serving`, drops to `Degraded`
//! when a snapshot offer fails validation (it keeps answering from the
//! pinned last-good generation), recovers to `Serving` on the next valid
//! swap, and enters `Draining` when shutdown begins. The state is
//! queryable over the wire ([`crate::wire::OP_HEALTH`]) and exported as
//! the `serve.health` gauge plus `health_changed` events, so a chaos run
//! is diagnosable from the RunReport alone.

use ar_obs::{EventKind, Obs};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Phase name shared with [`crate::server::PHASE`] (duplicated here to
/// keep this module free of a circular import).
const PHASE: &str = "serve";

/// Where the server is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum HealthState {
    /// Constructed but not yet accepting TCP connections.
    Starting,
    /// Accepting and answering from a validated snapshot.
    Serving,
    /// Still answering, but pinned to the last-good snapshot after a
    /// rejected swap offer.
    Degraded,
    /// Shutdown has begun; the acceptor is stopping and workers drain.
    Draining,
}

impl HealthState {
    /// Stable wire code (also the `serve.health` gauge value).
    pub fn code(&self) -> u8 {
        match self {
            HealthState::Starting => 0,
            HealthState::Serving => 1,
            HealthState::Degraded => 2,
            HealthState::Draining => 3,
        }
    }

    pub fn from_code(code: u8) -> Option<HealthState> {
        match code {
            0 => Some(HealthState::Starting),
            1 => Some(HealthState::Serving),
            2 => Some(HealthState::Degraded),
            3 => Some(HealthState::Draining),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Starting => "starting",
            HealthState::Serving => "serving",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The shared mutable cell behind the state machine: a lock-free state
/// code for the hot read path, a reason string behind a short lock.
pub(crate) struct HealthCell {
    state: AtomicU8,
    reason: Mutex<String>,
    last_good_generation: AtomicU64,
}

impl HealthCell {
    pub(crate) fn starting(last_good_generation: u64) -> HealthCell {
        HealthCell {
            state: AtomicU8::new(HealthState::Starting.code()),
            reason: Mutex::new(String::new()),
            last_good_generation: AtomicU64::new(last_good_generation),
        }
    }

    pub(crate) fn state(&self) -> HealthState {
        // The cell only ever stores codes produced by `HealthState::code`.
        HealthState::from_code(self.state.load(Ordering::Acquire)).unwrap_or(HealthState::Starting)
    }

    pub(crate) fn reason(&self) -> String {
        self.reason.lock().clone()
    }

    pub(crate) fn last_good_generation(&self) -> u64 {
        self.last_good_generation.load(Ordering::Acquire)
    }

    pub(crate) fn pin_last_good(&self, generation: u64) {
        self.last_good_generation
            .store(generation, Ordering::Release);
    }

    /// Move to `next`, recording the transition as a `health_changed`
    /// event and the `serve.health` gauge. A same-state call only
    /// refreshes the reason — repeated degradations are already counted
    /// by their own `snapshot_rejected` events.
    pub(crate) fn transition(&self, obs: &Obs, next: HealthState, reason: &str) {
        let old = self.state.swap(next.code(), Ordering::AcqRel);
        *self.reason.lock() = reason.to_owned();
        obs.set_gauge("serve.health", i64::from(next.code()));
        if old != next.code() {
            let old_name = HealthState::from_code(old).map_or("unknown", |s| s.name());
            obs.event(
                PHASE,
                EventKind::HealthChanged,
                None,
                1,
                format!("{old_name} -> {}: {reason}", next.name()),
            );
        }
    }
}

/// One decoded wire health answer (what [`crate::Client::health`] returns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HealthProbe {
    pub state: HealthState,
    /// Generation new queries answer from right now.
    pub generation: u64,
    /// Last generation that passed swap validation (equals `generation`
    /// unless the server is pinned after a rejected offer).
    pub last_good_generation: u64,
    /// Why the server is in this state; empty while everything is fine.
    pub reason: String,
}

impl HealthProbe {
    /// `"serving gen 3 (last good 3)"` or
    /// `"degraded gen 3 (last good 3): snapshot rejected: ..."`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} gen {} (last good {})",
            self.state, self.generation, self.last_good_generation
        );
        if !self.reason.is_empty() {
            out.push_str(": ");
            out.push_str(&self.reason);
        }
        out
    }
}

/// `StudyHealth`-style rollup of one serve run: the live state plus the
/// resilience counters that explain it, assembled from a [`HealthProbe`]
/// and the run's [`ar_obs::RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeHealthReport {
    pub state: HealthState,
    pub generation: u64,
    pub last_good_generation: u64,
    pub reason: String,
    /// Worker panics the supervisor caught.
    pub worker_panics: u64,
    /// Workers the supervisor restarted after a panic.
    pub worker_restarts: u64,
    /// Snapshot offers refused by swap validation.
    pub snapshots_rejected: u64,
    /// Requests shed by admission control.
    pub overloaded: u64,
    /// Frames refused: the aggregate is *derived* as the sum of the four
    /// per-reason counters below, so it can never drift from its parts
    /// (only the reasons are counted at the reject site).
    pub frames_rejected: u64,
    pub rejected_malformed: u64,
    pub rejected_oversized: u64,
    pub rejected_truncated: u64,
    pub rejected_overloaded: u64,
}

impl ServeHealthReport {
    pub fn from_parts(probe: &HealthProbe, report: &ar_obs::RunReport) -> ServeHealthReport {
        let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
        let rejected_malformed = counter("serve.frames_rejected.malformed");
        let rejected_oversized = counter("serve.frames_rejected.oversized");
        let rejected_truncated = counter("serve.frames_rejected.truncated");
        let rejected_overloaded = counter("serve.frames_rejected.overloaded");
        ServeHealthReport {
            state: probe.state,
            generation: probe.generation,
            last_good_generation: probe.last_good_generation,
            reason: probe.reason.clone(),
            worker_panics: counter("serve.worker_panics"),
            worker_restarts: counter("serve.worker_restarts"),
            snapshots_rejected: counter("serve.snapshots_rejected"),
            overloaded: counter("serve.overloaded"),
            frames_rejected: rejected_malformed
                + rejected_oversized
                + rejected_truncated
                + rejected_overloaded,
            rejected_malformed,
            rejected_oversized,
            rejected_truncated,
            rejected_overloaded,
        }
    }

    /// Clean means the server ended up `Serving` and every caught panic
    /// was matched by a restart — injected chaos is fine as long as each
    /// fault was absorbed by its resilience mechanism. Refused frames,
    /// shed load and rejected snapshots are the mechanisms *working*.
    pub fn is_clean(&self) -> bool {
        self.state == HealthState::Serving && self.worker_panics == self.worker_restarts
    }

    /// Multi-line human rendering for the CLI selftest and CI smoke logs.
    pub fn render(&self) -> String {
        let probe = HealthProbe {
            state: self.state,
            generation: self.generation,
            last_good_generation: self.last_good_generation,
            reason: self.reason.clone(),
        };
        format!(
            "serve health: {}\n  worker panics {} / restarts {}\n  snapshots rejected {}\n  \
             overloaded {}\n  frames rejected {} (malformed {}, oversized {}, truncated {}, \
             overloaded {})",
            probe.render(),
            self.worker_panics,
            self.worker_restarts,
            self.snapshots_rejected,
            self.overloaded,
            self.frames_rejected,
            self.rejected_malformed,
            self.rejected_oversized,
            self.rejected_truncated,
            self.rejected_overloaded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_round_trip_and_order() {
        for state in [
            HealthState::Starting,
            HealthState::Serving,
            HealthState::Degraded,
            HealthState::Draining,
        ] {
            assert_eq!(HealthState::from_code(state.code()), Some(state));
        }
        assert_eq!(HealthState::from_code(9), None);
    }

    #[test]
    fn transitions_emit_events_and_gauge_once_per_change() {
        let obs = Obs::new();
        let cell = HealthCell::starting(1);
        assert_eq!(cell.state(), HealthState::Starting);
        cell.transition(&obs, HealthState::Serving, "accepting");
        cell.transition(&obs, HealthState::Degraded, "snapshot rejected: checksum");
        // Same-state refresh: reason updates, no second event.
        cell.transition(&obs, HealthState::Degraded, "snapshot rejected: structure");
        assert_eq!(cell.reason(), "snapshot rejected: structure");
        let report = obs.report();
        assert_eq!(report.gauges["serve.health"], 2);
        assert_eq!(report.event_counts["health_changed"], 2);
    }

    #[test]
    fn clean_report_requires_serving_and_recovered_panics() {
        let probe = HealthProbe {
            state: HealthState::Serving,
            generation: 4,
            last_good_generation: 4,
            reason: String::new(),
        };
        let obs = Obs::new();
        obs.add("serve.worker_panics", 2);
        obs.add("serve.worker_restarts", 2);
        obs.add("serve.frames_rejected.malformed", 3);
        let report = ServeHealthReport::from_parts(&probe, &obs.report());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.render().contains("panics 2 / restarts 2"));
        // The aggregate is derived from the reasons, never read raw.
        assert_eq!(report.frames_rejected, 3);

        let degraded = HealthProbe {
            state: HealthState::Degraded,
            reason: "pinned".into(),
            ..probe.clone()
        };
        assert!(!ServeHealthReport::from_parts(&degraded, &obs.report()).is_clean());

        let unrecovered = Obs::new();
        unrecovered.add("serve.worker_panics", 1);
        assert!(!ServeHealthReport::from_parts(&probe, &unrecovered.report()).is_clean());
    }

    #[test]
    fn frames_rejected_aggregate_is_the_sum_of_reasons() {
        let probe = HealthProbe {
            state: HealthState::Serving,
            generation: 1,
            last_good_generation: 1,
            reason: String::new(),
        };
        let obs = Obs::new();
        obs.add("serve.frames_rejected.malformed", 2);
        obs.add("serve.frames_rejected.oversized", 3);
        obs.add("serve.frames_rejected.truncated", 5);
        obs.add("serve.frames_rejected.overloaded", 7);
        // A stray raw aggregate (e.g. in an artifact written before the
        // counter became derived) must not double-count.
        obs.add("serve.frames_rejected", 999);
        let report = ServeHealthReport::from_parts(&probe, &obs.report());
        assert_eq!(report.frames_rejected, 17);
        assert_eq!(report.rejected_overloaded, 7);
        assert!(report
            .render()
            .contains("frames rejected 17 (malformed 2, oversized 3, truncated 5, overloaded 7)"));
    }
}
