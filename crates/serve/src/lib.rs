//! # ar-serve — the reputation-query service
//!
//! Turns the study's offline join artifacts into an online system: the
//! per-address verdict the paper's §5–§6 build toward — *is this IP on a
//! blocklist, which of the 151 lists carry it, is it reused (NATed /
//! dynamic-/24), and should a greylist policy soften the block?* —
//! answered from an immutable, versioned [`ReputationSnapshot`] by a
//! sharded server with atomic hot swap.
//!
//! * [`snapshot`] — the compiled artifact and single-lookup logic;
//! * [`wire`] — the length-prefixed TCP frame protocol;
//! * [`server`] — supervised shard workers, admission control, the
//!   batch API, validated hot swap, metrics;
//! * [`health`] — the `Starting → Serving → Degraded → Draining`
//!   readiness state machine and the serve health rollup;
//! * [`client`] — the blocking wire client with a seeded retry policy;
//! * [`chaos`] — serving-path fault injection hooks driven by
//!   [`ar_faults::ServeFaultPlan`];
//! * [`telemetry`] — the live telemetry plane: windowed metrics over a
//!   logical query-ordinal clock, deterministic trace sampling, SLO
//!   burn-rate tracking, and the [`StatsFrame`] scraped via `OP_STATS`.
//!
//! ```
//! use ar_blocklists::policy::GreylistPolicy;
//! use ar_blocklists::{build_catalog, ListId};
//! use ar_serve::{ReputationServer, ReputationSnapshot, SnapshotInput};
//!
//! let input = SnapshotInput {
//!     memberships: vec![(0xC0000207, ListId(3))],
//!     ..SnapshotInput::default()
//! };
//! let snapshot =
//!     ReputationSnapshot::build(1, build_catalog(), GreylistPolicy::default(), input);
//! let server = ReputationServer::new(snapshot, 2, ar_obs::Obs::disabled());
//! let verdict = server.verdict(0xC0000207);
//! assert_eq!(verdict.lists.len(), 1);
//! ```

pub mod chaos;
pub mod client;
pub mod health;
pub mod server;
pub mod snapshot;
pub mod telemetry;
pub mod wire;

pub use chaos::{misbehave, ChaosEvent, FaultInjector};
pub use client::{Client, RetryPolicy};
pub use health::{HealthProbe, HealthState, ServeHealthReport};
pub use server::{GenerationCounter, LatencySummary, ReputationServer, ServeOptions, ServerHandle};
pub use snapshot::{
    checksum_verdicts, encode_verdicts, fnv1a64, ListVerdict, ReputationSnapshot, SnapshotDefect,
    SnapshotInput, Verdict, VerdictClass,
};
pub use telemetry::{SloConfig, SloState, StatsFrame, TelemetryConfig, WindowSummary};
pub use wire::{Request, WireError, MAX_FRAME};
