//! The live telemetry plane: windowed metrics, deterministic query
//! tracing, and SLO burn-rate tracking for [`crate::ReputationServer`].
//!
//! The cumulative `ar-obs` registry answers "what did this run do" at
//! exit; this module answers "what is the service doing *now*". It is
//! strictly observation-only — the verdict stream is byte-identical with
//! telemetry on or off, which the determinism suite pins — and it runs
//! on a **logical clock**: the tick is the cumulative count of query
//! ordinals admitted, never wall time (ar-lint R2). Everything here is
//! a pure function of the tick stream, so two same-seed runs produce
//! identical window sequences, trace logs and [`StatsFrame`]s at
//! matching ticks.
//!
//! Three instruments:
//!
//! * a [`WindowRing`] of per-window metric deltas (queries, sheds,
//!   verdict classes, a batch-size log₂ histogram);
//! * a [`TraceSampler`] capturing admission→shard→verdict
//!   [`TraceRecord`]s by stride and seeded bottom-k reservoir;
//! * an SLO tracker evaluating error budgets (shed rate, degraded
//!   windows, optionally latency) at every window close, emitting
//!   `slo_breach` / `slo_recovered` events and annotating the health
//!   machine's reason string.
//!
//! The whole plane is exported over the wire as [`crate::wire::OP_STATS`]
//! and scraped live by `bench_chaos`.

use crate::health::{HealthCell, HealthState};
use ar_obs::{EventKind, Obs, TraceRecord, TraceSampler, Window, WindowRing};
use ar_simnet::fnv::FnvHasher;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Phase name shared with [`crate::server::PHASE`] (duplicated to keep
/// this module free of a circular import).
const PHASE: &str = "serve";

/// Window counter names (also the per-window keys in OP_STATS frames).
const W_QUERIES: &str = "queries";
const W_SHED: &str = "shed";
const W_SLOW: &str = "slow_batches";
const W_BATCHES: &str = "batches";
const W_BLOCK: &str = "block";
const W_GREYLIST: &str = "greylist";
const W_UNLISTED: &str = "unlisted";
/// Batch-size histogram name inside each window.
const H_BATCH: &str = "batch_len";

/// Error budgets evaluated at every window close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Shed budget: breach when `1000 * shed / (queries + shed)` inside
    /// a closed window exceeds this.
    pub shed_budget_permille: u32,
    /// Latency objective: a batch slower than this burns budget. `None`
    /// disables the objective — the default, because wall-clock latency
    /// is the one nondeterministic quantity and enabling it makes the
    /// per-window `slow_batches` counter run-dependent.
    pub latency_budget_micros: Option<u64>,
    /// Latency budget: breach when `1000 * slow_batches / batches`
    /// inside a closed window exceeds this.
    pub latency_breach_permille: u32,
    /// Degraded-time budget: breach after this many *consecutive*
    /// closed windows with the health machine in `Degraded`.
    pub degraded_budget_windows: u32,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            shed_budget_permille: 50,
            latency_budget_micros: None,
            latency_breach_permille: 100,
            degraded_budget_windows: 2,
        }
    }
}

/// Telemetry-plane tuning. Defaults keep every instrument on with
/// budgets loose enough that a healthy workload never breaches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch; off turns every hook into a no-op (OP_STATS still
    /// answers, with an empty frame).
    pub enabled: bool,
    /// Logical ticks (query ordinals) per window.
    pub ticks_per_window: u64,
    /// Closed windows retained in the ring.
    pub window_capacity: usize,
    /// Trace stride: capture every Nth ordinal (0 = off).
    pub trace_every: u64,
    /// Bottom-k trace reservoir capacity (0 = off).
    pub trace_reservoir: usize,
    /// Seed for the reservoir priorities.
    pub trace_seed: u64,
    pub slo: SloConfig,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            ticks_per_window: 1024,
            window_capacity: 8,
            trace_every: 128,
            trace_reservoir: 32,
            trace_seed: 0xA11CE,
            slo: SloConfig::default(),
        }
    }
}

impl TelemetryConfig {
    /// Everything off: no windows, no traces, no SLO evaluation.
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }
}

/// Where a batch came from, for the trace record. The in-process batch
/// API has no queue or connection; the TCP path fills everything in.
#[derive(Debug, Clone)]
pub(crate) struct BatchOrigin {
    pub(crate) shard: u32,
    pub(crate) queue_depth: u64,
    /// Chaos-plan annotation scheduled for this frame, if any.
    pub(crate) fault: Option<String>,
}

impl BatchOrigin {
    pub(crate) fn in_process() -> BatchOrigin {
        BatchOrigin {
            shard: 0,
            queue_depth: 0,
            fault: None,
        }
    }
}

/// Running SLO state (the wire-visible half lives in [`SloState`]).
#[derive(Debug, Default)]
struct SloTracker {
    breached: bool,
    breaches: u64,
    recoveries: u64,
    windows_evaluated: u64,
    last_shed_permille: u32,
    consecutive_degraded: u32,
}

/// Wire-visible SLO summary inside a [`StatsFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloState {
    pub breached: bool,
    pub breaches: u64,
    pub recoveries: u64,
    pub windows_evaluated: u64,
    /// Shed permille measured in the last evaluated window.
    pub last_shed_permille: u32,
    /// The configured shed budget, echoed so scrapers can render
    /// burn rate without knowing the server's config.
    pub shed_budget_permille: u32,
}

impl SloState {
    /// Zero state for a server with telemetry off.
    pub fn idle() -> SloState {
        SloState {
            breached: false,
            breaches: 0,
            recoveries: 0,
            windows_evaluated: 0,
            last_shed_permille: 0,
            shed_budget_permille: 0,
        }
    }
}

/// One retained window as exported over the wire: its index, counters,
/// and the batch-size histogram delta folded to (count, sum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    pub index: u64,
    pub counters: BTreeMap<String, u64>,
    pub batch_count: u64,
    pub batch_sum: u64,
}

impl WindowSummary {
    fn from_window(w: &Window) -> WindowSummary {
        let (batch_count, batch_sum) = w
            .histograms
            .get(H_BATCH)
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0));
        WindowSummary {
            index: w.index,
            counters: w.counters.clone(),
            batch_count,
            batch_sum,
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// One live telemetry scrape: the payload of an `OP_STATS` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsFrame {
    /// Logical clock at scrape time (cumulative query ordinals).
    pub tick: u64,
    /// Generation new queries answer from.
    pub generation: u64,
    pub health_state: HealthState,
    /// Per-shard admission-queue depths at scrape time.
    pub queue_depths: Vec<u64>,
    /// Cumulative `serve.*` counters; `serve.frames_rejected` is
    /// *derived* (sum of the per-reason counters), so the aggregate can
    /// never drift from its parts.
    pub counters: BTreeMap<String, u64>,
    /// Retained windows oldest first, the open window last.
    pub windows: Vec<WindowSummary>,
    pub slo: SloState,
    /// Canonical trace-log length.
    pub trace_count: u64,
    /// FNV-1a digest of the canonical trace-log encoding.
    pub trace_digest: u64,
}

impl StatsFrame {
    /// Cumulative counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One-line rendering for the CLI watch loop and smoke logs.
    pub fn render(&self) -> String {
        let depths: Vec<String> = self.queue_depths.iter().map(|d| d.to_string()).collect();
        let last = self.windows.last();
        format!(
            "tick {} gen {} {} | q=[{}] | window {}: {} queries, {} shed | slo {} ({} breaches, {} windows) | {} traces (digest {:016x})",
            self.tick,
            self.generation,
            self.health_state,
            depths.join(","),
            last.map_or(0, |w| w.index),
            last.map_or(0, |w| w.counter(W_QUERIES)),
            last.map_or(0, |w| w.counter(W_SHED)),
            if self.slo.breached { "BREACHED" } else { "ok" },
            self.slo.breaches,
            self.slo.windows_evaluated,
            self.trace_count,
            self.trace_digest,
        )
    }
}

/// The server-side telemetry plane. All hooks are cheap no-ops when the
/// config is disabled; enabled, every mutation happens under one short
/// mutex keyed by the ring so tick assignment and window accounting stay
/// atomic with respect to each other.
pub(crate) struct Telemetry {
    config: TelemetryConfig,
    /// Mirror of the ring's tick for lock-free reads.
    tick: AtomicU64,
    ring: Mutex<WindowRing>,
    tracer: Mutex<TraceSampler>,
    slo: Mutex<SloTracker>,
    queue_depths: Vec<AtomicU64>,
}

impl Telemetry {
    pub(crate) fn new(config: TelemetryConfig, shards: usize) -> Telemetry {
        Telemetry {
            config,
            tick: AtomicU64::new(0),
            ring: Mutex::new(WindowRing::new(
                config.ticks_per_window,
                config.window_capacity,
            )),
            tracer: Mutex::new(TraceSampler::new(
                config.trace_every,
                config.trace_reservoir,
                config.trace_seed,
            )),
            slo: Mutex::new(SloTracker::default()),
            queue_depths: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Current logical tick (cumulative query ordinals).
    #[cfg(test)]
    pub(crate) fn tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// A connection entered a shard's admission queue.
    pub(crate) fn queue_entered(&self, shard: usize) {
        if !self.config.enabled {
            return;
        }
        if let Some(depth) = self.queue_depths.get(shard) {
            // AcqRel pairs with the Acquire loads in stats_frame (R6):
            // OP_STATS serializes these depths from another thread.
            depth.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// A worker picked a connection out of its queue; returns the depth
    /// observed *including* the departing entry.
    pub(crate) fn queue_left(&self, shard: usize) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        match self.queue_depths.get(shard) {
            Some(depth) => {
                // Saturate at zero: a shed path may have raced the undo.
                let seen = depth.load(Ordering::Acquire);
                if seen > 0 {
                    depth.fetch_sub(1, Ordering::AcqRel);
                }
                seen
            }
            None => 0,
        }
    }

    /// Record one answered batch: advance the logical clock by the batch
    /// length, account the window deltas, offer a trace record, and
    /// evaluate the SLO budgets if a window closed.
    pub(crate) fn on_batch(
        &self,
        obs: &Obs,
        health: &HealthCell,
        origin: &BatchOrigin,
        verdict_classes: (u64, u64, u64),
        generation: u64,
        batch_len: u64,
        took_micros: u64,
    ) {
        if !self.config.enabled || batch_len == 0 {
            return;
        }
        let (block, greylist, unlisted) = verdict_classes;
        let (tick, closed) = {
            let mut ring = self.ring.lock();
            let tick = ring.tick() + batch_len;
            ring.add(W_QUERIES, batch_len);
            ring.add(W_BATCHES, 1);
            if block > 0 {
                ring.add(W_BLOCK, block);
            }
            if greylist > 0 {
                ring.add(W_GREYLIST, greylist);
            }
            if unlisted > 0 {
                ring.add(W_UNLISTED, unlisted);
            }
            if let Some(budget) = self.config.slo.latency_budget_micros {
                if took_micros > budget {
                    ring.add(W_SLOW, 1);
                }
            }
            ring.observe(H_BATCH, batch_len);
            let closed = ring.advance(tick);
            self.tick.store(tick, Ordering::Release);
            (tick, closed)
        };
        self.trace(
            obs,
            TraceRecord {
                // Ordinal of the batch's first query: stable under any
                // batch split because ticks count queries, not batches.
                ordinal: tick - batch_len,
                shard: origin.shard,
                generation,
                queue_depth: origin.queue_depth,
                batch_len: batch_len.min(u64::from(u32::MAX)) as u32,
                outcome: "served".to_string(),
                fault: origin.fault.clone(),
            },
        );
        if let Some(window) = closed {
            self.evaluate_slo(obs, health, &window);
        }
    }

    /// Record one shed admission: a shed consumes one ordinal so the
    /// window sees it, and is traced with outcome `shed`.
    pub(crate) fn on_shed(&self, obs: &Obs, health: &HealthCell, shard: u32) {
        if !self.config.enabled {
            return;
        }
        let (tick, closed) = {
            let mut ring = self.ring.lock();
            let tick = ring.tick() + 1;
            ring.add(W_SHED, 1);
            let closed = ring.advance(tick);
            self.tick.store(tick, Ordering::Release);
            (tick, closed)
        };
        self.trace(
            obs,
            TraceRecord {
                ordinal: tick - 1,
                shard,
                generation: 0,
                queue_depth: self
                    .queue_depths
                    .get(shard as usize)
                    .map_or(0, |d| d.load(Ordering::Acquire)),
                batch_len: 0,
                outcome: "shed".to_string(),
                fault: None,
            },
        );
        if let Some(window) = closed {
            self.evaluate_slo(obs, health, &window);
        }
    }

    fn trace(&self, obs: &Obs, record: TraceRecord) {
        let captured = self.tracer.lock().offer(record);
        if captured {
            obs.add("serve.traces_sampled", 1);
            obs.event(PHASE, EventKind::TraceSampled, None, 1, "trace captured");
        }
    }

    /// Evaluate every budget against one closed window.
    fn evaluate_slo(&self, obs: &Obs, health: &HealthCell, window: &Window) {
        let cfg = &self.config.slo;
        let queries = window.counter(W_QUERIES);
        let shed = window.counter(W_SHED);
        let admitted = queries + shed;
        let shed_permille = if admitted == 0 {
            0
        } else {
            (shed.saturating_mul(1000) / admitted) as u32
        };

        let batches = window.counter(W_BATCHES);
        let slow = window.counter(W_SLOW);
        let slow_permille = if batches == 0 {
            0
        } else {
            (slow.saturating_mul(1000) / batches) as u32
        };

        let mut slo = self.slo.lock();
        slo.windows_evaluated += 1;
        slo.last_shed_permille = shed_permille;
        if health.state() == HealthState::Degraded {
            slo.consecutive_degraded += 1;
        } else {
            slo.consecutive_degraded = 0;
        }

        let mut burns: Vec<String> = Vec::new();
        if shed_permille > cfg.shed_budget_permille {
            burns.push(format!(
                "shed {shed_permille}‰ > budget {}‰",
                cfg.shed_budget_permille
            ));
        }
        if cfg.latency_budget_micros.is_some() && slow_permille > cfg.latency_breach_permille {
            burns.push(format!(
                "slow batches {slow_permille}‰ > budget {}‰",
                cfg.latency_breach_permille
            ));
        }
        if slo.consecutive_degraded > cfg.degraded_budget_windows {
            burns.push(format!(
                "degraded for {} windows > budget {}",
                slo.consecutive_degraded, cfg.degraded_budget_windows
            ));
        }

        let breach_now = !burns.is_empty();
        if breach_now && !slo.breached {
            slo.breached = true;
            slo.breaches += 1;
            let detail = format!("window {}: {}", window.index, burns.join("; "));
            obs.add("serve.slo_breaches", 1);
            obs.event(PHASE, EventKind::SloBreach, None, 1, detail.clone());
            annotate_health(obs, health, &format!("breach: {detail}"));
        } else if !breach_now && slo.breached {
            slo.breached = false;
            slo.recoveries += 1;
            let detail = format!("window {}: budgets back under control", window.index);
            obs.add("serve.slo_recoveries", 1);
            obs.event(PHASE, EventKind::SloRecovered, None, 1, detail.clone());
            annotate_health(obs, health, &format!("recovered: {detail}"));
        }
    }

    fn slo_state(&self) -> SloState {
        let slo = self.slo.lock();
        SloState {
            breached: slo.breached,
            breaches: slo.breaches,
            recoveries: slo.recoveries,
            windows_evaluated: slo.windows_evaluated,
            last_shed_permille: slo.last_shed_permille,
            shed_budget_permille: self.config.slo.shed_budget_permille,
        }
    }

    /// Assemble a scrape. `counters` must already carry the cumulative
    /// registry view (with the derived reject aggregate) — the caller
    /// owns the `Obs`, this module owns the windows/traces/SLO.
    pub(crate) fn stats_frame(
        &self,
        generation: u64,
        health_state: HealthState,
        counters: BTreeMap<String, u64>,
    ) -> StatsFrame {
        if !self.config.enabled {
            return StatsFrame {
                tick: 0,
                generation,
                health_state,
                queue_depths: vec![0; self.queue_depths.len()],
                counters,
                windows: Vec::new(),
                slo: SloState::idle(),
                trace_count: 0,
                trace_digest: 0,
            };
        }
        let (tick, windows) = {
            let ring = self.ring.lock();
            let windows = ring
                .windows()
                .into_iter()
                .map(WindowSummary::from_window)
                .collect();
            (ring.tick(), windows)
        };
        let (trace_count, trace_digest) = {
            let log = self.tracer.lock().canonical_log();
            (log.len() as u64, trace_log_digest(&log))
        };
        StatsFrame {
            tick,
            generation,
            health_state,
            queue_depths: self
                .queue_depths
                .iter()
                .map(|d| d.load(Ordering::Acquire))
                .collect(),
            counters,
            windows,
            slo: self.slo_state(),
            trace_count,
            trace_digest,
        }
    }

    /// The canonical trace log (sorted by ordinal, deduplicated).
    pub(crate) fn trace_log(&self) -> Vec<TraceRecord> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.tracer.lock().canonical_log()
    }
}

/// Append an SLO note to the health reason without changing state or
/// discarding the primary cause (e.g. `snapshot rejected: …`). Any
/// previous SLO note is replaced, so the reason never grows unboundedly.
/// The budgets *observe* degradation, they never cause it — a same-state
/// transition only refreshes the reason and emits no event.
fn annotate_health(obs: &Obs, health: &HealthCell, note: &str) {
    let reason = health.reason();
    let base = reason.split(" [slo ").next().unwrap_or("").trim_end();
    let annotated = if base.is_empty() {
        format!("[slo {note}]")
    } else {
        format!("{base} [slo {note}]")
    };
    health.transition(obs, health.state(), &annotated);
}

/// FNV-1a digest of a trace log's canonical binary encoding. Computed
/// here (not in `ar-obs`) so the workspace keeps exactly one FNV
/// implementation — `ar-obs` stays dependency-free.
pub fn trace_log_digest(log: &[TraceRecord]) -> u64 {
    let mut h = FnvHasher::new();
    let mut buf = Vec::new();
    for r in log {
        buf.clear();
        encode_trace_record(&mut buf, r);
        h.update(&buf);
    }
    h.finish()
}

/// Canonical binary encoding of one trace record (digest input only —
/// trace records never cross the wire whole, just their digest).
fn encode_trace_record(out: &mut Vec<u8>, r: &TraceRecord) {
    out.extend_from_slice(&r.ordinal.to_be_bytes());
    out.extend_from_slice(&r.shard.to_be_bytes());
    out.extend_from_slice(&r.generation.to_be_bytes());
    out.extend_from_slice(&r.queue_depth.to_be_bytes());
    out.extend_from_slice(&r.batch_len.to_be_bytes());
    out.extend_from_slice(&(r.outcome.len() as u16).to_be_bytes());
    out.extend_from_slice(r.outcome.as_bytes());
    match &r.fault {
        None => out.push(0),
        Some(fault) => {
            out.push(1);
            out.extend_from_slice(&(fault.len() as u16).to_be_bytes());
            out.extend_from_slice(fault.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(ticks_per_window: u64) -> (Telemetry, Obs, HealthCell) {
        let config = TelemetryConfig {
            ticks_per_window,
            window_capacity: 4,
            trace_every: 4,
            trace_reservoir: 8,
            ..TelemetryConfig::default()
        };
        (
            Telemetry::new(config, 2),
            Obs::new(),
            HealthCell::starting(1),
        )
    }

    fn served(t: &Telemetry, obs: &Obs, health: &HealthCell, batch: u64) {
        t.on_batch(
            obs,
            health,
            &BatchOrigin::in_process(),
            (batch, 0, 0),
            1,
            batch,
            10,
        );
    }

    #[test]
    fn ticks_count_queries_and_windows_accumulate() {
        let (t, obs, health) = telemetry(10);
        for _ in 0..5 {
            served(&t, &obs, &health, 4);
        }
        assert_eq!(t.tick(), 20);
        let frame = t.stats_frame(1, HealthState::Serving, BTreeMap::new());
        assert_eq!(frame.tick, 20);
        let total: u64 = frame.windows.iter().map(|w| w.counter(W_QUERIES)).sum();
        assert_eq!(total, 20);
        assert_eq!(frame.windows.iter().map(|w| w.batch_count).sum::<u64>(), 5);
    }

    #[test]
    fn shed_storm_breaches_and_recovery_follows() {
        let (t, obs, health) = telemetry(10);
        // Window of sheds only: 1000‰ shed rate blows the 50‰ budget.
        for _ in 0..10 {
            t.on_shed(&obs, &health, 0);
        }
        let frame = t.stats_frame(1, HealthState::Serving, BTreeMap::new());
        assert!(frame.slo.breached, "{frame:?}");
        assert_eq!(frame.slo.breaches, 1);
        // A clean window recovers.
        for _ in 0..10 {
            served(&t, &obs, &health, 1);
        }
        let frame = t.stats_frame(1, HealthState::Serving, BTreeMap::new());
        assert!(!frame.slo.breached);
        assert_eq!(frame.slo.recoveries, 1);
        let report = obs.report();
        assert_eq!(report.event_counts["slo_breach"], 1);
        assert_eq!(report.event_counts["slo_recovered"], 1);
        assert_eq!(report.counters["serve.slo_breaches"], 1);
        // The health machine carries the annotation without changing state.
        assert_eq!(health.state(), HealthState::Starting);
        assert!(
            health.reason().contains("slo recovered"),
            "{}",
            health.reason()
        );
    }

    #[test]
    fn degraded_windows_burn_their_own_budget() {
        let (t, obs, health) = telemetry(5);
        health.transition(&obs, HealthState::Degraded, "pinned");
        // Budget is 2 consecutive degraded windows; the third breaches.
        for _ in 0..3 {
            for _ in 0..5 {
                served(&t, &obs, &health, 1);
            }
        }
        let frame = t.stats_frame(1, HealthState::Degraded, BTreeMap::new());
        assert!(frame.slo.breached, "{frame:?}");
        assert!(health.reason().contains("degraded for 3 windows"));
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::new(TelemetryConfig::disabled(), 2);
        let obs = Obs::new();
        let health = HealthCell::starting(1);
        served(&t, &obs, &health, 100);
        t.on_shed(&obs, &health, 0);
        assert_eq!(t.tick(), 0);
        let frame = t.stats_frame(3, HealthState::Serving, BTreeMap::new());
        assert_eq!(frame.tick, 0);
        assert!(frame.windows.is_empty());
        assert_eq!(frame.trace_count, 0);
        assert!(obs.report().counters.get("serve.traces_sampled").is_none());
    }

    #[test]
    fn trace_digest_is_stable_and_order_independent_inputs() {
        let record = |ordinal| TraceRecord {
            ordinal,
            shard: 1,
            generation: 2,
            queue_depth: 3,
            batch_len: 4,
            outcome: "served".to_string(),
            fault: if ordinal % 2 == 0 {
                Some("latency spike 5ms".to_string())
            } else {
                None
            },
        };
        let log: Vec<TraceRecord> = (0..10).map(record).collect();
        assert_eq!(trace_log_digest(&log), trace_log_digest(&log.clone()));
        assert_ne!(trace_log_digest(&log), trace_log_digest(&log[1..]));
        assert_eq!(trace_log_digest(&[]), ar_simnet::fnv::FNV_BASIS);
    }

    /// Satellite check: the consolidated FNV module produces the exact
    /// digests the four pre-refactor copies did, across crates.
    #[test]
    fn fnv_consolidation_is_byte_identical_across_crates() {
        assert_eq!(crate::snapshot::fnv1a64(b"abc"), 0xe71f_a219_0541_574b);
        assert_eq!(
            crate::snapshot::fnv1a64(b"address-reuse"),
            ar_index::fnv::fnv1a64(b"address-reuse")
        );
        assert_eq!(
            ar_simnet::fnv::fnv1a64(b""),
            crate::snapshot::checksum_verdicts(&[])
        );
    }
}
