//! The serving contract: one snapshot + one query log ⇒ one verdict
//! stream, regardless of shard count, transport, or a mid-run hot swap to
//! an identically rebuilt snapshot.

use ar_blocklists::policy::GreylistPolicy;
use ar_blocklists::{build_catalog, ListId};
use ar_index::{IpSet, PrefixSet};
use ar_obs::Obs;
use ar_serve::{
    checksum_verdicts, encode_verdicts, Client, ReputationServer, ReputationSnapshot, SnapshotInput,
};
use ar_simnet::rng::Seed;
use std::net::TcpListener;

/// Deterministic splitmix64 stream (no ambient entropy in tests either).
fn mix_stream(seed: Seed, label: &str, n: usize) -> Vec<u64> {
    let mut state = seed.fork(label).0;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn test_input(seed: Seed) -> SnapshotInput {
    let words = mix_stream(seed, "snapshot", 5000);
    let memberships = words
        .iter()
        .take(3000)
        .map(|&w| ((w >> 16) as u32 % 100_000, ListId((w % 151) as u16)))
        .collect();
    let nat_evidence = words
        .iter()
        .skip(3000)
        .take(1000)
        .map(|&w| ((w >> 16) as u32 % 100_000, 2 + (w % 40) as u32))
        .collect();
    let dynamic_prefixes = PrefixSet::from_raw(
        words
            .iter()
            .skip(4000)
            .take(500)
            .map(|&w| (w as u32 % 100_000) >> 8)
            .collect(),
    );
    SnapshotInput {
        memberships,
        nat_evidence,
        dynamic_prefixes,
        dynamic_addresses: IpSet::new(),
    }
}

fn test_snapshot(generation: u64) -> ReputationSnapshot {
    ReputationSnapshot::build(
        generation,
        build_catalog(),
        GreylistPolicy::default(),
        test_input(Seed(77)),
    )
}

/// 80% hot-set skew over the listed addresses, 20% uniform scan.
fn query_log(snapshot: &ReputationSnapshot, n: usize) -> Vec<u32> {
    let listed = snapshot.listed_addresses().as_raw();
    let hot = &listed[..listed.len().min(64)];
    mix_stream(Seed(77), "queries", n)
        .into_iter()
        .map(|w| {
            if w % 10 < 8 && !hot.is_empty() {
                hot[(w >> 8) as usize % hot.len()]
            } else {
                (w >> 16) as u32
            }
        })
        .collect()
}

#[test]
fn verdict_stream_is_identical_across_shard_counts() {
    let queries = query_log(&test_snapshot(1), 10_000);
    let mut checksums = Vec::new();
    for shards in [1usize, 2, 4] {
        let server = ReputationServer::new(test_snapshot(1), shards, Obs::disabled());
        let verdicts = server.verdict_batch(&queries);
        assert_eq!(verdicts.len(), queries.len());
        checksums.push(checksum_verdicts(&verdicts));
    }
    assert_eq!(checksums[0], checksums[1], "1 vs 2 shards");
    assert_eq!(checksums[0], checksums[2], "1 vs 4 shards");
}

#[test]
fn hot_swap_to_identical_snapshot_leaves_stream_unchanged() {
    let queries = query_log(&test_snapshot(1), 10_000);
    let baseline = {
        let server = ReputationServer::new(test_snapshot(1), 2, Obs::disabled());
        checksum_verdicts(&server.verdict_batch(&queries))
    };

    // Same queries, but the snapshot is swapped for an identical rebuild
    // halfway through the run.
    let server = ReputationServer::new(test_snapshot(1), 2, Obs::new());
    let (front, back) = queries.split_at(queries.len() / 2);
    let mut verdicts = server.verdict_batch(front);
    server.swap(test_snapshot(1));
    verdicts.extend(server.verdict_batch(back));
    assert_eq!(checksum_verdicts(&verdicts), baseline);
    assert_eq!(server.obs().report().event_counts["snapshot_swapped"], 1);
}

#[test]
fn tcp_and_in_process_paths_agree() {
    let server = ReputationServer::new(test_snapshot(3), 2, Obs::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle = server.serve(listener).expect("serve");

    let queries = query_log(&server.snapshot(), 2_000);
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.generation().expect("generation probe"), 3);
    let over_tcp = client.query(&queries).expect("query");
    let in_process = server.verdict_batch(&queries);
    assert_eq!(
        encode_verdicts(&over_tcp),
        encode_verdicts(&in_process),
        "wire round-trip must preserve the verdict stream byte-for-byte"
    );

    let report = server.obs().report();
    assert_eq!(report.event_counts["shard_started"], 2);
    assert!(report.counters["serve.queries"] >= 4_000);
    handle.shutdown();
}

#[test]
fn concurrent_clients_each_see_consistent_streams() {
    let server = ReputationServer::new(test_snapshot(4), 4, Obs::disabled());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle = server.serve(listener).expect("serve");
    let queries = query_log(&server.snapshot(), 1_000);
    let expected = checksum_verdicts(&server.verdict_batch(&queries));

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let queries = &queries;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..3 {
                    let verdicts = client.query(queries).expect("query");
                    assert_eq!(checksum_verdicts(&verdicts), expected);
                }
            });
        }
    });
    handle.shutdown();
}
