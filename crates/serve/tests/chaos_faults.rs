//! Seeded serving-path chaos: every fault class in
//! [`ar_faults::ServeFaultPlan`] against the resilience mechanism built
//! for it — shard supervision, admission control, validated hot swap
//! with last-good fallback, slow-loris cutoff — plus the determinism
//! contract (identical seeds → identical chaos logs).

use ar_blocklists::policy::GreylistPolicy;
use ar_blocklists::{build_catalog, ListId};
use ar_faults::{coin, ClientMisbehavior, ServeFaultConfig, ServeFaultPlan, SnapshotFault};
use ar_obs::Obs;
use ar_serve::wire::encode_query;
use ar_serve::{
    checksum_verdicts, misbehave, Client, HealthState, ReputationServer, ReputationSnapshot,
    RetryPolicy, ServeOptions, SnapshotInput, WireError,
};
use ar_simnet::rng::Seed;
use std::net::TcpListener;
use std::time::Duration;

fn snapshot(generation: u64) -> ReputationSnapshot {
    let memberships = (0..500u32)
        .map(|i| {
            let w = coin::mix(&[42, u64::from(i)]);
            ((w >> 8) as u32 % 50_000, ListId((w % 151) as u16))
        })
        .collect();
    let input = SnapshotInput {
        memberships,
        nat_evidence: (0..100u32)
            .map(|i| (coin::mix(&[7, u64::from(i)]) as u32 % 50_000, 2 + i % 5))
            .collect(),
        ..SnapshotInput::default()
    };
    ReputationSnapshot::build(
        generation,
        build_catalog(),
        GreylistPolicy::default(),
        input,
    )
}

fn queries() -> Vec<u32> {
    (0..200u32)
        .map(|i| coin::mix(&[9, u64::from(i)]) as u32 % 60_000)
        .collect()
}

/// A plan that only panics workers (aggressively), so the supervisor is
/// the mechanism under test.
fn panic_heavy(seed: Seed) -> ServeFaultPlan {
    ServeFaultPlan::with_config(
        seed,
        ServeFaultConfig {
            intensity: 1.0,
            worker_panic_scale: 6.0, // ~24% of admissions panic the worker
            worker_stall_scale: 0.0,
            client_scale: 0.0,
            snapshot_scale: 0.0,
            latency_scale: 0.0,
        },
    )
}

#[test]
fn supervisor_restarts_preserve_verdict_streams() {
    let server = ReputationServer::new(snapshot(1), 2, Obs::new());
    let expected = checksum_verdicts(&server.verdict_batch(&queries()));

    let chaotic = ReputationServer::with_options(
        snapshot(1),
        2,
        Obs::new(),
        ServeOptions {
            faults: Some(panic_heavy(Seed(40))),
            ..ServeOptions::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = chaotic.serve(listener).expect("serve");

    // Every admitted query must come back byte-identical to the
    // fault-free stream, however many workers panic along the way; the
    // retrying client absorbs the dropped connections.
    let ips = queries();
    for session in 0..30u64 {
        let mut client = Client::connect_with(handle.addr(), RetryPolicy::resilient(Seed(session)))
            .expect("connect");
        let verdicts = client.query(&ips).expect("query with retries");
        assert_eq!(
            checksum_verdicts(&verdicts),
            expected,
            "session {session} verdict stream diverged"
        );
    }

    handle.shutdown();
    let report = chaotic.obs().report();
    assert!(
        report.counters["serve.worker_panics"] > 0,
        "the plan must actually panic workers: {:?}",
        report.counters
    );
    assert_eq!(
        report.counters["serve.worker_panics"], report.counters["serve.worker_restarts"],
        "every caught panic must be matched by a restart"
    );
    assert_eq!(report.event_counts["shard_started"], 2);
    assert_eq!(
        report.event_counts["worker_panicked"],
        report.event_counts["worker_restarted"]
    );
    // The chaos log recorded exactly the panics the counters saw.
    let log = chaotic.chaos_log();
    assert_eq!(
        log.iter().filter(|e| e.class == "worker_panic").count() as u64,
        report.counters["serve.worker_panics"]
    );
}

#[test]
fn corrupted_swaps_pin_last_good_and_recover() {
    let server = ReputationServer::new(snapshot(1), 2, Obs::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let ips = queries();
    let expected = checksum_verdicts(&server.verdict_batch(&ips));

    // Offer a stream of damaged snapshots while queries are in flight:
    // every offer must be refused and every query must keep answering
    // the pinned last-good (generation 1) stream.
    std::thread::scope(|scope| {
        let server = &server;
        let offerer = scope.spawn(move || {
            let kinds = [
                SnapshotFault::CorruptPostings,
                SnapshotFault::ChecksumMismatch,
                SnapshotFault::StructuralTruncation,
            ];
            for round in 0..12u64 {
                let kind = kinds[(round % 3) as usize];
                let bad = snapshot(2 + round).sabotaged(kind);
                assert!(
                    server.offer_swap(bad).is_err(),
                    "sabotage {} must be refused",
                    kind.name()
                );
                // A generation regression is damage too.
                assert!(server.offer_swap(snapshot(1)).is_err());
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let mut client = Client::connect(handle.addr()).expect("connect");
        for _ in 0..20 {
            let verdicts = client.query(&ips).expect("query under corrupt swaps");
            assert_eq!(checksum_verdicts(&verdicts), expected);
        }
        offerer.join().expect("offerer");
    });

    // Visible degraded state, over the wire, still on generation 1.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let probe = client.health().expect("health probe");
    assert_eq!(probe.state, HealthState::Degraded);
    assert_eq!(probe.generation, 1);
    assert_eq!(probe.last_good_generation, 1);
    assert!(probe.reason.contains("snapshot rejected"), "{probe:?}");
    assert_eq!(client.generation().expect("generation"), 1);

    // The next valid offer recovers to Serving.
    server.offer_swap(snapshot(50)).expect("valid offer");
    let probe = client.health().expect("health after recovery");
    assert_eq!(probe.state, HealthState::Serving);
    assert_eq!(probe.generation, 50);
    assert_eq!(probe.last_good_generation, 50);

    let report = server.obs().report();
    assert_eq!(report.counters["serve.snapshots_rejected"], 24);
    assert_eq!(report.event_counts["snapshot_rejected"], 24);
    assert!(report.event_counts["health_changed"] >= 2);
    handle.shutdown();
}

#[test]
fn overload_is_shed_with_explicit_replies() {
    // One-deep queues and near-certain worker stalls: a burst of
    // connections must see explicit Overloaded replies, not hangs.
    let plan = ServeFaultPlan::with_config(
        Seed(77),
        ServeFaultConfig {
            intensity: 1.0,
            worker_panic_scale: 0.0,
            worker_stall_scale: 16.0, // ~96% of admissions stall 5–40 ms
            client_scale: 0.0,
            snapshot_scale: 0.0,
            latency_scale: 0.0,
        },
    );
    let server = ReputationServer::with_options(
        snapshot(1),
        1,
        Obs::new(),
        ServeOptions {
            queue_cap: 1,
            faults: Some(plan),
            ..ServeOptions::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let ips = queries();
    let expected = checksum_verdicts(&server.verdict_batch(&ips));

    let shed_seen = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..6 {
                    let Ok(mut client) = Client::connect(handle.addr()) else {
                        continue;
                    };
                    match client.query(&ips) {
                        Ok(verdicts) => {
                            assert_eq!(checksum_verdicts(&verdicts), expected);
                        }
                        Err(WireError::Overloaded(_)) => {
                            shed_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(WireError::Closed | WireError::Io(_) | WireError::Truncated(_)) => {}
                        Err(other) => panic!("unexpected error under overload: {other}"),
                    }
                }
            });
        }
    });
    assert!(
        shed_seen.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the burst must trip admission control"
    );

    // Once the burst is over, a retrying client gets through.
    let mut client =
        Client::connect_with(handle.addr(), RetryPolicy::resilient(Seed(1))).expect("connect");
    let verdicts = client.query(&ips).expect("query after overload");
    assert_eq!(checksum_verdicts(&verdicts), expected);

    let report = server.obs().report();
    assert!(report.counters["serve.overloaded"] > 0);
    assert!(report.counters["serve.frames_rejected.overloaded"] > 0);
    assert_eq!(
        report.counters["serve.overloaded"],
        report.counters["serve.frames_rejected.overloaded"]
    );
    handle.shutdown();
}

#[test]
fn slow_loris_is_cut_off_at_the_stall_budget() {
    let server = ReputationServer::with_options(
        snapshot(1),
        1,
        Obs::new(),
        ServeOptions {
            stall_timeout: Duration::from_millis(100),
            ..ServeOptions::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let ips = queries();
    let expected = checksum_verdicts(&server.verdict_batch(&ips));

    // ~800 byte frame trickled 64 bytes per 30 ms needs ~400 ms — well
    // past the 100 ms budget, so the server must cut the connection.
    misbehave(
        handle.addr(),
        ClientMisbehavior::SlowLoris {
            chunk: 64,
            delay_ms: 30,
        },
        &encode_query(&ips),
    );
    // A frame dropped mid-body is refused as truncated too.
    misbehave(
        handle.addr(),
        ClientMisbehavior::TruncateFrame { keep_permille: 500 },
        &encode_query(&ips),
    );
    // Churned connections open and vanish without sending anything.
    assert!(
        misbehave(
            handle.addr(),
            ClientMisbehavior::ConnectionChurn { connects: 4 },
            &[],
        ) > 0
    );

    // Patient clients are unaffected.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let verdicts = client.query(&ips).expect("clean query after loris");
    assert_eq!(checksum_verdicts(&verdicts), expected);

    let report = server.obs().report();
    assert!(
        report.counters["serve.frames_rejected.truncated"] >= 2,
        "stalled and truncated frames must be refused: {:?}",
        report.counters
    );
    handle.shutdown();
}

#[test]
fn shutdown_races_open_connections_and_drains() {
    let server = ReputationServer::new(snapshot(1), 2, Obs::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let ips = queries();

    // Idle connections, a half-written frame, and a client querying in a
    // loop — shutdown must drain and join through all of them.
    let idle: Vec<Client> = (0..4)
        .map(|_| Client::connect(handle.addr()).expect("connect"))
        .collect();
    let mut half_written = std::net::TcpStream::connect(handle.addr()).expect("connect");
    std::io::Write::write_all(&mut half_written, &200u32.to_be_bytes()).expect("prefix");

    std::thread::scope(|scope| {
        let addr = handle.addr();
        let ips = &ips;
        let querier = scope.spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                return;
            };
            // Query until the server goes away; every completed answer
            // must still decode.
            for _ in 0..1000 {
                match client.query(ips) {
                    Ok(verdicts) => assert_eq!(verdicts.len(), ips.len()),
                    Err(_) => return,
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        handle.shutdown();
        querier.join().expect("querier");
    });

    assert_eq!(server.health_probe().state, HealthState::Draining);
    assert_eq!(server.health_probe().reason, "shutdown requested");
    drop(idle);
    drop(half_written);
}

#[test]
fn chaos_logs_are_seed_deterministic() {
    let run = |seed: Seed| {
        let plan = ServeFaultPlan::new(seed, 1.0);
        let server = ReputationServer::with_options(
            snapshot(1),
            2,
            Obs::disabled(),
            ServeOptions {
                faults: Some(plan),
                ..ServeOptions::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = server.serve(listener).expect("serve");
        let ips = queries();
        // A fixed, sequential workload: connection ordinals are assigned
        // in admission order, so the fault keys replay exactly.
        for _ in 0..40u64 {
            if let Ok(mut client) = Client::connect(handle.addr()) {
                let _ = client.query(&ips);
            }
        }
        handle.shutdown();
        server.chaos_log()
    };
    let first = run(Seed(90));
    let second = run(Seed(90));
    assert_eq!(first, second, "identical seeds must replay the chaos log");
    assert!(!first.is_empty(), "full intensity must inject something");
    assert_ne!(first, run(Seed(91)), "seed must matter");
}

#[test]
fn zero_intensity_plan_is_a_strict_noop() {
    let plain = ReputationServer::new(snapshot(1), 2, Obs::new());
    let zeroed = ReputationServer::with_options(
        snapshot(1),
        2,
        Obs::new(),
        ServeOptions {
            faults: Some(ServeFaultPlan::new(Seed(5), 0.0)),
            ..ServeOptions::default()
        },
    );
    let ips = queries();
    assert_eq!(
        checksum_verdicts(&plain.verdict_batch(&ips)),
        checksum_verdicts(&zeroed.verdict_batch(&ips)),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = zeroed.serve(listener).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let verdicts = client.query(&ips).expect("query");
    assert_eq!(
        checksum_verdicts(&verdicts),
        checksum_verdicts(&plain.verdict_batch(&ips)),
    );
    handle.shutdown();
    assert!(zeroed.chaos_log().is_empty());
    let report = zeroed.obs().report();
    assert!(
        !report
            .counters
            .keys()
            .any(|k| k.starts_with("serve.chaos.")),
        "zero intensity must not touch chaos counters: {:?}",
        report.counters
    );
}
