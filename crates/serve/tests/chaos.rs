//! Fault injection against the serving path (R3 scope): malformed frames,
//! dropped connections and swaps under load must degrade gracefully —
//! error frames and counters, never a panic, and the server keeps
//! answering correct queries afterwards.

use ar_blocklists::policy::GreylistPolicy;
use ar_blocklists::{build_catalog, ListId};
use ar_faults::coin;
use ar_obs::Obs;
use ar_serve::wire::{encode_query, OP_QUERY};
use ar_serve::{
    checksum_verdicts, Client, ReputationServer, ReputationSnapshot, SnapshotInput, WireError,
};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};

fn snapshot(generation: u64) -> ReputationSnapshot {
    let memberships = (0..500u32)
        .map(|i| {
            let w = coin::mix(&[42, u64::from(i)]);
            ((w >> 8) as u32 % 50_000, ListId((w % 151) as u16))
        })
        .collect();
    let input = SnapshotInput {
        memberships,
        nat_evidence: (0..100u32)
            .map(|i| (coin::mix(&[7, u64::from(i)]) as u32 % 50_000, 2 + i % 5))
            .collect(),
        ..SnapshotInput::default()
    };
    ReputationSnapshot::build(
        generation,
        build_catalog(),
        GreylistPolicy::default(),
        input,
    )
}

fn started(obs_server: &ReputationServer) -> (Vec<u32>, u64) {
    let queries: Vec<u32> = (0..200u32)
        .map(|i| coin::mix(&[9, u64::from(i)]) as u32 % 60_000)
        .collect();
    let expected = checksum_verdicts(&obs_server.verdict_batch(&queries));
    (queries, expected)
}

#[test]
fn malformed_frames_get_error_replies_and_service_survives() {
    let server = ReputationServer::new(snapshot(1), 2, Obs::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let (queries, expected) = started(server.as_ref());

    // A deterministic zoo of bad payloads, one connection each: garbage
    // ops, truncated query bodies, lying length counts, empty payloads.
    let mut rejected = 0u64;
    for case in 0..24u64 {
        let w = coin::mix(&[1000, case]);
        let payload: Vec<u8> = match case % 4 {
            0 => vec![],
            1 => vec![(w % 250 + 3) as u8],
            2 => {
                let mut p = encode_query(&[1, 2, 3, 4]);
                p.truncate(p.len() - (1 + (w % 10) as usize).min(p.len() - 2));
                p
            }
            _ => {
                // Count claims more addresses than the body carries.
                let mut p = vec![OP_QUERY];
                p.extend_from_slice(&(u32::MAX).to_be_bytes());
                p.extend_from_slice(&w.to_be_bytes());
                p
            }
        };
        let mut client = Client::connect(handle.addr()).expect("connect");
        match client.send_raw(&payload) {
            Ok(reply) => {
                assert_eq!(reply.first(), Some(&1), "bad frame must get error status");
                rejected += 1;
            }
            // The server may close before the reply is readable; both are
            // graceful outcomes.
            Err(WireError::Closed | WireError::Io(_) | WireError::Truncated(_)) => {}
            Err(other) => panic!("unexpected client error: {other}"),
        }
    }
    assert!(rejected > 0, "at least some error replies must land");

    // The service still answers clean queries correctly.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let verdicts = client.query(&queries).expect("clean query after chaos");
    assert_eq!(checksum_verdicts(&verdicts), expected);

    let report = server.obs().report();
    // The aggregate is derived from the per-reason counters now; the
    // health rollup is the canonical place to read it.
    assert!(server.health_report().frames_rejected >= rejected);
    assert!(report.event_counts["frame_rejected"] >= rejected);
    handle.shutdown();
}

#[test]
fn oversized_and_mid_frame_drops_do_not_wedge_workers() {
    let server = ReputationServer::new(snapshot(1), 1, Obs::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let (queries, expected) = started(server.as_ref());

    // Oversized length declaration.
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(&(ar_serve::MAX_FRAME + 1).to_be_bytes())
            .expect("write oversized prefix");
    }
    // Length prefix promises a body that never arrives (dropped mid-frame).
    for case in 0..8u64 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let declared = 64 + (coin::mix(&[2000, case]) % 512) as u32;
        stream
            .write_all(&declared.to_be_bytes())
            .expect("write prefix");
        let partial = vec![0u8; (declared / 2) as usize];
        stream.write_all(&partial).expect("write partial body");
        drop(stream);
    }
    // A single worker serviced all of those connections serially; it must
    // still answer a clean query.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let verdicts = client.query(&queries).expect("clean query after drops");
    assert_eq!(checksum_verdicts(&verdicts), expected);
    handle.shutdown();
}

#[test]
fn swap_under_load_never_tears_a_batch() {
    let server = ReputationServer::new(snapshot(1), 4, Obs::new());
    let queries: Vec<u32> = (0..500u32)
        .map(|i| coin::mix(&[5, u64::from(i)]) as u32 % 60_000)
        .collect();
    // Generations 1 and 2 are built from the same inputs, so verdicts
    // differ only in the generation field; a batch must carry exactly one.
    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            for gen in 0..60u64 {
                server.swap(snapshot(1 + gen % 2));
            }
        });
        for _ in 0..40 {
            let verdicts = server.verdict_batch(&queries);
            assert_eq!(verdicts.len(), queries.len());
            let generation = verdicts[0].generation;
            assert!(
                verdicts.iter().all(|v| v.generation == generation),
                "a batch mixed snapshot generations across a swap"
            );
        }
        swapper.join().expect("swapper thread");
    });
    let report = server.obs().report();
    assert_eq!(report.event_counts["snapshot_swapped"], 60);
    assert_eq!(report.counters["serve.queries"], 40 * 500);
}

#[test]
fn tcp_queries_stay_consistent_across_swaps() {
    let server = ReputationServer::new(snapshot(1), 2, Obs::disabled());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");
    let queries: Vec<u32> = (0..300u32)
        .map(|i| coin::mix(&[6, u64::from(i)]) as u32 % 60_000)
        .collect();

    std::thread::scope(|scope| {
        let addr = handle.addr();
        let queries = &queries;
        let server = &server;
        let swapper = scope.spawn(move || {
            for _ in 0..30 {
                server.swap(snapshot(1));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let expected = checksum_verdicts(&server.verdict_batch(queries));
        for _ in 0..3 {
            let mut client = Client::connect(addr).expect("connect");
            for _ in 0..10 {
                let verdicts = client.query(queries).expect("query during swaps");
                assert_eq!(checksum_verdicts(&verdicts), expected);
            }
        }
        swapper.join().expect("swapper thread");
    });
    handle.shutdown();
}
