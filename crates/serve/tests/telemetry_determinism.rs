//! The telemetry plane's own determinism contract:
//!
//! * telemetry (and trace sampling) on/off leaves the verdict stream
//!   byte-identical — observation only, never interference;
//! * two same-seed runs produce identical canonical trace logs and
//!   byte-identical encoded `OP_STATS` frames at matching ticks, at any
//!   shard count — the logical clock counts query ordinals, so nothing
//!   in a frame depends on wall time or thread interleaving.

use ar_blocklists::policy::GreylistPolicy;
use ar_blocklists::{build_catalog, ListId};
use ar_index::{IpSet, PrefixSet};
use ar_obs::Obs;
use ar_serve::wire::encode_stats_response;
use ar_serve::{
    checksum_verdicts, encode_verdicts, ReputationServer, ReputationSnapshot, ServeOptions,
    SnapshotInput, TelemetryConfig,
};
use ar_simnet::rng::Seed;

fn mix_stream(seed: Seed, label: &str, n: usize) -> Vec<u64> {
    let mut state = seed.fork(label).0;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn test_snapshot(generation: u64) -> ReputationSnapshot {
    let words = mix_stream(Seed(9), "telemetry-snapshot", 2000);
    let input = SnapshotInput {
        memberships: words
            .iter()
            .take(1200)
            .map(|&w| ((w >> 16) as u32 % 50_000, ListId((w % 151) as u16)))
            .collect(),
        nat_evidence: words
            .iter()
            .skip(1200)
            .take(400)
            .map(|&w| ((w >> 16) as u32 % 50_000, 2 + (w % 30) as u32))
            .collect(),
        dynamic_prefixes: PrefixSet::from_raw(
            words
                .iter()
                .skip(1600)
                .map(|&w| (w as u32 % 50_000) >> 8)
                .collect(),
        ),
        dynamic_addresses: IpSet::new(),
    };
    ReputationSnapshot::build(
        generation,
        build_catalog(),
        GreylistPolicy::default(),
        input,
    )
}

fn query_log(n: usize) -> Vec<u32> {
    mix_stream(Seed(9), "telemetry-queries", n)
        .into_iter()
        .map(|w| (w >> 16) as u32 % 60_000)
        .collect()
}

/// Tight windows and aggressive tracing so a short run exercises window
/// closes, ring eviction, and both sampling policies.
fn tight_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        ticks_per_window: 128,
        window_capacity: 3,
        trace_every: 16,
        trace_reservoir: 8,
        trace_seed: 42,
        ..TelemetryConfig::default()
    }
}

#[test]
fn telemetry_on_or_off_leaves_the_verdict_stream_byte_identical() {
    let queries = query_log(4_000);
    let mut streams = Vec::new();
    for telemetry in [
        tight_telemetry(),
        TelemetryConfig::disabled(),
        // Tracing off, windows on: a third switch position.
        TelemetryConfig {
            trace_every: 0,
            trace_reservoir: 0,
            ..tight_telemetry()
        },
    ] {
        let options = ServeOptions {
            telemetry,
            ..ServeOptions::default()
        };
        let server = ReputationServer::with_options(test_snapshot(1), 2, Obs::new(), options);
        let verdicts = server.verdict_batch(&queries);
        streams.push(encode_verdicts(&verdicts));
    }
    assert_eq!(streams[0], streams[1], "telemetry on vs off");
    assert_eq!(streams[0], streams[2], "tracing on vs off");
}

#[test]
fn same_seed_runs_produce_identical_traces_and_stats_frames() {
    let queries = query_log(3_000);

    // One run: feed the query log in deterministic batches, capturing an
    // OP_STATS frame at fixed batch checkpoints.
    let run = |shards: usize| {
        let options = ServeOptions {
            telemetry: tight_telemetry(),
            ..ServeOptions::default()
        };
        let server = ReputationServer::with_options(test_snapshot(1), shards, Obs::new(), options);
        let mut checkpoints = Vec::new();
        let mut checksum = Vec::new();
        for (i, batch) in queries.chunks(97).enumerate() {
            let verdicts = server.verdict_batch(batch);
            checksum.push(checksum_verdicts(&verdicts));
            if i % 10 == 9 {
                checkpoints.push(server.stats_frame());
            }
        }
        (checksum, server.trace_log(), checkpoints)
    };

    let (baseline_checksums, baseline_traces, baseline_frames) = run(1);
    assert!(
        !baseline_traces.is_empty(),
        "the run must actually capture traces"
    );
    assert!(!baseline_frames.is_empty());

    for shards in [1usize, 2, 4] {
        // Same seed, same shard count: frames are byte-identical on the
        // wire at matching ticks.
        let (checksums, traces, frames) = run(shards);
        let (checksums2, traces2, frames2) = run(shards);
        assert_eq!(checksums, checksums2, "{shards} shards: rerun verdicts");
        assert_eq!(traces, traces2, "{shards} shards: rerun trace log");
        let encode = |fs: &[ar_serve::StatsFrame]| -> Vec<Vec<u8>> {
            fs.iter().map(encode_stats_response).collect()
        };
        assert_eq!(
            encode(&frames),
            encode(&frames2),
            "{shards} shards: rerun OP_STATS bytes"
        );

        // Across shard counts: verdicts, traces and everything in the
        // frame except the per-shard queue-depth vector (whose length is
        // the shard count by construction) are invariant.
        assert_eq!(checksums, baseline_checksums, "{shards} shards: verdicts");
        assert_eq!(traces, baseline_traces, "{shards} shards: trace log");
        let flatten = |fs: &[ar_serve::StatsFrame]| -> Vec<ar_serve::StatsFrame> {
            fs.iter()
                .map(|f| {
                    let mut f = f.clone();
                    assert!(f.queue_depths.iter().all(|&d| d == 0), "in-process run");
                    f.queue_depths.clear();
                    f
                })
                .collect()
        };
        assert_eq!(
            flatten(&frames),
            flatten(&baseline_frames),
            "{shards} shards: OP_STATS frames at matching ticks"
        );
    }
}

#[test]
fn stats_frame_counters_match_the_run_report() {
    let queries = query_log(2_000);
    let server = ReputationServer::with_options(
        test_snapshot(1),
        2,
        Obs::new(),
        ServeOptions {
            telemetry: tight_telemetry(),
            ..ServeOptions::default()
        },
    );
    for batch in queries.chunks(61) {
        server.verdict_batch(batch);
    }
    let frame = server.stats_frame();
    let report = server.obs().report();
    assert_eq!(frame.tick, queries.len() as u64);
    assert_eq!(
        frame.counter("serve.queries"),
        report.counters["serve.queries"]
    );
    for class in ["block", "greylist", "unlisted"] {
        let name = format!("serve.verdict.{class}");
        assert_eq!(
            frame.counter(&name),
            report.counters.get(&name).copied().unwrap_or(0),
            "{name}"
        );
    }
    // Window deltas refold to the cumulative query count.
    let windowed: u64 = frame.windows.iter().map(|w| w.counter("queries")).sum();
    let evicted = frame.tick - windowed;
    assert!(
        frame.windows.len() <= 4,
        "ring capacity 3 + open window, got {}",
        frame.windows.len()
    );
    // With capacity 3 and ~2000 ticks at 128/window some windows evicted.
    assert!(evicted > 0, "the run must wrap the ring");
}
