//! # ar-bencode — the BitTorrent wire encoding (BEP-3)
//!
//! The Mainline DHT's KRPC protocol carries every message — the paper's
//! `get_nodes` (`find_node`) and `bt_ping` (`ping`) — as a bencoded
//! dictionary in a single UDP datagram. This crate implements the complete
//! encoding: byte strings, integers, lists, and dictionaries with
//! lexicographically sorted keys.
//!
//! Design notes:
//!
//! * **Canonical output.** [`Value::encode`] always emits sorted dictionary
//!   keys, so `decode(encode(v)) == v` and encodings are byte-stable —
//!   which the DHT crate's codec tests and the property tests rely on.
//! * **Strict decoding.** The decoder rejects leading zeros (`i03e`),
//!   negative zero, unsorted/duplicate dictionary keys, truncated input and
//!   trailing bytes, matching the reference BitTorrent implementations'
//!   strictness for KRPC.
//! * **Depth-limited.** Attacker-controlled datagrams cannot trigger
//!   unbounded recursion: nesting beyond [`MAX_DEPTH`] is an error.
//!
//! ```
//! use ar_bencode::Value;
//!
//! let v = Value::dict([
//!     (&b"t"[..], Value::bytes(b"aa")),
//!     (&b"y"[..], Value::bytes(b"q")),
//! ]);
//! let wire = v.encode();
//! assert_eq!(wire, b"d1:t2:aa1:y1:qe");
//! assert_eq!(Value::decode(&wire).unwrap(), v);
//! ```

mod decode;
mod encode;
mod value;

pub use decode::{decode_prefix, DecodeError, MAX_DEPTH};
pub use value::Value;

#[cfg(test)]
mod proptests;
