//! Property tests: encode/decode round-trips and decoder robustness.

use crate::value::Value;
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        vec(any::<u8>(), 0..24).prop_map(|b| Value::bytes(&b)),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..6).prop_map(Value::List),
            btree_map(vec(any::<u8>(), 0..8), inner, 0..6).prop_map(|m| {
                Value::Dict(
                    m.into_iter()
                        .map(|(k, v)| (bytes::Bytes::from(k), v))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    /// decode(encode(v)) == v for every value tree.
    #[test]
    fn roundtrip(v in arb_value()) {
        let wire = v.encode();
        let back = Value::decode(&wire).expect("canonical encoding must decode");
        prop_assert_eq!(back, v);
    }

    /// encoded_len is exact.
    #[test]
    fn encoded_len_exact(v in arb_value()) {
        prop_assert_eq!(v.encoded_len(), v.encode().len());
    }

    /// Canonical encodings are injective: distinct values give distinct
    /// bytes (follows from roundtrip, checked directly on pairs).
    #[test]
    fn injective(a in arb_value(), b in arb_value()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_is_total(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Value::decode(&bytes);
    }

    /// Any successfully decoded value re-encodes to the identical bytes
    /// (canonical form is unique, thanks to strict decoding).
    #[test]
    fn decoded_is_canonical(bytes in vec(any::<u8>(), 0..128)) {
        if let Ok(v) = Value::decode(&bytes) {
            prop_assert_eq!(v.encode(), bytes);
        }
    }

    /// Truncating a valid encoding never decodes successfully.
    #[test]
    fn truncation_always_fails(v in arb_value(), cut in 1usize..16) {
        let wire = v.encode();
        if cut < wire.len() {
            let truncated = &wire[..wire.len() - cut];
            prop_assert!(Value::decode(truncated).is_err());
        }
    }
}
