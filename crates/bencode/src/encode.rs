//! Canonical bencode encoding.

use crate::value::Value;

impl Value {
    /// Encode to the canonical byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Append the canonical encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bytes(b) => {
                push_usize(out, b.len());
                out.push(b':');
                out.extend_from_slice(b);
            }
            Value::Int(i) => {
                out.push(b'i');
                push_i64(out, *i);
                out.push(b'e');
            }
            Value::List(items) => {
                out.push(b'l');
                for item in items {
                    item.encode_into(out);
                }
                out.push(b'e');
            }
            Value::Dict(map) => {
                out.push(b'd');
                // BTreeMap iterates in sorted key order: canonical by
                // construction.
                for (k, v) in map {
                    push_usize(out, k.len());
                    out.push(b':');
                    out.extend_from_slice(k);
                    v.encode_into(out);
                }
                out.push(b'e');
            }
        }
    }

    /// Exact length of the canonical encoding, without allocating it.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Bytes(b) => dec_len(b.len() as u64) + 1 + b.len(),
            Value::Int(i) => {
                let neg = usize::from(*i < 0);
                2 + neg + dec_len(i.unsigned_abs())
            }
            Value::List(items) => 2 + items.iter().map(Value::encoded_len).sum::<usize>(),
            Value::Dict(map) => {
                2 + map
                    .iter()
                    .map(|(k, v)| dec_len(k.len() as u64) + 1 + k.len() + v.encoded_len())
                    .sum::<usize>()
            }
        }
    }
}

fn push_usize(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(n.to_string().as_bytes());
}

fn push_i64(out: &mut Vec<u8>, n: i64) {
    out.extend_from_slice(n.to_string().as_bytes());
}

/// Number of decimal digits of `n`.
fn dec_len(n: u64) -> usize {
    if n == 0 {
        1
    } else {
        (n.ilog10() + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bep3_examples() {
        assert_eq!(Value::bytes(b"spam").encode(), b"4:spam");
        assert_eq!(Value::int(3).encode(), b"i3e");
        assert_eq!(Value::int(-3).encode(), b"i-3e");
        assert_eq!(Value::int(0).encode(), b"i0e");
        assert_eq!(
            Value::list([Value::bytes(b"spam"), Value::bytes(b"eggs")]).encode(),
            b"l4:spam4:eggse"
        );
        assert_eq!(
            Value::dict([
                (&b"cow"[..], Value::bytes(b"moo")),
                (&b"spam"[..], Value::bytes(b"eggs")),
            ])
            .encode(),
            b"d3:cow3:moo4:spam4:eggse"
        );
        assert_eq!(Value::bytes(b"").encode(), b"0:");
    }

    #[test]
    fn dict_keys_sorted_regardless_of_insertion_order() {
        let mut v = Value::empty_dict();
        v.insert(b"zz", Value::int(1));
        v.insert(b"aa", Value::int(2));
        assert_eq!(v.encode(), b"d2:aai2e2:zzi1ee");
    }

    #[test]
    fn encoded_len_matches() {
        let samples = [
            Value::bytes(b""),
            Value::bytes(b"hello world"),
            Value::int(0),
            Value::int(i64::MIN),
            Value::int(i64::MAX),
            Value::int(-10),
            Value::list([Value::int(1), Value::bytes(b"x")]),
            Value::dict([(&b"k"[..], Value::list([Value::int(7)]))]),
        ];
        for v in samples {
            assert_eq!(v.encoded_len(), v.encode().len(), "{v:?}");
        }
    }

    #[test]
    fn extreme_integers() {
        assert_eq!(
            Value::int(i64::MIN).encode(),
            b"i-9223372036854775808e".as_slice()
        );
        assert_eq!(
            Value::int(i64::MAX).encode(),
            b"i9223372036854775807e".as_slice()
        );
    }
}
