//! The bencode value tree.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// A bencoded value.
///
/// Dictionaries use a `BTreeMap` so iteration (and therefore encoding) is
/// always in the canonical sorted-key order required by BEP-3.
#[derive(Clone, PartialEq, Eq)]
pub enum Value {
    /// A byte string (`4:spam`). Not necessarily UTF-8.
    Bytes(Bytes),
    /// An integer (`i42e`). BEP-3 allows arbitrary precision; like the
    /// reference implementations we cap at i64, which covers every KRPC
    /// field.
    Int(i64),
    /// A list (`l…e`).
    List(Vec<Value>),
    /// A dictionary (`d…e`) with byte-string keys in sorted order.
    Dict(BTreeMap<Bytes, Value>),
}

impl Value {
    /// Byte-string constructor (copies the slice).
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Bytes::copy_from_slice(b.as_ref()))
    }

    /// Integer constructor.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// List constructor.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Dictionary constructor from `(key, value)` pairs.
    pub fn dict<'k>(pairs: impl IntoIterator<Item = (&'k [u8], Value)>) -> Value {
        Value::Dict(
            pairs
                .into_iter()
                .map(|(k, v)| (Bytes::copy_from_slice(k), v))
                .collect(),
        )
    }

    /// Borrow as a byte string.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow as UTF-8 text, when it is a byte string holding valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(self.as_bytes()?).ok()
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_dict(&self) -> Option<&BTreeMap<Bytes, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Dictionary lookup by key.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.as_dict()?.get(key)
    }

    /// Insert into a dictionary value; panics when `self` is not a dict
    /// (builder convenience used by the KRPC codec).
    pub fn insert(&mut self, key: &[u8], value: Value) -> &mut Self {
        match self {
            Value::Dict(d) => {
                d.insert(Bytes::copy_from_slice(key), value);
            }
            _ => panic!("insert on non-dict bencode value"),
        }
        self
    }

    /// Empty dictionary.
    pub fn empty_dict() -> Value {
        Value::Dict(BTreeMap::new())
    }
}

impl fmt::Debug for Value {
    /// Debug form renders byte strings as text where printable, hex
    /// otherwise — KRPC mixes both (`"ping"` vs. 20-byte node IDs).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bytes(b) => {
                if b.iter().all(|c| c.is_ascii_graphic() || *c == b' ') {
                    write!(f, "\"{}\"", String::from_utf8_lossy(b))
                } else {
                    write!(f, "0x")?;
                    for byte in b.iter() {
                        write!(f, "{byte:02x}")?;
                    }
                    Ok(())
                }
            }
            Value::Int(i) => write!(f, "{i}"),
            Value::List(l) => f.debug_list().entries(l).finish(),
            Value::Dict(d) => {
                let mut m = f.debug_map();
                for (k, v) in d {
                    m.entry(&Value::Bytes(k.clone()), v);
                }
                m.finish()
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::bytes(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::bytes(s.as_bytes())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::dict([
            (&b"a"[..], Value::int(1)),
            (&b"b"[..], Value::bytes(b"xy")),
            (&b"c"[..], Value::list([Value::int(2)])),
        ]);
        assert_eq!(v.get(b"a").unwrap().as_int(), Some(1));
        assert_eq!(v.get(b"b").unwrap().as_bytes(), Some(&b"xy"[..]));
        assert_eq!(v.get(b"b").unwrap().as_str(), Some("xy"));
        assert_eq!(v.get(b"c").unwrap().as_list().unwrap().len(), 1);
        assert!(v.get(b"zz").is_none());
        assert!(v.as_int().is_none());
        assert!(Value::int(3).as_dict().is_none());
    }

    #[test]
    fn insert_builds_dicts() {
        let mut v = Value::empty_dict();
        v.insert(b"k", Value::int(9));
        assert_eq!(v.get(b"k").unwrap().as_int(), Some(9));
    }

    #[test]
    #[should_panic(expected = "non-dict")]
    fn insert_on_non_dict_panics() {
        Value::int(1).insert(b"k", Value::int(2));
    }

    #[test]
    fn debug_renders_binary_as_hex() {
        let v = Value::bytes([0x01, 0xff]);
        assert_eq!(format!("{v:?}"), "0x01ff");
        let s = Value::bytes(b"ping");
        assert_eq!(format!("{s:?}"), "\"ping\"");
    }

    #[test]
    fn non_utf8_as_str_is_none() {
        assert_eq!(Value::bytes([0xff, 0xfe]).as_str(), None);
    }
}
