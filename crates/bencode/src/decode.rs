//! Strict bencode decoding.

use crate::value::Value;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum container nesting the decoder accepts. KRPC messages nest at
/// most 3 deep; 32 leaves ample slack while bounding stack use on
/// attacker-controlled datagrams.
pub const MAX_DEPTH: usize = 32;

/// A decoding failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    pub offset: usize,
    pub kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A byte that cannot start or continue a value here.
    UnexpectedByte(u8),
    /// Integer with a leading zero (`i03e`) or `i-0e`.
    NonCanonicalInt,
    /// Integer that does not fit in i64.
    IntOverflow,
    /// String length prefix overflows or has a leading zero.
    BadLength,
    /// Dictionary keys out of order or duplicated.
    UnsortedKeys,
    /// Bytes remained after the top-level value.
    TrailingData,
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bencode decode error at byte {}: {:?}",
            self.offset, self.kind
        )
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// Decode a complete bencoded value; trailing bytes are an error.
    pub fn decode(input: &[u8]) -> Result<Value, DecodeError> {
        let (value, used) = decode_prefix(input)?;
        if used != input.len() {
            return Err(DecodeError {
                offset: used,
                kind: ErrorKind::TrailingData,
            });
        }
        Ok(value)
    }
}

/// Decode one value from the front of `input`, returning it and the number
/// of bytes consumed. Useful when values are concatenated in a stream.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), DecodeError> {
    let mut d = Decoder { input, pos: 0 };
    let v = d.value(0)?;
    Ok((v, d.pos))
}

struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn err<T>(&self, kind: ErrorKind) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            kind,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, DecodeError> {
        match self.peek() {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err(ErrorKind::UnexpectedEof),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return self.err(ErrorKind::TooDeep);
        }
        match self.peek() {
            None => self.err(ErrorKind::UnexpectedEof),
            Some(b'i') => self.integer(),
            Some(b'l') => self.list(depth),
            Some(b'd') => self.dict(depth),
            Some(b'0'..=b'9') => Ok(Value::Bytes(self.byte_string()?)),
            Some(b) => self.err(ErrorKind::UnexpectedByte(b)),
        }
    }

    fn integer(&mut self) -> Result<Value, DecodeError> {
        self.bump()?; // 'i'
        let negative = if self.peek() == Some(b'-') {
            self.bump()?;
            true
        } else {
            false
        };
        let start = self.pos;
        let mut magnitude: u64 = 0;
        loop {
            match self.bump()? {
                b'e' => {
                    let digits = self.pos - 1 - start;
                    if digits == 0 {
                        return self.err(ErrorKind::NonCanonicalInt);
                    }
                    // Reject leading zeros (i03e) and negative zero (i-0e).
                    if digits > 1 && self.input[start] == b'0' {
                        return self.err(ErrorKind::NonCanonicalInt);
                    }
                    if negative && magnitude == 0 {
                        return self.err(ErrorKind::NonCanonicalInt);
                    }
                    let value = if negative {
                        if magnitude > (i64::MAX as u64) + 1 {
                            return self.err(ErrorKind::IntOverflow);
                        }
                        (magnitude as i64).wrapping_neg()
                    } else {
                        if magnitude > i64::MAX as u64 {
                            return self.err(ErrorKind::IntOverflow);
                        }
                        magnitude as i64
                    };
                    return Ok(Value::Int(value));
                }
                d @ b'0'..=b'9' => {
                    magnitude = magnitude
                        .checked_mul(10)
                        .and_then(|m| m.checked_add(u64::from(d - b'0')))
                        .ok_or(DecodeError {
                            offset: self.pos,
                            kind: ErrorKind::IntOverflow,
                        })?;
                }
                b => {
                    self.pos -= 1;
                    return self.err(ErrorKind::UnexpectedByte(b));
                }
            }
        }
    }

    fn byte_string(&mut self) -> Result<Bytes, DecodeError> {
        let start = self.pos;
        let mut len: usize = 0;
        loop {
            match self.bump()? {
                b':' => break,
                d @ b'0'..=b'9' => {
                    // Reject lengths with leading zeros ("01:x").
                    if self.pos - 1 > start && self.input[start] == b'0' {
                        return self.err(ErrorKind::BadLength);
                    }
                    len = len
                        .checked_mul(10)
                        .and_then(|l| l.checked_add(usize::from(d - b'0')))
                        .ok_or(DecodeError {
                            offset: self.pos,
                            kind: ErrorKind::BadLength,
                        })?;
                }
                b => {
                    self.pos -= 1;
                    return self.err(ErrorKind::UnexpectedByte(b));
                }
            }
        }
        if self.pos + len > self.input.len() {
            return self.err(ErrorKind::UnexpectedEof);
        }
        let bytes = Bytes::copy_from_slice(&self.input[self.pos..self.pos + len]);
        self.pos += len;
        Ok(bytes)
    }

    fn list(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.bump()?; // 'l'
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(b'e') => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                Some(_) => items.push(self.value(depth + 1)?),
                None => return self.err(ErrorKind::UnexpectedEof),
            }
        }
    }

    fn dict(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.bump()?; // 'd'
        let mut map = BTreeMap::new();
        let mut last_key: Option<Bytes> = None;
        loop {
            match self.peek() {
                Some(b'e') => {
                    self.pos += 1;
                    return Ok(Value::Dict(map));
                }
                Some(b'0'..=b'9') => {
                    let key = self.byte_string()?;
                    if let Some(prev) = &last_key {
                        if *prev >= key {
                            return self.err(ErrorKind::UnsortedKeys);
                        }
                    }
                    let value = self.value(depth + 1)?;
                    last_key = Some(key.clone());
                    map.insert(key, value);
                }
                Some(b) => return self.err(ErrorKind::UnexpectedByte(b)),
                None => return self.err(ErrorKind::UnexpectedEof),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(input: &[u8]) -> ErrorKind {
        Value::decode(input).unwrap_err().kind
    }

    #[test]
    fn roundtrip_examples() {
        for wire in [
            &b"4:spam"[..],
            b"i3e",
            b"i-3e",
            b"i0e",
            b"le",
            b"de",
            b"l4:spam4:eggse",
            b"d3:cow3:moo4:spam4:eggse",
            b"d1:ad2:idi7eee",
        ] {
            let v = Value::decode(wire).unwrap_or_else(|e| panic!("{e} on {wire:?}"));
            assert_eq!(v.encode(), wire);
        }
    }

    #[test]
    fn rejects_trailing_data() {
        assert_eq!(kind(b"i3ei4e"), ErrorKind::TrailingData);
        assert_eq!(kind(b"4:spamX"), ErrorKind::TrailingData);
    }

    #[test]
    fn rejects_truncation() {
        assert_eq!(kind(b""), ErrorKind::UnexpectedEof);
        assert_eq!(kind(b"i42"), ErrorKind::UnexpectedEof);
        assert_eq!(kind(b"5:spam"), ErrorKind::UnexpectedEof);
        assert_eq!(kind(b"l4:spam"), ErrorKind::UnexpectedEof);
        assert_eq!(kind(b"d1:a"), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_non_canonical_ints() {
        assert_eq!(kind(b"i03e"), ErrorKind::NonCanonicalInt);
        assert_eq!(kind(b"i-0e"), ErrorKind::NonCanonicalInt);
        assert_eq!(kind(b"ie"), ErrorKind::NonCanonicalInt);
        assert_eq!(kind(b"i00e"), ErrorKind::NonCanonicalInt);
    }

    #[test]
    fn rejects_overflow() {
        assert_eq!(kind(b"i9223372036854775808e"), ErrorKind::IntOverflow);
        assert_eq!(
            Value::decode(b"i-9223372036854775808e").unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(kind(b"i-9223372036854775809e"), ErrorKind::IntOverflow);
        assert_eq!(kind(b"i99999999999999999999e"), ErrorKind::IntOverflow);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(kind(b"01:x"), ErrorKind::BadLength);
        assert_eq!(kind(b"99999999999999999999:x"), ErrorKind::BadLength);
    }

    #[test]
    fn rejects_unsorted_or_duplicate_keys() {
        assert_eq!(kind(b"d1:bi1e1:ai2ee"), ErrorKind::UnsortedKeys);
        assert_eq!(kind(b"d1:ai1e1:ai2ee"), ErrorKind::UnsortedKeys);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(kind(b"x"), ErrorKind::UnexpectedByte(b'x')));
        assert!(matches!(kind(b"i4x"), ErrorKind::UnexpectedByte(b'x')));
        assert!(matches!(kind(b"d i3e e"), ErrorKind::UnexpectedByte(_)));
    }

    #[test]
    fn depth_limit() {
        let mut deep = vec![b'l'; MAX_DEPTH + 2];
        deep.resize(2 * (MAX_DEPTH + 2), b'e');
        assert_eq!(kind(&deep), ErrorKind::TooDeep);
        // Exactly at the limit is fine.
        let mut ok = vec![b'l'; MAX_DEPTH];
        ok.resize(2 * MAX_DEPTH, b'e');
        assert!(Value::decode(&ok).is_ok());
    }

    #[test]
    fn decode_prefix_reports_consumption() {
        let (v, used) = decode_prefix(b"i7e4:rest").unwrap();
        assert_eq!(v, Value::Int(7));
        assert_eq!(used, 3);
        let (v2, used2) = decode_prefix(b"4:rest").unwrap();
        assert_eq!(v2, Value::bytes(b"rest"));
        assert_eq!(used2, 6);
    }

    #[test]
    fn binary_strings_survive() {
        let raw: Vec<u8> = (0..=255u8).collect();
        let v = Value::bytes(&raw);
        let decoded = Value::decode(&v.encode()).unwrap();
        assert_eq!(decoded.as_bytes().unwrap(), raw.as_slice());
    }
}
