//! End-to-end pipeline benchmarks: a one-week DHT crawl, blocklist
//! dataset generation, and the analysis joins — the pieces the figure
//! binaries chain together.

use address_reuse::{coverage, durations, funnel, impact, natted_per_list};
use ar_blocklists::{build_catalog, generate_dataset};
use ar_crawler::{crawl, CrawlConfig};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;
use ar_simnet::time::{date, TimeWindow};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn week() -> TimeWindow {
    TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10))
}

fn bench_crawl(c: &mut Criterion) {
    let universe = ar_simnet::Universe::generate(Seed(8), &UniverseConfig::tiny());
    let alloc = AllocationPlan::build(&universe, week(), InterestSet::Observable);
    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.bench_function("one_week_tiny", |b| {
        b.iter(|| {
            let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
            crawl(&mut net, &CrawlConfig::new(week()))
        })
    });
    group.finish();
}

fn bench_blocklists(c: &mut Criterion) {
    let universe = ar_simnet::Universe::generate(Seed(9), &UniverseConfig::tiny());
    let alloc = AllocationPlan::build(&universe, week(), InterestSet::Observable);
    let mut group = c.benchmark_group("blocklists");
    group.sample_size(10);
    group.bench_function("generate_dataset", |b| {
        b.iter(|| generate_dataset(black_box(&universe), &[(week(), &alloc)], build_catalog()))
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    use address_reuse::{Study, StudyConfig};
    let study = Study::run(StudyConfig::quick_test(Seed(10)));
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("funnel", |b| b.iter(|| funnel(black_box(&study))));
    group.bench_function("coverage", |b| b.iter(|| coverage(black_box(&study))));
    group.bench_function("natted_per_list", |b| {
        b.iter(|| natted_per_list(black_box(&study)))
    });
    group.bench_function("durations", |b| b.iter(|| durations(black_box(&study))));
    group.bench_function("impact", |b| b.iter(|| impact(black_box(&study))));
    group.finish();
}

criterion_group!(benches, bench_crawl, bench_blocklists, bench_analysis);
criterion_main!(benches);
