//! Detection-algorithm benchmarks: Kneedle, the Atlas pipeline, and the
//! census block metrics.

use ar_atlas::{allocation_count_knee, detect_dynamic, generate_fleet, PipelineConfig};
use ar_census::{run_census, Classifier, SurveyConfig};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;
use ar_simnet::time::{ATLAS_WINDOW, PERIOD_2};
use ar_simnet::universe::Universe;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_kneedle(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    // A Figure 2-shaped count distribution over 10K probes.
    let counts: Vec<u32> = (0..10_000)
        .map(|_| {
            let roll: f64 = rng.gen();
            if roll < 0.6 {
                1
            } else if roll < 0.9 {
                2 + rng.gen_range(0..6)
            } else {
                8 + rng.gen_range(0..900)
            }
        })
        .collect();
    c.bench_function("kneedle/10k_probes", |b| {
        b.iter(|| allocation_count_knee(black_box(&counts), 1.0))
    });
}

fn bench_atlas_pipeline(c: &mut Criterion) {
    let universe = Universe::generate(Seed(6), &UniverseConfig::tiny());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);
    c.bench_function("atlas/detect_dynamic", |b| {
        b.iter(|| {
            detect_dynamic(black_box(&log), &PipelineConfig::default(), |ip| {
                universe.asn_of(ip)
            })
        })
    });
}

fn bench_census(c: &mut Criterion) {
    let universe = Universe::generate(Seed(7), &UniverseConfig::tiny());
    c.bench_function("census/two_week_survey", |b| {
        b.iter(|| {
            run_census(
                black_box(&universe),
                &SurveyConfig::two_weeks_from(PERIOD_2.start),
                &Classifier::default(),
            )
        })
    });
}

criterion_group!(benches, bench_kneedle, bench_atlas_pipeline, bench_census);
criterion_main!(benches);
