//! Wire-codec microbenchmarks: bencode and KRPC message processing.
//!
//! The paper's crawler pushed 1.6 billion datagrams; codec cost directly
//! bounds achievable crawl rate.

use ar_bencode::Value;
use ar_dht::{Message, NodeId, NodeInfo, Query, Response};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sample_find_node_response(rng: &mut SmallRng) -> Vec<u8> {
    let nodes: Vec<NodeInfo> = (0..8)
        .map(|_| NodeInfo {
            id: NodeId::random(rng),
            addr: std::net::SocketAddrV4::new(rng.gen::<u32>().into(), rng.gen()),
        })
        .collect();
    Message::response(b"tx", Response::found_nodes(NodeId::random(rng), nodes))
        .with_version(*b"LT\x01\x02")
        .encode()
}

fn bench_codec(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let ping = Message::query(
        b"aa",
        Query::Ping {
            id: NodeId::random(&mut rng),
        },
    );
    let ping_wire = ping.encode();
    let reply_wire = sample_find_node_response(&mut rng);

    let mut group = c.benchmark_group("krpc");
    group.throughput(Throughput::Bytes(ping_wire.len() as u64));
    group.bench_function("encode_ping", |b| b.iter(|| black_box(&ping).encode()));
    group.bench_function("decode_ping", |b| {
        b.iter(|| Message::decode(black_box(&ping_wire)).unwrap())
    });
    group.throughput(Throughput::Bytes(reply_wire.len() as u64));
    group.bench_function("decode_find_node_reply", |b| {
        b.iter(|| Message::decode(black_box(&reply_wire)).unwrap())
    });
    group.finish();

    // Raw bencode on a nested document.
    let doc = Value::dict([
        (&b"a"[..], Value::list((0..32).map(Value::int))),
        (&b"b"[..], Value::bytes([0xabu8; 256])),
        (
            &b"c"[..],
            Value::dict([
                (&b"x"[..], Value::bytes(b"nested")),
                (&b"y"[..], Value::int(-7)),
            ]),
        ),
    ]);
    let wire = doc.encode();
    let mut group = c.benchmark_group("bencode");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(&doc).encode()));
    group.bench_function("decode", |b| {
        b.iter(|| Value::decode(black_box(&wire)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
