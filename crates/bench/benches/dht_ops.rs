//! DHT data-structure microbenchmarks: XOR metric, k-bucket maintenance,
//! closest-node lookups, and the simulated population's endpoint
//! resolution (the hot path of every simulated datagram).

use ar_dht::{Contact, DhtPopulation, NodeId, PopulationParams, RoutingTable};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;
use ar_simnet::time::{SimDuration, PERIOD_1};
use ar_simnet::universe::Universe;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_node_id(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = NodeId::random(&mut rng);
    let b = NodeId::random(&mut rng);
    c.bench_function("node_id/distance", |bch| {
        bch.iter(|| black_box(a).distance(&black_box(b)))
    });
    c.bench_function("node_id/from_ip_and_nonce", |bch| {
        bch.iter(|| NodeId::from_ip_and_nonce(black_box("192.0.2.7".parse().unwrap()), 99))
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let own = NodeId::random(&mut rng);
    let mut table = RoutingTable::new(own);
    let contacts: Vec<Contact> = (0..10_000)
        .map(|i| {
            Contact::new(
                NodeId::random(&mut rng),
                std::net::SocketAddrV4::new(rng.gen::<u32>().into(), 1024 + (i % 60_000) as u16),
            )
        })
        .collect();
    for contact in &contacts {
        table.insert(*contact);
    }
    c.bench_function("routing/insert", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % contacts.len();
            table.insert(black_box(contacts[i]))
        })
    });
    let target = NodeId::random(&mut rng);
    c.bench_function("routing/closest8", |b| {
        b.iter(|| table.closest(&black_box(target), 8))
    });
}

fn bench_population(c: &mut Criterion) {
    let universe = Universe::generate(Seed(3), &UniverseConfig::tiny());
    let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
    let pop = DhtPopulation::new(&universe, &alloc, PopulationParams::default());
    let t = PERIOD_1.start + SimDuration::from_days(10);
    let hosts = pop.bt_hosts().to_vec();
    let endpoints: Vec<_> = hosts.iter().filter_map(|h| pop.endpoint(*h, t)).collect();

    c.bench_function("population/session", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % hosts.len();
            pop.session(black_box(hosts[i]), t)
        })
    });
    c.bench_function("population/resolve", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % endpoints.len();
            pop.resolve(black_box(endpoints[i]), t)
        })
    });
}

criterion_group!(benches, bench_node_id, bench_routing, bench_population);
criterion_main!(benches);
