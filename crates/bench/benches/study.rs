//! Criterion: the whole orchestrator, serial vs parallel, on the
//! quick-test configuration. The `bench_study` binary is the heavyweight
//! (shape-test, JSON artifact) variant; this one is for quick regression
//! tracking of `Study::run` itself.

use address_reuse::{Study, StudyConfig};
use ar_simnet::par;
use ar_simnet::rng::Seed;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    for (name, threads) in [("serial", 1), ("parallel", par::max_threads())] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut config = StudyConfig::quick_test(Seed(2020));
                config.threads = Some(threads);
                Study::run(config)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
