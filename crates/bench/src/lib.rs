//! # ar-bench — experiment harness
//!
//! One binary per paper exhibit (`fig2` … `fig9`, `table1`, `table2`,
//! `section4`, the `ablation_*` studies, and `all_figures` which runs the
//! whole campaign once and renders everything). Each binary prints the
//! paper-reported values next to the measured ones so drift is visible at
//! a glance; `EXPERIMENTS.md` records a reference run.
//!
//! Shared flags: `--seed <u64>` (default 2020) and `--scale <u32>`
//! (default 2000; population downscale relative to the paper — smaller
//! numbers mean bigger universes and longer runs; see
//! `UniverseConfig::at_scale`).

pub mod plot;

use address_reuse::{Study, StudyConfig};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    pub seed: Seed,
    pub scale: u32,
    /// Worker threads for the study phases (`None` = auto: `AR_THREADS`
    /// env var, else all available cores).
    pub threads: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: Seed(2020),
            scale: 2_000,
            threads: None,
        }
    }
}

impl Args {
    /// Parse `--seed` / `--scale` from the process arguments; exits with a
    /// usage message on malformed input.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seed" => {
                    out.seed = Seed(expect_num(&argv, i));
                    i += 2;
                }
                "--scale" => {
                    out.scale = expect_num(&argv, i) as u32;
                    i += 2;
                }
                "--threads" => {
                    out.threads = Some(expect_num(&argv, i) as usize);
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--seed N] [--scale N] [--threads N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?}; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    pub fn universe_config(&self) -> UniverseConfig {
        UniverseConfig::at_scale(self.scale)
    }

    pub fn study_config(&self) -> StudyConfig {
        let mut config = StudyConfig::paper(self.seed, self.universe_config());
        config.threads = self.threads;
        config
    }
}

fn expect_num(argv: &[String], i: usize) -> u64 {
    argv.get(i + 1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{} needs a numeric value", argv[i]);
            std::process::exit(2);
        })
}

/// Run the full measurement campaign, logging progress to stderr.
pub fn full_study(args: Args) -> Study {
    eprintln!(
        "[harness] running full study: seed={} scale=1:{} (this crawls two full periods; \
         use --scale 4000 for a quicker pass)",
        args.seed.0, args.scale
    );
    let t0 = std::time::Instant::now();
    let study = Study::run(args.study_config());
    eprintln!(
        "[harness] study complete in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    study
}

/// A paper-vs-measured comparison row.
pub struct Row {
    pub label: &'static str,
    pub paper: String,
    pub measured: String,
}

/// Print a comparison table with a header.
pub fn print_comparison(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    println!("{:<44} {:>18} {:>18}", "metric", "paper", "measured");
    for r in rows {
        println!("{:<44} {:>18} {:>18}", r.label, r.paper, r.measured);
    }
    println!();
}

/// Shorthand constructor.
pub fn row(label: &'static str, paper: impl ToString, measured: impl ToString) -> Row {
    Row {
        label,
        paper: paper.to_string(),
        measured: measured.to_string(),
    }
}

/// Render an ASCII sparkline-style CDF/series table (x, one or more
/// series), capped at `max_rows` evenly spaced samples.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<f64>], max_rows: usize) {
    println!("-- {title} --");
    for h in header {
        print!("{h:>12}");
    }
    println!();
    let step = rows.len().max(1).div_ceil(max_rows);
    for (i, r) in rows.iter().enumerate() {
        if i % step.max(1) != 0 && i != rows.len() - 1 {
            continue;
        }
        for v in r {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                print!("{:>12}", *v as i64);
            } else {
                print!("{v:>12.4}");
            }
        }
        println!();
    }
    println!();
}

pub use plot::ascii_chart;
