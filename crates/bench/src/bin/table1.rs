//! Table 1: summary of survey responses on usage of blocklists.
//!
//! Paper: 65 respondents; 85% use external blocklists (avg 2 / max 39
//! paid, avg 10 / max 68 public); 59% block directly; 35% feed threat
//! intelligence; of the 34 who answered the reuse questions, 76% blame
//! dynamic addressing and 56% carrier-grade NAT for inaccuracy.

use ar_bench::{print_comparison, row, Args};
use ar_survey::{generate_respondents, render_table1, table1, SurveyTargets};

fn main() {
    let args = Args::parse();
    let pool = generate_respondents(args.seed, &SurveyTargets::default());
    let t = table1(&pool);

    print_comparison(
        "Table 1 — blocklist usage survey",
        &[
            row("respondents", 65, t.respondents),
            row(
                "use external blocklists",
                "85%",
                format!("{:.0}%", t.external_pct),
            ),
            row(
                "maintain internal blocklists",
                "70%",
                format!("{:.0}%", t.internal_pct),
            ),
            row("paid-for lists (avg)", 2, format!("{:.1}", t.paid_avg)),
            row("paid-for lists (max)", 39, t.paid_max),
            row("public lists (avg)", 10, format!("{:.1}", t.public_avg)),
            row("public lists (max)", 68, t.public_max),
            row(
                "directly block on lists",
                "59%",
                format!("{:.0}%", t.direct_block_pct),
            ),
            row(
                "feed threat intelligence",
                "35%",
                format!("{:.0}%", t.threat_intel_pct),
            ),
            row("answered reuse questions", 34, t.reuse_answerers),
            row(
                "see dynamic addressing issues",
                "76%",
                format!("{:.0}%", t.dynamic_issue_pct),
            ),
            row(
                "see carrier-grade NAT issues",
                "56%",
                format!("{:.0}%", t.cgn_issue_pct),
            ),
        ],
    );

    println!("{}", render_table1(&t));
}
