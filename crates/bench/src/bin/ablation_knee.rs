//! Ablation: sensitivity of dynamic-address detection to the
//! frequent-changer threshold and the daily-change filter (§3.2).
//!
//! Sweeps the allocation-count threshold (Kneedle's pick vs fixed 2, 4, 8,
//! 16, 32) and toggles the ≤1-day mean-interchange filter, reporting
//! precision against ground-truth fast pools and the number of blocklisted
//! addresses each variant would greylist.

use ar_atlas::{detect_dynamic, generate_fleet, PipelineConfig};
use ar_bench::Args;
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::ip::Prefix24;
use ar_simnet::time::ATLAS_WINDOW;
use ar_simnet::universe::Universe;

fn main() {
    let args = Args::parse();
    let universe = Universe::generate(args.seed, &args.universe_config());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);

    let truth_fast = universe.true_dynamic_prefixes(true);
    let truth_any = universe.true_dynamic_prefixes(false);

    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "variant", "knee", "prefixes", "precision", "fast-purity", "probes"
    );

    let run = |label: String, config: PipelineConfig| {
        let d = detect_dynamic(&log, &config, |ip| universe.asn_of(ip));
        let detected: Vec<Prefix24> = d.dynamic_prefixes.iter().copied().collect();
        let in_any = detected.iter().filter(|p| truth_any.contains(p)).count();
        let in_fast = detected.iter().filter(|p| truth_fast.contains(p)).count();
        let pct = |n: usize| 100.0 * n as f64 / detected.len().max(1) as f64;
        println!(
            "{:<26} {:>8} {:>10} {:>11.1}% {:>11.1}% {:>12}",
            label,
            d.knee,
            detected.len(),
            pct(in_any),
            pct(in_fast),
            d.daily.probes.len(),
        );
    };

    run("kneedle + daily (paper)".into(), PipelineConfig::default());
    for knee in [2u32, 8, 64, 256, 1024] {
        run(
            format!("fixed knee {knee} + daily"),
            PipelineConfig {
                knee_override: Some(knee),
                ..PipelineConfig::default()
            },
        );
    }
    run(
        "kneedle, no daily filter".into(),
        PipelineConfig {
            max_mean_interchange: None,
            ..PipelineConfig::default()
        },
    );
    run(
        "fixed knee 2, no daily".into(),
        PipelineConfig {
            knee_override: Some(2),
            max_mean_interchange: None,
            ..PipelineConfig::default()
        },
    );

    println!(
        "\nprecision: detected prefixes inside *any* ground-truth pool;\n\
         fast-purity: detected prefixes inside ≤1-day pools (the population §3.2 targets).\n\
         Lower thresholds without the daily filter sweep in slow pools — exactly the\n\
         addresses whose blocklisting is *not* promptly unjust — which is why the paper\n\
         keeps both stages."
    );
}
