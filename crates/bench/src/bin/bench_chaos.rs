//! `bench_chaos` — the serving-path chaos soak.
//!
//! Builds one reputation snapshot from the `quick_test` study, then runs
//! a seeded chaos soak against a live TCP server at every intensity in
//! {0.0, 0.25, 0.5, 1.0} × shard counts {1, 2}: client sessions whose
//! behavior (honest query, slow-loris, truncated frame, connection
//! churn) is drawn from the [`ar_faults::ServeFaultPlan`], periodic hot
//! swap offers sabotaged per the same plan, and server-side worker
//! panics / stalls / latency spikes injected by the plan's hooks.
//!
//! The soak asserts the robustness contract at every point:
//!
//! * every admitted honest query answers the exact verdict-stream
//!   checksum of the generation serving at that moment — across shard
//!   counts, supervisor restarts and rejected swaps;
//! * every caught worker panic is matched by a restart;
//! * every sabotaged snapshot offer is refused and the server keeps
//!   serving pinned last-good; a clean offer recovers to `Serving`;
//! * the final health report is clean, and the full-intensity point's
//!   chaos log replays bit-identically when re-run with the same seed;
//! * the telemetry plane answers `OP_STATS` over the wire mid-soak (the
//!   frame decodes while faults are in flight) and again at the end,
//!   where the frame's cumulative counters must agree with the
//!   in-process run report and the derived `frames_rejected` sum.
//!
//! Writes `BENCH_chaos.json` at the repository root (hand-rendered JSON,
//! no serde round-trip). Flags: `--seed N` (default 2020), `--sessions N`
//! (default 60), `--intensity X` (restrict the sweep to one intensity),
//! `--smoke` (CI preset: intensity 0.5, 2 shards, 24 sessions, prints
//! the health report).

use address_reuse::{reputation_snapshot, GreylistPolicy, Study, StudyConfig};
use ar_faults::{ClientMisbehavior, ServeFaultPlan, SnapshotFault};
use ar_obs::Obs;
use ar_serve::wire::encode_query;
use ar_serve::{
    checksum_verdicts, fnv1a64, misbehave, Client, HealthState, ReputationServer, RetryPolicy,
    ServeOptions,
};
use ar_simnet::rng::Seed;
use std::net::TcpListener;
use std::time::{Duration, Instant};

const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];
const SHARD_COUNTS: [usize; 2] = [1, 2];
/// Sessions between consecutive hot-swap offers.
const SWAP_EVERY: u64 = 5;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-session query batch: a seeded 80/20 hot/uniform mix over the
/// snapshot's listed addresses (the bench_serve shape, smaller).
fn query_log(study: &Study, seed: Seed, n: usize) -> Vec<u32> {
    let snapshot = reputation_snapshot(study, 1, GreylistPolicy::default());
    let listed = snapshot.listed_addresses().as_raw();
    let hot_len = (listed.len() / 8).clamp(1, 4096).min(listed.len().max(1));
    let mut state = seed.fork("chaos-load").0;
    (0..n)
        .map(|_| {
            let w = splitmix(&mut state);
            if w % 10 < 8 && !listed.is_empty() {
                listed[(w >> 8) as usize % hot_len]
            } else {
                (w >> 16) as u32
            }
        })
        .collect()
}

/// The verdict-stream checksum generation `gen` must answer for `ips`
/// (snapshot builds are deterministic, so an identically rebuilt
/// snapshot is byte-identical to the one offered to the live server).
fn expected_checksum(study: &Study, generation: u64, ips: &[u32]) -> u64 {
    let probe = ReputationServer::new(
        reputation_snapshot(study, generation, GreylistPolicy::default()),
        1,
        Obs::disabled(),
    );
    checksum_verdicts(&probe.verdict_batch(ips))
}

struct Point {
    intensity: f64,
    shards: usize,
    sessions: u64,
    honest: u64,
    hostile: u64,
    shed_after_retries: u64,
    swaps_offered: u64,
    swaps_accepted: u64,
    swaps_rejected: u64,
    worker_panics: u64,
    worker_restarts: u64,
    overloaded: u64,
    frames_rejected: u64,
    chaos_events: usize,
    chaos_log_checksum: u64,
    final_state: HealthState,
    /// Logical tick of the final OP_STATS scrape (cumulative query
    /// ordinals — the telemetry plane's clock, not wall time).
    stats_tick: u64,
    /// Windows (evicted-fold + ring + open) the final frame carried.
    stats_windows: usize,
    slo_breaches: u64,
    traces_sampled: u64,
    secs: f64,
}

impl Point {
    fn json(&self) -> String {
        format!(
            "    {{\"intensity\": {}, \"shards\": {}, \"sessions\": {}, \"honest\": {}, \
             \"hostile\": {}, \"shed_after_retries\": {}, \"swaps\": {{\"offered\": {}, \
             \"accepted\": {}, \"rejected\": {}}}, \"worker_panics\": {}, \
             \"worker_restarts\": {}, \"overloaded\": {}, \"frames_rejected\": {}, \
             \"chaos_events\": {}, \"chaos_log_checksum\": \"{:#018x}\", \
             \"final_state\": \"{}\", \"telemetry\": {{\"tick\": {}, \"windows\": {}, \
             \"slo_breaches\": {}, \"traces_sampled\": {}}}, \"wall_secs\": {:.4}}}",
            self.intensity,
            self.shards,
            self.sessions,
            self.honest,
            self.hostile,
            self.shed_after_retries,
            self.swaps_offered,
            self.swaps_accepted,
            self.swaps_rejected,
            self.worker_panics,
            self.worker_restarts,
            self.overloaded,
            self.frames_rejected,
            self.chaos_events,
            self.chaos_log_checksum,
            self.final_state,
            self.stats_tick,
            self.stats_windows,
            self.slo_breaches,
            self.traces_sampled,
            self.secs,
        )
    }
}

/// One soak point: a live server under the plan, `sessions` seeded
/// client sessions, a hot-swap offer every [`SWAP_EVERY`] sessions.
fn run_point(
    study: &Study,
    intensity: f64,
    shards: usize,
    sessions: u64,
    seed: Seed,
    ips: &[u32],
    print_health: bool,
) -> Point {
    let plan = ServeFaultPlan::new(seed.fork("serve-chaos"), intensity);
    let server = ReputationServer::with_options(
        reputation_snapshot(study, 1, GreylistPolicy::default()),
        shards,
        Obs::new(),
        ServeOptions {
            // Tight stall budget so injected slow-loris sessions are cut
            // off in bench time rather than the production 30 s.
            stall_timeout: Duration::from_millis(250),
            faults: Some(plan),
            ..ServeOptions::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = server.serve(listener).expect("serve");

    let mut expected = expected_checksum(study, 1, ips);
    let mut next_generation = 2u64;
    let (mut honest, mut hostile, mut shed) = (0u64, 0u64, 0u64);
    let (mut offered, mut accepted, mut rejected) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for session in 0..sessions {
        if session % SWAP_EVERY == SWAP_EVERY - 1 {
            let ordinal = session / SWAP_EVERY;
            offered += 1;
            match plan.snapshot_fault(ordinal) {
                None => {
                    let generation = next_generation;
                    next_generation += 1;
                    server
                        .offer_swap(reputation_snapshot(
                            study,
                            generation,
                            GreylistPolicy::default(),
                        ))
                        .expect("clean offer accepted");
                    expected = expected_checksum(study, generation, ips);
                    accepted += 1;
                }
                Some(SnapshotFault::GenerationRegression) => {
                    // Re-offer the serving generation: not newer, refused.
                    let stale = server.snapshot().generation();
                    server
                        .offer_swap(reputation_snapshot(study, stale, GreylistPolicy::default()))
                        .expect_err("regressing offer refused");
                    rejected += 1;
                }
                Some(kind) => {
                    let generation = next_generation;
                    next_generation += 1;
                    let bad = reputation_snapshot(study, generation, GreylistPolicy::default())
                        .sabotaged(kind);
                    server.offer_swap(bad).expect_err("sabotaged offer refused");
                    rejected += 1;
                }
            }
        }
        if session == sessions / 2 {
            // Mid-soak OP_STATS scrape: the frame must decode while chaos
            // is in flight, and the logical clock must cover every batch
            // served so far (each answered batch advances it by the batch
            // length; each shed connection by one).
            match Client::connect_with(
                handle.addr(),
                RetryPolicy::resilient(Seed(seed.0 ^ 0x57A7_5000)),
            )
            .and_then(|mut c| c.stats())
            {
                Ok(frame) => assert!(
                    frame.tick >= (honest - shed) * ips.len() as u64,
                    "mid-run stats tick {} fell behind the {} batches already answered",
                    frame.tick,
                    honest - shed
                ),
                // Admission control may shed the scrape under full-bore
                // chaos; that is the backpressure contract working.
                Err(ar_serve::WireError::Overloaded(_)) => {}
                Err(other) => panic!("mid-run stats scrape failed: {other}"),
            }
        }
        match plan.client_misbehavior(session, 0) {
            ClientMisbehavior::None => {
                honest += 1;
                let mut client = Client::connect_with(
                    handle.addr(),
                    RetryPolicy::resilient(Seed(seed.0 ^ (0xC11E_4700 + session))),
                )
                .expect("connect");
                match client.query(ips) {
                    Ok(verdicts) => assert_eq!(
                        checksum_verdicts(&verdicts),
                        expected,
                        "session {session}: verdict stream diverged from the serving generation"
                    ),
                    Err(ar_serve::WireError::Overloaded(_)) => shed += 1,
                    Err(other) => panic!("session {session}: query failed after retries: {other}"),
                }
            }
            behavior => {
                hostile += 1;
                misbehave(handle.addr(), behavior, &encode_query(ips));
            }
        }
    }

    // A final clean offer must recover (or keep) Serving, over the wire.
    let generation = next_generation;
    server
        .offer_swap(reputation_snapshot(
            study,
            generation,
            GreylistPolicy::default(),
        ))
        .expect("final clean offer accepted");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let probe = client.health().expect("health probe");
    assert_eq!(probe.state, HealthState::Serving, "must end Serving");
    assert_eq!(probe.generation, generation);
    assert_eq!(probe.last_good_generation, generation);
    // The final OP_STATS frame: cumulative wire counters must agree with
    // the in-process run report (the soak is quiescent at this point).
    let stats = client.stats().expect("final OP_STATS scrape");

    let report = server.health_report();
    assert!(
        report.is_clean(),
        "health report must be clean at the end of the soak:\n{}",
        report.render()
    );
    if print_health {
        eprintln!("{}", report.render());
    }
    let secs = start.elapsed().as_secs_f64();
    handle.shutdown();

    let obs = server.obs().report();
    let counter = |name: &str| obs.counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        stats.counter("serve.queries"),
        counter("serve.queries"),
        "OP_STATS query counter must match the run report"
    );
    assert_eq!(
        stats.counter("serve.overloaded"),
        counter("serve.overloaded"),
        "OP_STATS shed counter must match the run report"
    );
    let frame_reasons: u64 = ["malformed", "oversized", "truncated", "overloaded"]
        .iter()
        .map(|r| stats.counter(&format!("serve.frames_rejected.{r}")))
        .sum();
    assert_eq!(
        report.frames_rejected, frame_reasons,
        "derived frames_rejected must equal the frame's per-reason sum"
    );
    let log = server.chaos_log();
    let point = Point {
        intensity,
        shards,
        sessions,
        honest,
        hostile,
        shed_after_retries: shed,
        swaps_offered: offered,
        swaps_accepted: accepted,
        swaps_rejected: rejected,
        worker_panics: counter("serve.worker_panics"),
        worker_restarts: counter("serve.worker_restarts"),
        overloaded: counter("serve.overloaded"),
        // Derived: the sum of the four per-reason counters (the raw
        // aggregate is never written at the reject site any more).
        frames_rejected: report.frames_rejected,
        chaos_events: log.len(),
        chaos_log_checksum: fnv1a64(format!("{log:?}").as_bytes()),
        final_state: server.health_probe().state,
        stats_tick: stats.tick,
        stats_windows: stats.windows.len(),
        slo_breaches: stats.slo.breaches,
        traces_sampled: stats.counter("serve.traces_sampled"),
        secs,
    };
    assert_eq!(
        point.worker_panics, point.worker_restarts,
        "every caught panic must be matched by a restart"
    );
    assert_eq!(counter("serve.snapshots_rejected"), rejected);
    if intensity == 0.0 {
        assert_eq!(point.chaos_events, 0, "zero intensity must inject nothing");
        assert_eq!(point.worker_panics, 0);
        assert_eq!(point.swaps_rejected, 0);
    }
    point
}

/// Keep injected worker panics (caught by the shard supervisor) from
/// spraying backtraces over the soak output; real panics still print.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected fault:"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    silence_injected_panics();
    let mut seed = Seed(2020);
    let mut sessions: u64 = 60;
    let mut only_intensity: Option<f64> = None;
    let mut smoke = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    fn value(argv: &[String], i: usize) -> f64 {
        argv.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{} needs a numeric value", argv[i]);
                std::process::exit(2);
            })
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                seed = Seed(value(&argv, i) as u64);
                i += 2;
            }
            "--sessions" => {
                sessions = value(&argv, i) as u64;
                i += 2;
            }
            "--intensity" => {
                only_intensity = Some(value(&argv, i));
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_chaos [--seed N] [--sessions N] [--intensity X] [--smoke]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        only_intensity = Some(only_intensity.unwrap_or(0.5));
        sessions = sessions.min(24);
    }

    eprintln!(
        "[bench_chaos] building snapshot from quick study (seed {})…",
        seed.0
    );
    let study = Study::run(StudyConfig::quick_test(seed));
    let ips = query_log(&study, seed, 300);

    let intensities: Vec<f64> = match only_intensity {
        Some(x) => vec![x],
        None => INTENSITIES.to_vec(),
    };
    let shard_counts: &[usize] = if smoke { &[2] } else { &SHARD_COUNTS };

    let mut points = Vec::new();
    for &intensity in &intensities {
        for &shards in shard_counts {
            eprintln!(
                "[bench_chaos] soak @ intensity {intensity}, {shards} shard(s), {sessions} sessions…"
            );
            let point = run_point(&study, intensity, shards, sessions, seed, &ips, smoke);
            eprintln!(
                "[bench_chaos]   {} honest / {} hostile sessions, {} panics (all restarted), \
                 {} swaps rejected, {} chaos events, {:.2}s",
                point.honest,
                point.hostile,
                point.worker_panics,
                point.swaps_rejected,
                point.chaos_events,
                point.secs
            );
            points.push(point);
        }
    }

    // The full-intensity point must replay its chaos log bit-identically.
    if !smoke {
        if let Some(reference) = points
            .iter()
            .find(|p| p.intensity == 1.0 && p.shards == 2)
            .map(|p| p.chaos_log_checksum)
        {
            eprintln!("[bench_chaos] replaying intensity 1.0 @ 2 shards for determinism…");
            let replay = run_point(&study, 1.0, 2, sessions, seed, &ips, false);
            assert_eq!(
                replay.chaos_log_checksum, reference,
                "identical seeds must produce identical chaos logs"
            );
        }
    }

    let rendered: Vec<String> = points.iter().map(Point::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"seed\": {},\n  \"config\": \"quick_test snapshot, \
         seeded chaos soak, swap every {} sessions\",\n  \"sessions_per_point\": {},\n  \
         \"smoke\": {},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        seed.0,
        SWAP_EVERY,
        sessions,
        smoke,
        rendered.join(",\n")
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_chaos.json");
    std::fs::write(&out, &json).expect("write BENCH_chaos.json");
    println!("{json}");
    eprintln!("[bench_chaos] wrote {}", out.display());
}
