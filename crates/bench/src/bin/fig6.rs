//! Figure 6: dynamic addresses in blocklists — RIPE technique vs the Cai
//! et al. ICMP-census baseline.
//!
//! Paper: 72 lists (47%) list no dynamic address; 30.6K listings covering
//! 22.7K dynamic IPs; 387 per list on average; top-10 lists carry 72.6%;
//! Cai et al. detect a comparable 29.8K listings with broader coverage in
//! some lists (regions without RIPE probes).

use address_reuse::{census_per_list, dynamic_per_list};
use ar_bench::{full_study, print_comparison, print_series, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let d = dynamic_per_list(&study);
    let c = census_per_list(&study);

    let lists = study.blocklists.catalog.len();
    print_comparison(
        "Figure 6 — dynamic addresses in blocklists (RIPE vs Cai et al.)",
        &[
            row(
                "lists with no dynamic address",
                "72 (47%)",
                format!(
                    "{} ({:.0}%)",
                    d.lists_with_none,
                    100.0 * d.lists_with_none as f64 / lists as f64
                ),
            ),
            row("dynamic listings (RIPE)", "30.6K", d.listings),
            row("distinct dynamic addresses (RIPE)", "22.7K", d.addresses),
            row(
                "mean dynamic addresses per list",
                "387",
                format!("{:.0}", d.mean_per_list),
            ),
            row(
                "top-10 lists' share",
                "72.6%",
                format!("{:.1}%", 100.0 * d.top10_share),
            ),
            row(
                "same lists' share of ALL blocklisted",
                "70.3%",
                format!("{:.1}%", 100.0 * d.top10_share_of_all_blocklisted),
            ),
            row("dynamic listings (Cai et al.)", "29.8K", c.listings),
            row("distinct dynamic addrs (Cai et al.)", "—", c.addresses),
        ],
    );

    println!("-- top 10 lists by RIPE-dynamic addresses --");
    for (list, count) in d.counts.iter().take(10) {
        println!("{:>6}  {}", count, study.blocklists.meta(*list).name);
    }
    println!();

    // Aligned series: rank by the RIPE counts, show both techniques.
    let census_count: std::collections::HashMap<_, _> = c.counts.iter().copied().collect();
    let rows: Vec<Vec<f64>> = d
        .counts
        .iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(i, (list, n))| {
            vec![
                (i + 1) as f64,
                f64::from(*n),
                f64::from(census_count.get(list).copied().unwrap_or(0)),
            ]
        })
        .collect();
    print_series(
        "per-list dynamic-address counts (RIPE rank order)",
        &["list rank", "ripe", "cai et al."],
        &rows,
        20,
    );
}
