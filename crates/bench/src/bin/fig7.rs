//! Figure 7: duration distribution of reused addresses in blocklists.
//!
//! Paper: blocklisted addresses are removed within 9 days on average,
//! NATed within 10, dynamic within 3; after two days 42% of all / 60% of
//! NATed / 77.5% of dynamic addresses are already gone; the worst case
//! stays the full 44-day period.

use address_reuse::durations;
use ar_bench::{full_study, print_comparison, print_series, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let d = durations(&study);
    let s = d.summary();

    print_comparison(
        "Figure 7 — days reused addresses stay listed",
        &[
            row(
                "mean days listed (all)",
                "9",
                format!("{:.1}", s.mean_days_all),
            ),
            row(
                "mean days listed (NATed)",
                "10",
                format!("{:.1}", s.mean_days_natted),
            ),
            row(
                "mean days listed (dynamic)",
                "3",
                format!("{:.1}", s.mean_days_dynamic),
            ),
            row(
                "removed within 2 days (all)",
                "42%",
                format!("{:.1}%", 100.0 * s.within2_all),
            ),
            row(
                "removed within 2 days (NATed)",
                "60%",
                format!("{:.1}%", 100.0 * s.within2_natted),
            ),
            row(
                "removed within 2 days (dynamic)",
                "77.5%",
                format!("{:.1}%", 100.0 * s.within2_dynamic),
            ),
            row("maximum days listed", "44", format!("{:.0}", s.max_days)),
        ],
    );

    let rows: Vec<Vec<f64>> = d
        .series(44)
        .into_iter()
        .map(|(x, all, nat, dynamic)| vec![x, all, nat, dynamic])
        .collect();
    print_series(
        "CDF of days-in-blocklist (the Figure 7 curves)",
        &["days", "all", "natted", "dynamic"],
        &rows,
        23,
    );

    let all: Vec<(f64, f64)> = rows.iter().map(|r| (r[0], r[1])).collect();
    let nat: Vec<(f64, f64)> = rows.iter().map(|r| (r[0], r[2])).collect();
    let dynamic: Vec<(f64, f64)> = rows.iter().map(|r| (r[0], r[3])).collect();
    print!(
        "{}",
        ar_bench::ascii_chart(
            "Figure 7 (days listed → CDF)",
            &[("all", &all), ("natted", &nat), ("dynamic", &dynamic)],
            60,
            16,
        )
    );
}
