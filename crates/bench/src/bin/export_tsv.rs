//! Export figure-ready TSV series (for gnuplot/matplotlib replotting):
//! every CDF and per-list series the paper plots, one file per exhibit,
//! under `results/tsv/`.

use address_reuse::{churn, coverage, durations, dynamic_per_list, impact, natted_per_list};
use ar_bench::{full_study, Args};
use std::fmt::Write as _;
use std::fs;

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    fs::create_dir_all("results/tsv").expect("create results/tsv");

    let save = |name: &str, header: &str, body: String| {
        let path = format!("results/tsv/{name}.tsv");
        fs::write(&path, format!("# {header}\n{body}")).expect("write tsv");
        eprintln!("wrote {path}");
    };

    // Figure 3: AS CDFs.
    let c = coverage(&study);
    let mut s = String::new();
    for i in 0..c.per_as.len() {
        let _ = writeln!(
            s,
            "{}\t{:.6}\t{:.6}\t{:.6}",
            i + 1,
            c.cdf_blocklisted[i],
            c.cdf_bt[i],
            c.cdf_ripe[i]
        );
    }
    save("fig3", "rank\tcdf_blocklisted\tcdf_bt\tcdf_ripe", s);

    // Figures 5/6: per-list counts.
    for (name, counts) in [
        ("fig5", natted_per_list(&study)),
        ("fig6", dynamic_per_list(&study)),
    ] {
        let mut s = String::new();
        for (rank, (list, count)) in counts.counts.iter().enumerate() {
            let _ = writeln!(
                s,
                "{}\t{}\t{}",
                rank + 1,
                count,
                study.blocklists.meta(*list).name
            );
        }
        save(name, "rank\tcount\tlist", s);
    }

    // Figure 7: duration CDFs.
    let d = durations(&study);
    let mut s = String::new();
    for (x, all, nat, dynamic) in d.series(44) {
        let _ = writeln!(s, "{x}\t{all:.6}\t{nat:.6}\t{dynamic:.6}");
    }
    save("fig7", "days\tall\tnatted\tdynamic", s);

    // Figure 8: user CDF.
    let i = impact(&study);
    let mut s = String::new();
    for (users, cdf) in i.series() {
        let _ = writeln!(s, "{users}\t{cdf:.6}");
    }
    save("fig8", "users\tcdf", s);

    // Daily churn series (beyond the paper).
    let series = churn(&study);
    let mut s = String::new();
    for day in &series.days {
        let _ = writeln!(
            s,
            "{}\t{}\t{}\t{}\t{}",
            day.day, day.added, day.removed, day.active, day.added_reused
        );
    }
    save("churn", "day\tadded\tremoved\tactive\tadded_reused", s);

    eprintln!(
        "turnover {:.3}/day, reused addition share {:.1}%",
        series.mean_turnover(),
        100.0 * series.reused_addition_share()
    );
}
