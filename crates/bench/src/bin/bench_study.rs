//! `bench_study` — thread-count sweep of the whole orchestrator.
//!
//! Runs `Study::run` on the `quick_test` and `shape_test` configurations
//! once per swept thread count (default 1, 2, 4, 8) and writes the
//! per-phase timings, speedups and crawl-artifact digests to
//! `BENCH_study.json` at the repository root. The determinism matrix
//! guarantees every swept run produces an identical study — the digest
//! column *verifies* that here, and the bench aborts if any run's crawl
//! artifacts drift — so the comparison is purely about where the
//! wall-clock goes.
//!
//! `host_threads` records the machine's real available parallelism
//! (`std::thread::available_parallelism`), and any swept count above it is
//! flagged `oversubscribed`: those runs cannot go faster than the host
//! allows, whatever was requested.
//!
//! Flags: `--seed N` (default 2020), `--threads N` (sweep `[1, N]` instead
//! of the default ladder).

use address_reuse::{Study, StudyConfig, StudyTimings};
use ar_bench::Args;
use ar_simnet::par;
use ar_simnet::rng::Seed;
use serde::Serialize;
use std::time::Instant;

const DEFAULT_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One run's wall-clock breakdown, in seconds.
#[derive(Serialize)]
struct SweepRun {
    threads: usize,
    /// Requested count exceeds the host's real parallelism; the workers
    /// time-slice, so the row measures scheduling overhead, not scaling.
    oversubscribed: bool,
    blocklists: f64,
    crawls: f64,
    /// Wall-clock of the whole crawl phase (concurrent periods × shard
    /// workers); `crawls` sums the per-period task times instead.
    crawls_wall: f64,
    atlas: f64,
    census: f64,
    /// The merge-join layer: the four views every figure derives from.
    joins: f64,
    total: f64,
    /// FNV-1a digest of the serialized crawl artifacts (stats,
    /// observations, message log) — identical across the sweep, by the
    /// determinism contract.
    crawl_digest: String,
}

#[derive(Serialize)]
struct CaseReport {
    sweep: Vec<SweepRun>,
    /// Did every swept run produce byte-identical crawl artifacts?
    crawl_artifacts_identical: bool,
    /// Per swept count: serial crawl-phase wall / this run's.
    crawl_speedup: Vec<(usize, f64)>,
    /// Per swept count: serial end-to-end wall / this run's.
    total_speedup: Vec<(usize, f64)>,
}

#[derive(Serialize)]
struct BenchDoc {
    bench: &'static str,
    seed: u64,
    /// Real host parallelism, not the `AR_THREADS` override.
    host_threads: usize,
    sweep_threads: Vec<usize>,
    quick_test: CaseReport,
    shape_test: CaseReport,
}

/// Digest every crawl artifact the study produced: per-period stats,
/// the full observation maps and the message logs, serialized canonically.
fn crawl_digest(study: &Study) -> String {
    let mut h = ar_simnet::fnv::FnvHasher::new();
    for crawl in &study.crawls {
        let stats = serde_json::to_vec(&crawl.stats).expect("stats serialize");
        let observations = serde_json::to_vec(&crawl.observations).expect("observations serialize");
        let log = serde_json::to_vec(&crawl.log).expect("log serializes");
        h.update(&stats).update(&observations).update(&log);
    }
    format!("{:016x}", h.finish())
}

/// Time the merge-join layer on a finished study.
fn time_joins(study: &Study) -> f64 {
    let t = Instant::now();
    let natted = study.natted_blocklisted();
    let dynamic = study.dynamic_blocklisted();
    let census = study.census_blocklisted();
    let funnel = study.atlas_funnel_blocklisted();
    std::hint::black_box((natted.len(), dynamic.len(), census.len(), funnel.len()));
    t.elapsed().as_secs_f64()
}

fn measure(mut config: StudyConfig, threads: usize, host: usize) -> SweepRun {
    config.threads = Some(threads);
    let study = Study::run(config);
    let joins = time_joins(&study);
    let digest = crawl_digest(&study);
    let StudyTimings {
        blocklists,
        crawls,
        crawls_wall,
        atlas,
        census,
        total,
    } = study.timings;
    SweepRun {
        threads,
        oversubscribed: threads > host,
        blocklists,
        crawls,
        crawls_wall,
        atlas,
        census,
        joins,
        total,
        crawl_digest: digest,
    }
}

fn run_case(
    name: &str,
    make: fn(Seed) -> StudyConfig,
    seed: Seed,
    sweep_threads: &[usize],
    host: usize,
) -> CaseReport {
    let mut sweep = Vec::with_capacity(sweep_threads.len());
    for &threads in sweep_threads {
        if threads > host {
            eprintln!(
                "[bench_study] WARNING: {threads} threads requested but the host \
                 has {host}; the workers will time-slice and the run is flagged \
                 oversubscribed"
            );
        }
        eprintln!("[bench_study] {name}: run at {threads} thread(s)…");
        let run = measure(make(seed), threads, host);
        eprintln!(
            "[bench_study] {name}: {threads} thread(s) took {:.2}s \
             (crawl phase {:.2}s wall)",
            run.total, run.crawls_wall
        );
        sweep.push(run);
    }

    let baseline = &sweep[0];
    let crawl_artifacts_identical = sweep
        .iter()
        .all(|run| run.crawl_digest == baseline.crawl_digest);
    if !crawl_artifacts_identical {
        let digests: Vec<(usize, &str)> = sweep
            .iter()
            .map(|r| (r.threads, r.crawl_digest.as_str()))
            .collect();
        eprintln!(
            "[bench_study] FATAL: {name} crawl artifacts drifted across the \
             thread sweep: {digests:?}"
        );
        std::process::exit(2);
    }
    let crawl_speedup = sweep
        .iter()
        .map(|r| (r.threads, baseline.crawls_wall / r.crawls_wall.max(1e-9)))
        .collect();
    let total_speedup = sweep
        .iter()
        .map(|r| (r.threads, baseline.total / r.total.max(1e-9)))
        .collect();
    CaseReport {
        sweep,
        crawl_artifacts_identical,
        crawl_speedup,
        total_speedup,
    }
}

fn main() {
    let args = Args::parse();
    let host = par::host_threads();
    let sweep_threads: Vec<usize> = match args.threads {
        Some(n) => vec![1, n.max(1)],
        None => DEFAULT_SWEEP.to_vec(),
    };
    eprintln!("[bench_study] host parallelism: {host}; sweeping {sweep_threads:?} threads");

    let doc = BenchDoc {
        bench: "study",
        seed: args.seed.0,
        host_threads: host,
        sweep_threads: sweep_threads.clone(),
        quick_test: run_case(
            "quick_test",
            StudyConfig::quick_test,
            args.seed,
            &sweep_threads,
            host,
        ),
        shape_test: run_case(
            "shape_test",
            StudyConfig::shape_test,
            args.seed,
            &sweep_threads,
            host,
        ),
    };

    let json = serde_json::to_string_pretty(&doc).expect("report serialises");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_study.json");
    std::fs::write(&out, &json).expect("write BENCH_study.json");
    println!("{json}");
    eprintln!("[bench_study] wrote {}", out.display());
}
