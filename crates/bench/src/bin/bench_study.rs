//! `bench_study` — serial vs parallel wall-clock of the whole orchestrator.
//!
//! Runs `Study::run` on the `quick_test` and `shape_test` configurations
//! twice each — once pinned to one thread (the fully serial path) and once
//! at the host's parallelism — and writes the per-phase timings plus the
//! joined-view timing to `BENCH_study.json` at the repository root. The
//! determinism matrix guarantees both runs produce identical studies, so
//! the comparison is purely about where the wall-clock goes.
//!
//! Flags: `--seed N` (default 2020), `--threads N` (parallel run's budget;
//! default all cores).

use address_reuse::{Study, StudyConfig, StudyTimings};
use ar_bench::Args;
use ar_simnet::par;
use ar_simnet::rng::Seed;
use serde::Serialize;
use std::time::Instant;

/// One run's wall-clock breakdown, in seconds.
#[derive(Serialize)]
struct PhaseReport {
    threads: usize,
    blocklists: f64,
    crawls: f64,
    atlas: f64,
    census: f64,
    /// The merge-join layer: the four views every figure derives from.
    joins: f64,
    total: f64,
}

#[derive(Serialize)]
struct CaseReport {
    serial: PhaseReport,
    parallel: PhaseReport,
    speedup_total: f64,
}

#[derive(Serialize)]
struct BenchDoc {
    bench: &'static str,
    seed: u64,
    host_threads: usize,
    quick_test: CaseReport,
    shape_test: CaseReport,
}

/// Time the merge-join layer on a finished study.
fn time_joins(study: &Study) -> f64 {
    let t = Instant::now();
    let natted = study.natted_blocklisted();
    let dynamic = study.dynamic_blocklisted();
    let census = study.census_blocklisted();
    let funnel = study.atlas_funnel_blocklisted();
    std::hint::black_box((natted.len(), dynamic.len(), census.len(), funnel.len()));
    t.elapsed().as_secs_f64()
}

fn measure(mut config: StudyConfig, threads: usize) -> PhaseReport {
    config.threads = Some(threads);
    let study = Study::run(config);
    let joins = time_joins(&study);
    let StudyTimings {
        blocklists,
        crawls,
        atlas,
        census,
        total,
    } = study.timings;
    PhaseReport {
        threads,
        blocklists,
        crawls,
        atlas,
        census,
        joins,
        total,
    }
}

fn run_case(name: &str, make: fn(Seed) -> StudyConfig, seed: Seed, threads: usize) -> CaseReport {
    eprintln!("[bench_study] {name}: serial run…");
    let serial = measure(make(seed), 1);
    eprintln!(
        "[bench_study] {name}: serial {:.2}s; parallel run ({threads} threads)…",
        serial.total
    );
    let parallel = measure(make(seed), threads);
    let speedup_total = serial.total / parallel.total.max(1e-9);
    eprintln!(
        "[bench_study] {name}: parallel {:.2}s ({speedup_total:.2}x)",
        parallel.total
    );
    CaseReport {
        serial,
        parallel,
        speedup_total,
    }
}

fn main() {
    let args = Args::parse();
    let par_threads = args.threads.unwrap_or_else(par::max_threads).max(1);

    let doc = BenchDoc {
        bench: "study",
        seed: args.seed.0,
        host_threads: par::max_threads(),
        quick_test: run_case(
            "quick_test",
            StudyConfig::quick_test,
            args.seed,
            par_threads,
        ),
        shape_test: run_case(
            "shape_test",
            StudyConfig::shape_test,
            args.seed,
            par_threads,
        ),
    };

    let json = serde_json::to_string_pretty(&doc).expect("report serialises");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_study.json");
    std::fs::write(&out, &json).expect("write BENCH_study.json");
    println!("{json}");
    eprintln!("[bench_study] wrote {}", out.display());
}
