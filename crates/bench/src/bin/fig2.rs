//! Figure 2: IP addresses allocated to RIPE Atlas probes.
//!
//! Paper: 15,703 probes over 16 months; 13.1% excluded for multi-AS
//! moves; of the rest, 59% never changed address, 27% changed more than
//! once; Kneedle knee at 8 allocations; 16.6% of probes ≥ knee; 4% (629)
//! change daily.

use ar_atlas::{detect_dynamic, generate_fleet, PipelineConfig};
use ar_bench::{print_comparison, print_series, row, Args};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::ATLAS_WINDOW;
use ar_simnet::universe::Universe;

fn main() {
    let args = Args::parse();
    let universe = Universe::generate(args.seed, &args.universe_config());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);
    let d = detect_dynamic(&log, &PipelineConfig::default(), |ip| universe.asn_of(ip));

    let total = d.all.probes.len();
    let same_as = d.same_as.probes.len();
    let multi_as = total - same_as;
    let single = d
        .summaries
        .iter()
        .filter(|s| s.as_count <= 1 && s.allocation_count <= 1)
        .count();
    let multi_change = d
        .summaries
        .iter()
        .filter(|s| s.as_count <= 1 && s.allocation_count > 1)
        .count();
    let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64);

    print_comparison(
        "Figure 2 — addresses allocated to RIPE Atlas probes",
        &[
            row("probes observed", "15,703", total),
            row("multi-AS probes (excluded)", "13.1%", pct(multi_as)),
            row("probes with no address change", "59%", pct(single)),
            row("probes with multiple changes", "27%", pct(multi_change)),
            row("knee of the allocation curve", "8", d.knee),
            row(
                "probes ≥ knee (frequent)",
                "16.6%",
                pct(d.frequent.probes.len()),
            ),
            row(
                "probes changing daily (final)",
                "4%",
                pct(d.daily.probes.len()),
            ),
        ],
    );

    // Inter-change histogram: bucket 0 is the "daily changers" the final
    // stage keeps.
    let hist = ar_atlas::interchange_histogram(&d.summaries, 10);
    println!("-- mean days between address changes (multi-change probes) --");
    for (day, count) in hist.iter().enumerate() {
        let label = if day + 1 == hist.len() {
            format!("{day}+d")
        } else {
            format!("{day}-{}d", day + 1)
        };
        println!("{label:>8} {count:>6} {}", "▪".repeat((*count).min(60)));
    }
    println!();

    // The sorted curve itself (log-y in the paper).
    let mut counts: Vec<u32> = d
        .summaries
        .iter()
        .filter(|s| s.as_count <= 1)
        .map(|s| s.allocation_count)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let rows: Vec<Vec<f64>> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| vec![i as f64, f64::from(c)])
        .collect();
    print_series(
        "sorted per-probe allocation counts (the Figure 2 curve)",
        &["probe rank", "allocations"],
        &rows,
        20,
    );
}
