//! `bench_serve` — the serving-layer load report.
//!
//! Builds one reputation snapshot from the `quick_test` study, then
//! replays a deterministic seeded query mix — 80% hot-set skew over the
//! listed addresses, 20% uniform u32 scan — through the in-process batch
//! API at shard counts 1, 2 and 4, plus a run with a mid-sweep hot swap
//! to an identically rebuilt snapshot. Reports per-shard-count
//! throughput, latency-histogram summaries (NaN-free by construction),
//! the verdict-stream checksum, and the telemetry plane's windowed view
//! of the run (final logical tick, retained window count, per-window
//! query total, traces sampled), asserting the stream is byte-identical
//! across every configuration and the retained-window query total never
//! exceeds the cumulative tick (the remainder is the evicted fold).
//!
//! Writes `BENCH_serve.json` at the repository root. The report is
//! rendered by hand (no serde round-trip) so the sweep stays runnable on
//! bare toolchains. Flags: `--seed N` (default 2020), `--queries N`
//! (default 120000).

use address_reuse::{reputation_snapshot, GreylistPolicy, Study, StudyConfig};
use ar_obs::Obs;
use ar_serve::{checksum_verdicts, LatencySummary, ReputationServer, ReputationSnapshot};
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH: usize = 2_000;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded query mix: hot-set skew + uniform scan, fixed by the seed
/// and the snapshot's listed-address index alone.
fn query_log(snapshot: &ReputationSnapshot, seed: ar_simnet::rng::Seed, n: usize) -> Vec<u32> {
    let listed = snapshot.listed_addresses().as_raw();
    let hot_len = (listed.len() / 8).clamp(1, 4096).min(listed.len().max(1));
    let mut state = seed.fork("serve-load").0;
    (0..n)
        .map(|_| {
            let w = splitmix(&mut state);
            if w % 10 < 8 && !listed.is_empty() {
                // Hot set: a small skewed slice of the listed addresses.
                listed[(w >> 8) as usize % hot_len]
            } else {
                (w >> 16) as u32
            }
        })
        .collect()
}

fn quantile_json(q: Option<u64>) -> String {
    match q {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

struct Point {
    label: String,
    shards: usize,
    swapped: bool,
    queries: usize,
    secs: f64,
    checksum: u64,
    latency: LatencySummary,
    /// Final logical tick (cumulative query ordinals; equals `queries`
    /// for an in-process replay with nothing shed).
    stats_tick: u64,
    /// Retained windows in the final OP_STATS frame (ring + open).
    stats_windows: usize,
    /// Per-window `queries` deltas summed over the retained windows;
    /// `stats_tick - windowed_queries` is the evicted-fold share.
    windowed_queries: u64,
    traces_sampled: u64,
}

impl Point {
    fn json(&self) -> String {
        let qps = if self.secs > 0.0 {
            self.queries as f64 / self.secs
        } else {
            0.0
        };
        format!(
            "    {{\"label\": \"{}\", \"shards\": {}, \"mid_run_swap\": {}, \"queries\": {}, \
             \"wall_secs\": {:.4}, \"qps\": {:.0}, \"verdict_checksum\": \"{:#018x}\", \
             \"latency\": {{\"batches\": {}, \"mean_micros\": {:.1}, \"p50_micros\": {}, \
             \"p99_micros\": {}}}, \"telemetry\": {{\"tick\": {}, \"windows\": {}, \
             \"windowed_queries\": {}, \"traces_sampled\": {}}}}}",
            self.label,
            self.shards,
            self.swapped,
            self.queries,
            self.secs,
            qps,
            self.checksum,
            self.latency.count,
            self.latency.mean_micros,
            quantile_json(self.latency.p50_micros),
            quantile_json(self.latency.p99_micros),
            self.stats_tick,
            self.stats_windows,
            self.windowed_queries,
            self.traces_sampled,
        )
    }
}

/// Replay `queries` in batches; optionally hot-swap an identical snapshot
/// halfway through.
fn run_point(study: &Study, shards: usize, swap_mid_run: bool, queries: &[u32]) -> Point {
    let server = ReputationServer::new(
        reputation_snapshot(study, 1, GreylistPolicy::default()),
        shards,
        Obs::new(),
    );
    let half = queries.len() / 2;
    let mut swapped = false;
    let start = Instant::now();
    let mut verdicts = Vec::with_capacity(queries.len());
    for (i, batch) in queries.chunks(BATCH).enumerate() {
        if swap_mid_run && !swapped && i * BATCH >= half {
            server.swap(reputation_snapshot(study, 1, GreylistPolicy::default()));
            swapped = true;
        }
        verdicts.extend(server.verdict_batch(batch));
    }
    let secs = start.elapsed().as_secs_f64();
    let report = server.obs().report();
    let latency = LatencySummary::from_report(&report, "serve.batch_micros");
    let stats = server.stats_frame();
    let windowed_queries: u64 = stats.windows.iter().map(|w| w.counter("queries")).sum();
    assert!(
        windowed_queries <= stats.tick,
        "retained windows cannot carry more queries than the tick"
    );
    assert_eq!(
        stats.tick,
        queries.len() as u64,
        "in-process replay sheds nothing, so the tick is the query count"
    );
    Point {
        label: if swap_mid_run {
            format!("{shards}-shard+swap")
        } else {
            format!("{shards}-shard")
        },
        shards,
        swapped: swap_mid_run,
        queries: queries.len(),
        secs,
        checksum: checksum_verdicts(&verdicts),
        latency,
        stats_tick: stats.tick,
        stats_windows: stats.windows.len(),
        windowed_queries,
        traces_sampled: report
            .counters
            .get("serve.traces_sampled")
            .copied()
            .unwrap_or(0),
    }
}

fn main() {
    let mut seed = ar_simnet::rng::Seed(2020);
    let mut total: usize = 120_000;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    fn numeric(argv: &[String], i: usize) -> u64 {
        argv.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{} needs a numeric value", argv[i]);
                std::process::exit(2);
            })
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => seed = ar_simnet::rng::Seed(numeric(&argv, i)),
            "--queries" => total = numeric(&argv, i) as usize,
            "--help" | "-h" => {
                eprintln!("usage: bench_serve [--seed N] [--queries N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    eprintln!(
        "[bench_serve] building snapshot from quick study (seed {})…",
        seed.0
    );
    let study = Study::run(StudyConfig::quick_test(seed));
    let snapshot = reputation_snapshot(&study, 1, GreylistPolicy::default());
    let queries = query_log(&snapshot, seed, total);
    eprintln!(
        "[bench_serve] {} listed addresses, {} postings, {} queries",
        snapshot.listed_addresses().len(),
        snapshot.posting_count(),
        queries.len()
    );

    let mut points = Vec::new();
    for &shards in &SHARD_COUNTS {
        eprintln!("[bench_serve] sweep @ {shards} shard(s)…");
        let point = run_point(&study, shards, false, &queries);
        eprintln!(
            "[bench_serve]   {:.0} qps, latency {}, telemetry tick {} ({} windows, {} traces)",
            point.queries as f64 / point.secs.max(1e-9),
            point.latency.render(),
            point.stats_tick,
            point.stats_windows,
            point.traces_sampled
        );
        points.push(point);
    }
    eprintln!("[bench_serve] sweep @ 2 shards with mid-run hot swap…");
    points.push(run_point(&study, 2, true, &queries));

    let reference = points[0].checksum;
    for point in &points {
        assert_eq!(
            point.checksum, reference,
            "verdict stream diverged at {}",
            point.label
        );
    }
    eprintln!(
        "[bench_serve] verdict checksum {:#018x} identical across {} configurations",
        reference,
        points.len()
    );

    let rendered: Vec<String> = points.iter().map(Point::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"seed\": {},\n  \"config\": \"quick_test snapshot, 80/20 hot/uniform mix, batch {}\",\n  \
         \"snapshot\": {{\"addresses\": {}, \"postings\": {}}},\n  \"queries\": {},\n  \
         \"verdict_checksum\": \"{:#018x}\",\n  \"sweep\": [\n{}\n  ]\n}}\n",
        seed.0,
        BATCH,
        snapshot.listed_addresses().len(),
        snapshot.posting_count(),
        queries.len(),
        reference,
        rendered.join(",\n")
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("[bench_serve] wrote {}", out.display());
}
