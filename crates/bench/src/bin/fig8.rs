//! Figure 8: number of users behind blocklisted NATed addresses.
//!
//! Paper: for 68.5% of NATed blocklisted IPs only two active users were
//! detected; 97.8% have fewer than ten; the maximum is 78 users behind a
//! single address.

use address_reuse::impact;
use ar_bench::{full_study, print_comparison, print_series, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let i = impact(&study);
    let s = i.summary();

    print_comparison(
        "Figure 8 — users behind blocklisted NATed addresses (lower bounds)",
        &[
            row(
                "NATed blocklisted IPs",
                "29.7K (scaled)",
                s.natted_blocklisted,
            ),
            row(
                "IPs with exactly two users",
                "68.5%",
                format!("{:.1}%", 100.0 * s.exactly_two),
            ),
            row(
                "IPs with fewer than ten users",
                "97.8%",
                format!("{:.1}%", 100.0 * s.under_ten),
            ),
            row("maximum users behind one IP", "78", s.max_users),
            row(
                "total affected users (lower bound)",
                "—",
                s.total_affected_users,
            ),
        ],
    );

    let rows: Vec<Vec<f64>> = i
        .series()
        .into_iter()
        .map(|(u, p)| vec![f64::from(u), p])
        .collect();
    print_series(
        "CDF of detected users per NATed blocklisted IP",
        &["users", "cdf"],
        &rows,
        20,
    );

    let cdf: Vec<(f64, f64)> = rows.iter().map(|r| (r[0], r[1])).collect();
    print!(
        "{}",
        ar_bench::ascii_chart("Figure 8 (users behind IP → CDF)", &[("cdf", &cdf)], 60, 14)
    );
}
