//! Figure 9: blocklist types used by operators that faced reuse issues.
//!
//! Paper (Appendix A): among operators who reported accuracy problems from
//! reused addresses, spam and reputation lists are the most common
//! subscriptions — and so carry "the highest consequences of blocking
//! reused addresses".

use ar_bench::{print_comparison, row, Args};
use ar_survey::{figure9, generate_respondents, SurveyTargets, FIG9_USAGE};

fn main() {
    let args = Args::parse();
    let pool = generate_respondents(args.seed, &SurveyTargets::default());
    let bars = figure9(&pool);

    let paper_pct: std::collections::HashMap<_, _> =
        FIG9_USAGE.iter().map(|(t, p)| (*t, 100.0 * p)).collect();

    print_comparison(
        "Figure 9 — blocklist types used by reuse-affected operators",
        &[row(
            "affected operators (CGN or dynamic)",
            "26–34 of 34",
            pool.iter().filter(|r| r.faced_reuse_issues()).count(),
        )],
    );

    println!("{:<14} {:>10} {:>10}", "type", "paper", "measured");
    for bar in bars {
        println!(
            "{:<14} {:>9.0}% {:>9.1}%",
            bar.list_type.name(),
            paper_pct[&bar.list_type],
            bar.pct
        );
    }
}
