//! Figure 1: the crawler's NAT-verification walkthrough, re-enacted.
//!
//! The paper's illustration: the crawler has seen IP1 with ports
//! {2215, 12281} and IP2 with ports {155, 1821}. It pings every port.
//! IP1 answers on one port (the other was stale information); IP2 answers
//! on both, with different node_ids — so IP2 is NATed and IP1 is not.

use ar_bench::Args;
use ar_crawler::{IpClass, IpObservation, Sighting};
use ar_dht::NodeId;
use ar_simnet::time::SimTime;

fn main() {
    let _ = Args::parse();
    let t0 = SimTime(0);
    let id = |n: u8| NodeId([n; 20]);

    // (a) discovery: both IPs surface with two ports each.
    let mut ip1 = IpObservation::default();
    ip1.record(2215, id(1), t0, Sighting::Advertised);
    ip1.record(12281, id(2), t0, Sighting::Advertised);
    let mut ip2 = IpObservation::default();
    ip2.record(155, id(3), t0, Sighting::Advertised);
    ip2.record(1821, id(4), t0, Sighting::Advertised);
    println!("(a) crawler discovers IP1 ports {{2215, 12281}} and IP2 ports {{155, 1821}}");
    assert!(ip1.is_multiport() && ip2.is_multiport());
    println!("    → both become bt_ping verification candidates\n");

    // (b) the crawler sends four bt_pings, one per discovered port.
    println!("(b) bt_ping × 2 → IP1, bt_ping × 2 → IP2");

    // (c) replies: IP1's port 2215 is stale (its single user re-bound to
    //     12281 after a reboot); IP2's two ports answer with two node_ids.
    let t1 = SimTime(3600);
    let ip1_confirmed = ip1.apply_round(t1, &[(12281, id(2))]);
    let ip2_confirmed = ip2.apply_round(t1, &[(155, id(3)), (1821, id(4))]);
    println!("(c) IP1 replies: 1 (port 12281)   IP2 replies: 2 (ports 155 and 1821)\n");

    // (d) verdicts.
    assert!(!ip1_confirmed && ip2_confirmed);
    assert_eq!(ip1.class(), IpClass::MultiPortUnconfirmed);
    assert_eq!(ip2.class(), IpClass::Natted);
    println!(
        "(d) verdicts: IP1 = {:?} (stale port, single user)\n\
         \u{20}            IP2 = {:?} with ≥{} simultaneous users — a reused address",
        ip1.class(),
        ip2.class(),
        ip2.nat.expect("confirmed").max_simultaneous_users
    );

    // Bonus: the degenerate case the rule also rejects — one client that
    // re-bound mid-round, answering on two ports with ONE node_id.
    let mut rebind = IpObservation::default();
    let confirmed = rebind.apply_round(t1, &[(5000, id(9)), (5001, id(9))]);
    assert!(!confirmed);
    println!(
        "\n(rule check) two ports answering with the SAME node_id: not NAT — the rule\n\
         demands distinct node_ids AND distinct ports in one round."
    );
}
