//! Ablation: crawler vantage points (§3.1 future work).
//!
//! "However, we could reduce this burden and have a faster coverage by
//! having the crawler at multiple vantage points in different networks."
//! This experiment runs the same one-week crawl with 1, 2, 4 and 8
//! vantage points and reports coverage and NAT yield.

use ar_bench::Args;
use ar_crawler::{crawl, CrawlConfig};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::{date, TimeWindow};
use ar_simnet::universe::Universe;

fn main() {
    let args = Args::parse();
    let universe = Universe::generate(args.seed, &args.universe_config());
    // Scarcity setup: a 4-hour crawl at 1 msg/s per vantage. Over a full
    // week, even one vantage drains the whole frontier and the curves
    // converge; the vantage effect is about *speed* of coverage, so it is
    // measured while coverage is still probe-rate-bound.
    let week = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10));
    let window = TimeWindow::new(
        week.start,
        week.start + ar_simnet::time::SimDuration::from_hours(1),
    );
    let alloc = AllocationPlan::build(&universe, week, InterestSet::Observable);

    const RATE: u32 = 1;
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "vantages", "get_nodes", "unique IPs", "multiport", "NATed"
    );
    for vantages in [1u32, 2, 4, 8] {
        let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
        let mut config = CrawlConfig::new(window);
        config.rate_per_sec = RATE;
        config.vantage_points = vantages;
        let report = crawl(&mut net, &config);
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>10}",
            vantages,
            report.stats.get_nodes_sent,
            report.stats.unique_ips,
            report.stats.multiport_ips,
            report.stats.natted_ips,
        );
    }
    println!(
        "\nEach vantage adds its own {RATE} msg/s budget: while coverage is probe-rate\n\
         bound (here: the first hour of a crawl), more vantage points buy\n\
         proportionally faster discovery — the §3.1 future-work claim, quantified.\n\
         Given enough time (or the paper's 600 msg/s) a single vantage reaches the\n\
         same coverage; the vantage win is speed and per-network politeness, not\n\
         eventual reach."
    );
}
