//! Ablation: what if the crawler skipped the bt_ping verification round?
//!
//! The paper's §3.1 rule refuses to call an IP NATed until a single ping
//! round gets ≥ 2 live responses with distinct node_ids on distinct ports,
//! precisely because "the BitTorrent user has changed the port number and
//! the crawler encountered stale information" would otherwise be
//! misclassified. This experiment quantifies that choice against ground
//! truth: precision of the discovery-only rule (≥ 2 ports with ≥ 2
//! node_ids ever *seen*) versus the verified rule.

use ar_bench::{full_study, print_comparison, row, Args};
use ar_index::IpSet;

fn main() {
    let args = Args::parse();
    let study = full_study(args);

    let verified: IpSet = study.natted_ips();
    let discovery: IpSet = study
        .crawls
        .iter()
        .flat_map(|c| c.discovery_only_nat_candidates())
        .collect();

    let precision = |set: &IpSet| {
        let tp = set
            .iter()
            .filter(|ip| study.universe.is_truly_natted(*ip))
            .count();
        (tp, set.len(), 100.0 * tp as f64 / set.len().max(1) as f64)
    };
    let (v_tp, v_n, v_p) = precision(&verified);
    let (d_tp, d_n, d_p) = precision(&discovery);

    print_comparison(
        "Ablation — bt_ping verification round",
        &[
            row("verified: flagged IPs", "—", v_n),
            row("verified: true NATs", "—", v_tp),
            row("verified: precision", "≈100%", format!("{v_p:.1}%")),
            row("discovery-only: flagged IPs", "—", d_n),
            row("discovery-only: true NATs", "—", d_tp),
            row("discovery-only: precision", "<100%", format!("{d_p:.1}%")),
            row(
                "false positives avoided by verifying",
                "—",
                (d_n - d_tp).saturating_sub(v_n - v_tp),
            ),
        ],
    );

    println!(
        "The discovery-only rule flags {} IPs the verified rule rejects; {:.1}% of those are\n\
         single-user hosts whose port churned (stale neighbour-table entries), exactly the\n\
         false-positive class the paper's hourly bt_ping rounds exist to filter.",
        d_n.saturating_sub(v_n),
        {
            let extra = discovery.difference(&verified);
            let fp = extra
                .iter()
                .filter(|ip| !study.universe.is_truly_natted(*ip))
                .count();
            100.0 * fp as f64 / extra.len().max(1) as f64
        }
    );
}
