//! Figure 4: the NATed / dynamic detection funnels.
//!
//! Paper: 48.7M BitTorrent IPs → 2M NATed → 29.7K NATed+blocklisted;
//! 53.7K blocklisted addresses in RIPE prefixes → 34.4K (same-AS) →
//! 33.1K (≥8 allocations) → 22.7K (daily changers).

use address_reuse::funnel;
use ar_bench::{full_study, print_comparison, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let f = funnel(&study);
    assert!(f.is_monotone(), "funnel must narrow: {f:?}");

    let k = f64::from(args.scale);
    let scaled = |paper: f64| format!("{:.0}", paper / k);

    print_comparison(
        "Figure 4 — detection funnels (paper values scaled by 1:scale in parentheses)",
        &[
            row(
                "BitTorrent IPs",
                format!("48.7M ({})", scaled(48_700_000.0)),
                f.bittorrent_ips,
            ),
            row(
                "NATed IPs",
                format!("2M ({})", scaled(2_000_000.0)),
                f.natted_ips,
            ),
            row(
                "NATed + blocklisted",
                format!("29.7K ({})", scaled(29_700.0)),
                f.natted_blocklisted,
            ),
            row(
                "blocklisted in RIPE prefixes",
                format!("53.7K ({})", scaled(53_700.0)),
                f.blocklisted_in_ripe,
            ),
            row(
                "… same-AS probes",
                format!("34.4K ({})", scaled(34_400.0)),
                f.blocklisted_same_as,
            ),
            row(
                "… frequent (≥ knee)",
                format!("33.1K ({})", scaled(33_100.0)),
                f.blocklisted_frequent,
            ),
            row(
                "… daily changers (final)",
                format!("22.7K ({})", scaled(22_700.0)),
                f.blocklisted_daily,
            ),
            row(
                "blocklisted addresses total",
                format!("2.2M ({})", scaled(2_200_000.0)),
                f.blocklisted_total,
            ),
            row(
                "crawl scope /24s",
                format!("899K ({})", scaled(899_000.0)),
                f.crawl_scope_prefixes,
            ),
            row(
                "RIPE /24 prefixes",
                format!("90.5K ({})", scaled(90_500.0)),
                f.ripe_prefixes,
            ),
            row("knee", "8", f.knee),
        ],
    );

    println!(
        "funnel ratios (scale-free): NAT/BT {:.2}% (paper 4.1%), blk∩NAT/NAT {:.2}% (paper 1.5%),\n\
         same-AS retention {:.0}% (paper 64%), frequent retention {:.0}% (paper 96%), daily retention {:.0}% (paper 69%)",
        100.0 * f.natted_ips as f64 / f.bittorrent_ips.max(1) as f64,
        100.0 * f.natted_blocklisted as f64 / f.natted_ips.max(1) as f64,
        100.0 * f.blocklisted_same_as as f64 / f.blocklisted_in_ripe.max(1) as f64,
        100.0 * f.blocklisted_frequent as f64 / f.blocklisted_same_as.max(1) as f64,
        100.0 * f.blocklisted_daily as f64 / f.blocklisted_frequent.max(1) as f64,
    );
}
