//! Figure 3: CDF of blocklisted and reused addresses across ASes.
//!
//! Paper: blocklisted addresses sit in ~26K ASes; blocklisted BitTorrent
//! addresses appear in 7.7K (29.6%) of them and blocklisted RIPE-prefix
//! addresses in 1.9K (17.1%); the ten most-blocklisted ASes hold 27.7% of
//! blocklisted addresses; AS4134 alone ~9%.

use address_reuse::coverage;
use ar_bench::{full_study, print_comparison, print_series, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let c = coverage(&study);

    let pct = |n: usize| {
        format!(
            "{:.1}%",
            100.0 * n as f64 / c.ases_blocklisted.max(1) as f64
        )
    };
    print_comparison(
        "Figure 3 — AS coverage of blocklisted and reused addresses",
        &[
            row("ASes with blocklisted addresses", "26K", c.ases_blocklisted),
            row(
                "…with blocklisted BitTorrent addrs",
                "29.6%",
                pct(c.ases_bt),
            ),
            row(
                "…with blocklisted RIPE-prefix addrs",
                "17.1%",
                pct(c.ases_ripe),
            ),
            row(
                "top-10 AS share of blocklisted addrs",
                "27.7%",
                format!("{:.1}%", 100.0 * c.top10_share),
            ),
            row(
                "largest AS share (AS4134 in paper)",
                "9%",
                c.top_as
                    .map(|(asn, share)| format!("{asn}: {:.1}%", share * 100.0))
                    .unwrap_or_default(),
            ),
        ],
    );

    let rows: Vec<Vec<f64>> = (0..c.per_as.len())
        .map(|i| {
            vec![
                (i + 1) as f64,
                c.cdf_blocklisted[i],
                c.cdf_bt[i],
                c.cdf_ripe[i],
            ]
        })
        .collect();
    print_series(
        "CDF across ASes (ascending by blocklisted addresses)",
        &["#ASes", "blocklisted", "bt", "ripe"],
        &rows,
        24,
    );
}
