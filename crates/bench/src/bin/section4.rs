//! §4 headline numbers: the crawl and collection campaign itself.
//!
//! Paper: 83 days of blocklist data (39 + 44); 2.2M blocklisted IPs with
//! ~30K per list on average; crawler restricted to 899K blocklisted /24s;
//! 1.6B bt_pings sent, 779M responses (48.6%); 48.7M unique BitTorrent
//! IPs under 203M node_ids; 2M NATed of which 29.7K blocklisted.

use address_reuse::{funnel, render_summary};
use ar_bench::{full_study, print_comparison, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let stats = study.crawl_totals();
    let f = funnel(&study);

    let mean_list_size: f64 = study
        .blocklists
        .catalog
        .iter()
        .map(|m| study.blocklists.ips_of_list(m.id).len() as f64)
        .sum::<f64>()
        / study.blocklists.catalog.len() as f64;

    let collection_days: u64 = study.config.periods.iter().map(|p| p.days()).sum();

    print_comparison(
        "Section 4 — campaign statistics",
        &[
            row("collection days", 83, collection_days),
            row("blocklists", 151, study.blocklists.catalog.len()),
            row("blocklisted IPs", "2.2M (scaled)", f.blocklisted_total),
            row(
                "mean IPs per list",
                "30K (scaled)",
                format!("{mean_list_size:.0}"),
            ),
            row(
                "crawl scope (/24s)",
                "899K (scaled)",
                f.crawl_scope_prefixes,
            ),
            row("bt_pings sent", "1.6B (scaled)", stats.pings_sent),
            row("get_nodes sent", "—", stats.get_nodes_sent),
            row(
                "response rate",
                "48.6%",
                format!("{:.1}%", 100.0 * stats.response_rate()),
            ),
            row("unique BitTorrent IPs", "48.7M (scaled)", stats.unique_ips),
            row("unique node_ids", "203M (scaled)", stats.unique_node_ids),
            row(
                "node_ids per IP",
                "4.2",
                format!(
                    "{:.1}",
                    stats.unique_node_ids as f64 / stats.unique_ips.max(1) as f64
                ),
            ),
            row("NATed IPs", "2M (scaled)", f.natted_ips),
            row(
                "NATed + blocklisted",
                "29.7K (scaled)",
                f.natted_blocklisted,
            ),
        ],
    );

    println!("{}", render_summary(&study));
}
