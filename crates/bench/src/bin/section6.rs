//! §6 "Understanding blocklists usage" — the operator-facing deliverables:
//! the published reused-address list, greylist policy splits for the most
//! exposed feeds, the maintainer scorecard, and the pre-assignment
//! hygiene check one surveyed operator described.

use address_reuse::{
    assess_pool, render_scorecard, reused_address_list, scorecard, split_feed, GreylistPolicy,
};
use ar_bench::{full_study, Args};
use ar_simnet::time::SimDuration;

fn main() {
    let args = Args::parse();
    let study = full_study(args);

    // 1. The published artifact.
    let reused = reused_address_list(&study);
    println!(
        "published reused-address list: {} entries ({} NAT-evidenced, {} dynamic)\n",
        reused.len(),
        reused
            .iter()
            .filter(|e| matches!(e.evidence, address_reuse::ReuseEvidence::Natted { .. }))
            .count(),
        reused
            .iter()
            .filter(|e| matches!(e.evidence, address_reuse::ReuseEvidence::DynamicPrefix))
            .count(),
    );

    // 2. Greylist splits for the five most reused-exposed feeds.
    let scores = scorecard(&study);
    println!("greylist policy applied to the five riskiest feeds:");
    println!(
        "{:<36} {:>8} {:>8} {:>10}",
        "list", "block", "greylist", "grey-share"
    );
    let policy = GreylistPolicy::default();
    for score in scores.iter().filter(|s| s.size > 0).take(5) {
        let meta = study.blocklists.meta(score.list);
        let split = split_feed(
            &policy,
            meta,
            study.blocklists.ips_of_list(score.list),
            &reused,
        );
        println!(
            "{:<36} {:>8} {:>8} {:>9.1}%",
            meta.name,
            split.block.len(),
            split.greylist.len(),
            100.0 * split.greylist_share()
        );
    }

    // 3. Maintainer scorecard.
    println!("\nmaintainer scorecard (top 10 by overblocking risk):");
    print!("{}", render_scorecard(&scores, 10));

    // 4. Pre-assignment hygiene: would the most-tainted dynamic pool's
    //    addresses be safe to hand to new customers mid-campaign?
    let blocklisted = study.blocklists.all_ips();
    let most_tainted = study.universe.pools.iter().max_by_key(|p| {
        blocklisted
            .iter()
            .filter(|ip| p.range.contains(*ip))
            .count()
    });
    if let Some(pool) = most_tainted {
        // Assess on the pool's worst day across both periods.
        let worst = study
            .config
            .periods
            .iter()
            .flat_map(|p| p.days_iter())
            .map(|day| {
                let assessments = assess_pool(&study.blocklists, pool.range.iter(), day);
                let tainted = assessments.iter().filter(|a| !a.is_clean()).count();
                (tainted, day, assessments)
            })
            .max_by_key(|(tainted, ..)| *tainted)
            .expect("periods are nonempty");
        let (count, day, assessments) = worst;
        println!(
            "\npre-assignment check of pool {} on its worst day ({day}): {count} of {} addresses tainted",
            pool.range,
            assessments.len()
        );
        for a in assessments.iter().filter(|a| !a.is_clean()).take(5) {
            println!(
                "  {}\tlisted by {} feed(s), tainted until {}",
                a.ip,
                a.active_listings.len(),
                a.tainted_until.expect("tainted implies expiry")
            );
        }
        let _ = SimDuration::from_days(1);
    }
}
