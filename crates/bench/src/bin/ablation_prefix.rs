//! Ablation: /24 expansion versus per-address marking (§3.2).
//!
//! The paper conservatively marks the whole covering /24 of every detected
//! dynamic address, acknowledging that real pool boundaries may be larger
//! (under-counting) or smaller (over-counting). The simulator's pools
//! genuinely span half, one, or two /24s, so both errors are measurable.

use ar_atlas::{detect_dynamic, generate_fleet, PipelineConfig};
use ar_bench::{print_comparison, row, Args};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::ATLAS_WINDOW;
use ar_simnet::universe::Universe;
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn main() {
    let args = Args::parse();
    let universe = Universe::generate(args.seed, &args.universe_config());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);

    let expanded = detect_dynamic(&log, &PipelineConfig::default(), |ip| universe.asn_of(ip));
    let exact = detect_dynamic(
        &log,
        &PipelineConfig {
            expand_to_prefix: false,
            ..PipelineConfig::default()
        },
        |ip| universe.asn_of(ip),
    );

    // Ground-truth address set of the pools the final-stage probes live in
    // (a pool counts when a detected address falls inside its range).
    let mut pool_addrs: HashSet<Ipv4Addr> = HashSet::new();
    for pool in &universe.pools {
        if exact
            .dynamic_addresses
            .iter()
            .any(|ip| pool.range.contains(*ip))
        {
            pool_addrs.extend(pool.range.iter());
        }
    }

    let expanded_addrs: HashSet<Ipv4Addr> = expanded
        .dynamic_prefixes
        .iter()
        .flat_map(|p| p.addrs())
        .collect();

    let over = expanded_addrs.difference(&pool_addrs).count();
    let missed = pool_addrs.difference(&expanded_addrs).count();
    let exact_cover = exact.dynamic_addresses.len();

    print_comparison(
        "Ablation — /24 expansion vs per-address marking",
        &[
            row("observed dynamic addresses", "—", exact_cover),
            row("expanded (/24) address cover", "—", expanded_addrs.len()),
            row("true pool addresses (those pools)", "—", pool_addrs.len()),
            row(
                "over-marked (outside any pool)",
                "over-counting risk",
                format!(
                    "{over} ({:.1}%)",
                    100.0 * over as f64 / expanded_addrs.len().max(1) as f64
                ),
            ),
            row(
                "pool addresses still missed",
                "under-counting risk",
                format!(
                    "{missed} ({:.1}%)",
                    100.0 * missed as f64 / pool_addrs.len().max(1) as f64
                ),
            ),
            row(
                "expansion gain over per-address",
                "—",
                format!(
                    "{:.1}x",
                    expanded_addrs.len() as f64 / exact_cover.max(1) as f64
                ),
            ),
        ],
    );

    println!(
        "Per-address marking covers only what probes happened to hold ({exact_cover} addresses);\n\
         /24 expansion multiplies coverage but over-marks half-/24 pools' static neighbours and\n\
         still misses the second /24 of double-width pools — the boundary-estimation dilemma the\n\
         paper discusses in its §3.2 limitations."
    );
}
