//! `bench_faults` — the robustness report: detector quality under
//! correlated failures.
//!
//! Sweeps fault intensity over the `quick_test` study configuration (with
//! the resilient ping-retry policy, so recovery machinery is exercised) and
//! compares each faulted run against a fault-free baseline:
//!
//! * NAT detector: precision against ground truth (stays 1.0 — the §3.1
//!   rule never confirms on noise) and recall of the baseline's detections;
//! * Atlas dynamic prefixes and census dynamic blocks: precision against
//!   ground truth plus baseline recall;
//! * coverage deltas: blocklist listings/addresses, crawl traffic, retries
//!   recovered, Atlas log size;
//! * the executed fault schedule and every `Degraded` phase annotation.
//!
//! Writes `BENCH_faults.json` at the repository root. The report is
//! rendered by hand (no serde round-trip) so the sweep stays runnable on
//! bare toolchains. Flags: `--seed N` (default 2020), `--threads N`.

use address_reuse::{Study, StudyConfig};
use ar_bench::Args;
use ar_crawler::RetryPolicy;
use ar_faults::FaultSpec;
use ar_index::IpSet;
use ar_simnet::ip::Prefix24;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// Minimal JSON string escaping for reason strings.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// What one study run contributes to the comparison.
struct Observed {
    natted: IpSet,
    natted_true: usize,
    dynamic_prefixes: BTreeSet<Prefix24>,
    dynamic_true: usize,
    census_blocks: BTreeSet<Prefix24>,
    census_true: usize,
    listings: usize,
    blocklisted_ips: usize,
    pings_sent: u64,
    replies: u64,
    ping_retries: u64,
    pings_recovered: u64,
    atlas_entries: usize,
    census_suppressed: u64,
    health: Vec<String>,
    plan_json: String,
    events_json: String,
}

fn observe(study: &Study) -> Observed {
    let natted = study.natted_ips();
    let natted_true = natted
        .iter()
        .filter(|ip| study.universe.is_truly_natted(*ip))
        .count();
    let truth_all = study.universe.true_dynamic_prefixes(false);
    let dynamic_prefixes = study.atlas.dynamic_prefixes.clone();
    let dynamic_true = dynamic_prefixes
        .iter()
        .filter(|p| truth_all.contains(p))
        .count();
    let census_blocks: BTreeSet<Prefix24> = study.census.dynamic_blocks.iter().copied().collect();
    let census_true = census_blocks
        .iter()
        .filter(|p| truth_all.contains(p))
        .count();
    let totals = study.crawl_totals();
    let plan_json = match &study.fault_plan {
        None => "null".to_string(),
        Some(plan) => {
            let s = plan.summary();
            format!(
                "{{\"intensity\": {}, \"blackouts\": {}, \"crawler_outages\": {}, \
                 \"feed_missed_days\": {}, \"feed_truncated\": {}, \"feed_corrupt\": {}, \
                 \"atlas_gaps\": {}, \"loss_bursts\": {}}}",
                s.intensity,
                s.blackouts,
                s.crawler_outages,
                s.feed_missed_days,
                s.feed_truncated,
                s.feed_corrupt,
                s.atlas_gaps,
                s.loss_bursts
            )
        }
    };
    // Per-kind event totals from the run's instrumentation, rendered in the
    // report's canonical (sorted) order.
    let events_json = match &study.run_report {
        None => "null".to_string(),
        Some(report) => {
            let pairs: Vec<String> = report
                .event_counts
                .iter()
                .map(|(kind, n)| format!("{}: {n}", json_str(kind)))
                .collect();
            format!("{{{}}}", pairs.join(", "))
        }
    };
    Observed {
        natted_true,
        natted,
        dynamic_true,
        dynamic_prefixes,
        census_true,
        census_blocks,
        listings: study.blocklists.listings.len(),
        blocklisted_ips: study.blocklists.all_ips().len(),
        pings_sent: totals.pings_sent,
        replies: totals.replies_received,
        ping_retries: totals.ping_retries,
        pings_recovered: totals.pings_recovered,
        atlas_entries: study.atlas_log.entries.len(),
        census_suppressed: study.census.blackout_suppressed,
        health: study.health.degraded_reasons(),
        plan_json,
        events_json,
    }
}

fn detector_json(
    detected: usize,
    true_pos: usize,
    baseline_kept: usize,
    baseline: usize,
) -> String {
    format!(
        "{{\"detected\": {detected}, \"true_positives\": {true_pos}, \
         \"precision\": {:.4}, \"recall_vs_baseline\": {:.4}}}",
        ratio(true_pos, detected),
        ratio(baseline_kept, baseline)
    )
}

fn sweep_point_json(intensity: f64, run: &Observed, base: &Observed) -> String {
    let nat_kept = run.natted.intersection_count(&base.natted);
    let dyn_kept = run
        .dynamic_prefixes
        .intersection(&base.dynamic_prefixes)
        .count();
    let census_kept = run.census_blocks.intersection(&base.census_blocks).count();
    let health: Vec<String> = run.health.iter().map(|r| json_str(r)).collect();
    format!(
        "    {{\n      \"intensity\": {intensity},\n      \"plan\": {},\n      \
         \"nat\": {},\n      \"dynamic_prefixes\": {},\n      \"census_blocks\": {},\n      \
         \"coverage\": {{\"listings\": {}, \"listings_delta\": {}, \"blocklisted_ips\": {}, \
         \"ips_delta\": {}, \"crawl_pings_sent\": {}, \"crawl_replies\": {}, \
         \"ping_retries\": {}, \"pings_recovered\": {}, \"atlas_log_entries\": {}, \
         \"census_replies_suppressed\": {}}},\n      \"events\": {},\n      \"health\": [{}]\n    }}",
        run.plan_json,
        detector_json(run.natted.len(), run.natted_true, nat_kept, base.natted.len()),
        detector_json(
            run.dynamic_prefixes.len(),
            run.dynamic_true,
            dyn_kept,
            base.dynamic_prefixes.len()
        ),
        detector_json(run.census_blocks.len(), run.census_true, census_kept, base.census_blocks.len()),
        run.listings,
        run.listings as i64 - base.listings as i64,
        run.blocklisted_ips,
        run.blocklisted_ips as i64 - base.blocklisted_ips as i64,
        run.pings_sent,
        run.replies,
        run.ping_retries,
        run.pings_recovered,
        run.atlas_entries,
        run.census_suppressed,
        run.events_json,
        health.join(", ")
    )
}

fn main() {
    let args = Args::parse();

    let configure = |intensity: Option<f64>| -> StudyConfig {
        let mut config = StudyConfig::quick_test(args.seed);
        config.threads = args.threads;
        config.ping_retry = RetryPolicy::resilient();
        config.faults = intensity.map(|i| FaultSpec::new(args.seed.fork("fault-sweep"), i));
        config
    };

    eprintln!("[bench_faults] baseline (fault-free) run…");
    let baseline = observe(&Study::run(configure(None)));
    eprintln!(
        "[bench_faults] baseline: {} NATed IPs, {} dynamic prefixes, {} listings",
        baseline.natted.len(),
        baseline.dynamic_prefixes.len(),
        baseline.listings
    );

    let mut points = Vec::new();
    for &intensity in &INTENSITIES {
        eprintln!("[bench_faults] sweep @ intensity {intensity}…");
        let study = Study::run(configure(Some(intensity)));
        let run = observe(&study);
        if intensity == 0.0 {
            assert_eq!(
                run.natted.len(),
                baseline.natted.len(),
                "zero-intensity sweep point must match the fault-free baseline"
            );
            assert!(run.health.is_empty(), "zero intensity must run clean");
        }
        eprintln!(
            "[bench_faults]   {} NATed, {} dynamic, {} listings, {} degraded phase(s)",
            run.natted.len(),
            run.dynamic_prefixes.len(),
            run.listings,
            run.health.len()
        );
        points.push(sweep_point_json(intensity, &run, &baseline));
    }

    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"seed\": {},\n  \"config\": \"quick_test + RetryPolicy::resilient\",\n  \
         \"baseline\": {{\"natted_ips\": {}, \"dynamic_prefixes\": {}, \"census_blocks\": {}, \
         \"listings\": {}, \"blocklisted_ips\": {}, \"crawl_pings_sent\": {}, \"atlas_log_entries\": {}}},\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        args.seed.0,
        baseline.natted.len(),
        baseline.dynamic_prefixes.len(),
        baseline.census_blocks.len(),
        baseline.listings,
        baseline.blocklisted_ips,
        baseline.pings_sent,
        baseline.atlas_entries,
        points.join(",\n")
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_faults.json");
    std::fs::write(&out, &json).expect("write BENCH_faults.json");
    println!("{json}");
    eprintln!("[bench_faults] wrote {}", out.display());
}
