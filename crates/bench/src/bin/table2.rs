//! Table 2: the 151-blocklist dataset by maintainer.

use ar_bench::{print_comparison, row, Args};
use ar_blocklists::{build_catalog, MAINTAINERS};

fn main() {
    let _ = Args::parse();
    let catalog = build_catalog();

    print_comparison(
        "Table 2 — blocklist dataset",
        &[
            row("blocklists monitored", 151, catalog.len()),
            // The paper's table prints 41 maintainer rows; DShield and
            // Spamhaus are added from the §4 text to reach its 151 total.
            row("maintainers", "41 (+2)", MAINTAINERS.len()),
            row(
                "survey-used lists (*)",
                27,
                catalog.iter().filter(|l| l.survey_used).count(),
            ),
        ],
    );

    println!("{:<22} {:>8}  survey-used", "maintainer", "#lists");
    let mut rows: Vec<(&str, usize, bool)> = MAINTAINERS
        .iter()
        .map(|(m, _, starred)| {
            (
                *m,
                catalog.iter().filter(|l| l.maintainer == *m).count(),
                *starred,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (maintainer, count, starred) in rows {
        println!(
            "{:<22} {:>8}  {}",
            maintainer,
            count,
            if starred { "*" } else { "" }
        );
    }
    println!("{:<22} {:>8}", "Total", catalog.len());
}
