//! Run the full campaign once and regenerate every exhibit, writing the
//! output both to stdout and to `results/<name>.txt`. This is the binary
//! behind EXPERIMENTS.md's reference run.

use address_reuse::{
    census_per_list, coverage, durations, dynamic_per_list, funnel, impact, natted_per_list,
    render_reused_list, render_summary, reused_address_list,
};
use ar_bench::{full_study, Args};
use ar_survey::{figure9, generate_respondents, render_table1, table1, SurveyTargets};
use std::fmt::Write as _;
use std::fs;

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    fs::create_dir_all("results").expect("create results dir");

    let save = |name: &str, body: String| {
        println!("==================== {name} ====================");
        println!("{body}");
        fs::write(format!("results/{name}.txt"), body).expect("write result");
    };
    let save_json = |name: &str, value: serde_json::Value| {
        fs::write(
            format!("results/{name}.json"),
            serde_json::to_string_pretty(&value).expect("serialise"),
        )
        .expect("write json result");
    };

    // Section 4 summary.
    save("section4", render_summary(&study));

    // Figure 3.
    let c = coverage(&study);
    save(
        "fig3",
        format!(
            "ASes with blocklisted addrs: {}\nwith BT overlap: {} ({:.1}%)\nwith RIPE overlap: {} ({:.1}%)\ntop-10 share: {:.1}%\ntop AS: {:?}\n",
            c.ases_blocklisted,
            c.ases_bt,
            100.0 * c.ases_bt as f64 / c.ases_blocklisted.max(1) as f64,
            c.ases_ripe,
            100.0 * c.ases_ripe as f64 / c.ases_blocklisted.max(1) as f64,
            100.0 * c.top10_share,
            c.top_as,
        ),
    );

    // Figure 4.
    let f = funnel(&study);
    save_json("fig4", serde_json::to_value(&f).expect("funnel serialises"));
    save("fig4", format!("{f:#?}\nmonotone: {}\n", f.is_monotone()));

    // Figures 5/6.
    let nat = natted_per_list(&study);
    let dyn_ = dynamic_per_list(&study);
    let census = census_per_list(&study);
    let mut s56 = String::new();
    let _ = writeln!(
        s56,
        "NATed:   {} listings / {} addrs / {} lists empty / top10 {:.1}%",
        nat.listings,
        nat.addresses,
        nat.lists_with_none,
        100.0 * nat.top10_share
    );
    let _ = writeln!(
        s56,
        "dynamic: {} listings / {} addrs / {} lists empty / top10 {:.1}%",
        dyn_.listings,
        dyn_.addresses,
        dyn_.lists_with_none,
        100.0 * dyn_.top10_share
    );
    let _ = writeln!(
        s56,
        "census:  {} listings / {} addrs",
        census.listings, census.addresses
    );
    let _ = writeln!(s56, "\ntop-10 NATed lists:");
    for (list, count) in nat.counts.iter().take(10) {
        let _ = writeln!(s56, "  {:>6}  {}", count, study.blocklists.meta(*list).name);
    }
    let _ = writeln!(s56, "top-10 dynamic lists:");
    for (list, count) in dyn_.counts.iter().take(10) {
        let _ = writeln!(s56, "  {:>6}  {}", count, study.blocklists.meta(*list).name);
    }
    save("fig5_fig6", s56);

    // Figure 7.
    let d = durations(&study);
    let ds = d.summary();
    save_json(
        "fig7",
        serde_json::to_value(ds).expect("summary serialises"),
    );
    let mut s7 = format!("{ds:#?}\n\ndays  all  natted  dynamic\n");
    for (x, a, n, dy) in d.series(44) {
        let _ = writeln!(s7, "{x:>4} {a:.3} {n:.3} {dy:.3}");
    }
    save("fig7", s7);

    // Figure 8.
    let i = impact(&study);
    let is = i.summary();
    save_json(
        "fig8",
        serde_json::to_value(is).expect("summary serialises"),
    );
    let mut s8 = format!("{is:#?}\n\nusers  cdf\n");
    for (u, p) in i.series() {
        let _ = writeln!(s8, "{u:>5} {p:.3}");
    }
    save("fig8", s8);

    // Survey exhibits.
    let pool = generate_respondents(args.seed, &SurveyTargets::default());
    save("table1", render_table1(&table1(&pool)));
    let mut s9 = String::new();
    for bar in figure9(&pool) {
        let _ = writeln!(s9, "{:<12} {:>6.1}%", bar.list_type.name(), bar.pct);
    }
    save("fig9", s9);

    save_json(
        "universe",
        serde_json::to_value(study.universe.summary()).expect("inventory serialises"),
    );

    // The §6 public artifact.
    let list = reused_address_list(&study);
    save("reused_addresses", render_reused_list(&list));

    eprintln!("[all_figures] wrote results/*.txt");
}
