//! Figure 5: NATed addresses in blocklists.
//!
//! Paper: 61 lists (40%) list no NATed address; 45.1K listings covering
//! 29.7K NATed IPs; 501 NATed addresses per list on average; the top-10
//! lists carry 65.9% of the listings, led by spam/reputation lists
//! (Stopforumspam, Nixspam, Alienvault at 3.3K–8.6K each).

use address_reuse::natted_per_list;
use ar_bench::{full_study, print_comparison, print_series, row, Args};

fn main() {
    let args = Args::parse();
    let study = full_study(args);
    let n = natted_per_list(&study);

    let lists = study.blocklists.catalog.len();
    print_comparison(
        "Figure 5 — NATed addresses in blocklists",
        &[
            row(
                "lists with no NATed address",
                "61 (40%)",
                format!(
                    "{} ({:.0}%)",
                    n.lists_with_none,
                    100.0 * n.lists_with_none as f64 / lists as f64
                ),
            ),
            row("NATed listings", "45.1K", n.listings),
            row("distinct NATed addresses", "29.7K", n.addresses),
            row(
                "mean NATed addresses per list",
                "501",
                format!("{:.0}", n.mean_per_list),
            ),
            row(
                "top-10 lists' share of listings",
                "65.9%",
                format!("{:.1}%", 100.0 * n.top10_share),
            ),
            row(
                "same lists' share of ALL blocklisted",
                "53.4%",
                format!("{:.1}%", 100.0 * n.top10_share_of_all_blocklisted),
            ),
        ],
    );

    println!("-- top 10 lists by NATed addresses --");
    for (list, count) in n.counts.iter().take(10) {
        println!("{:>6}  {}", count, study.blocklists.meta(*list).name);
    }
    println!();

    let rows: Vec<Vec<f64>> = n
        .counts
        .iter()
        .enumerate()
        .filter(|(_, (_, c))| *c > 0)
        .map(|(i, (_, c))| vec![(i + 1) as f64, f64::from(*c)])
        .collect();
    print_series(
        "per-list NATed-address counts (sorted; the Figure 5 bars)",
        &["list rank", "NATed addrs"],
        &rows,
        20,
    );
}
