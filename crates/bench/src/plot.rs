//! Terminal plotting: braille-free ASCII line charts for the figure
//! binaries, so the CDF shapes are visible without leaving the shell.

/// Render one or more series as an ASCII chart.
///
/// Each series is a list of `(x, y)` points sorted by `x`; series are drawn
/// with distinct glyphs over a shared scale. Returns the chart as a string
/// (rows top-down, y decreasing).
pub fn ascii_chart(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to draw");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];

    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return format!("{title}\n(empty chart)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &points {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in pts.iter() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::with_capacity((width + 12) * (height + 4));
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_label = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>8.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8}  {:<w$.2}{:>r$.2}\n",
        "",
        x_min,
        x_max,
        w = width / 2,
        r = width - width / 2,
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", glyphs[i % glyphs.len()]))
        .collect();
    out.push_str(&format!("{:>10}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_all_series_with_distinct_glyphs() {
        let a: Vec<(f64, f64)> = (0..20)
            .map(|i| (f64::from(i), f64::from(i) / 19.0))
            .collect();
        let b: Vec<(f64, f64)> = (0..20)
            .map(|i| (f64::from(i), 1.0 - f64::from(i) / 19.0))
            .collect();
        let chart = ascii_chart("test", &[("up", &a), ("down", &b)], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
        assert_eq!(chart.lines().count(), 1 + 10 + 2 + 1);
    }

    #[test]
    fn handles_degenerate_input() {
        assert!(ascii_chart("t", &[("e", &[])], 20, 5).contains("empty"));
        // Single point / constant series must not divide by zero.
        let one = [(3.0, 7.0)];
        let chart = ascii_chart("t", &[("p", &one)], 20, 5);
        assert!(chart.contains('*'));
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (f64::from(i), 5.0)).collect();
        let chart = ascii_chart("t", &[("f", &flat)], 20, 5);
        assert!(chart.contains('*'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let pts = [
            (0.0, 0.0),
            (f64::NAN, 1.0),
            (2.0, f64::INFINITY),
            (3.0, 1.0),
        ];
        let chart = ascii_chart("t", &[("s", &pts)], 20, 5);
        assert!(chart.contains('*'));
    }
}
