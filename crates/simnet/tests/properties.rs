//! Property tests for the simnet primitives.

use ar_simnet::ip::{IpRange, Prefix24};
use ar_simnet::stats::Ecdf;
use ar_simnet::time::{date, SimDuration, SimTime, TimeWindow};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Prefix24::of is idempotent and consistent with contains().
    #[test]
    fn prefix_of_contains(ip_raw in any::<u32>()) {
        let ip = Ipv4Addr::from(ip_raw);
        let p = Prefix24::of(ip);
        prop_assert!(p.contains(ip));
        prop_assert_eq!(Prefix24::of(p.network()), p);
        prop_assert_eq!(p.addrs().count(), 256);
        // Every address of the prefix maps back to it.
        prop_assert!(p.contains(p.host(ip_raw as u8)));
    }

    /// Prefix parse/display round-trips.
    #[test]
    fn prefix_display_parse(raw in 0u32..=0x00ff_ffff) {
        let p = Prefix24::from_raw(raw);
        let s = p.to_string();
        let back: Prefix24 = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// IpRange length/contains/nth agree.
    #[test]
    fn range_invariants(a in any::<u32>(), b in any::<u32>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Keep ranges small enough to iterate.
        let hi = lo.saturating_add((hi - lo).min(2048));
        let r = IpRange::new(Ipv4Addr::from(lo), Ipv4Addr::from(hi));
        prop_assert_eq!(r.len(), u64::from(hi - lo) + 1);
        prop_assert!(r.contains(r.first));
        prop_assert!(r.contains(r.last));
        prop_assert_eq!(r.nth(0), r.first);
        prop_assert_eq!(r.nth(r.len() - 1), r.last);
        let prefix_count = r.prefixes().count() as u64;
        prop_assert!(prefix_count >= r.len() / 256);
        prop_assert!(prefix_count <= r.len() / 256 + 1);
    }

    /// ECDF is a valid CDF: monotone, in [0,1], hits 1 at the max.
    #[test]
    fn ecdf_is_a_cdf(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::from_samples(xs.clone());
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut prev = 0.0;
        for w in xs.windows(2) {
            let v = e.at(w[0]);
            prop_assert!(v >= prev && v <= 1.0);
            prev = v;
        }
        prop_assert!((e.at(xs[xs.len() - 1]) - 1.0).abs() < 1e-12);
        prop_assert_eq!(e.quantile(1.0), xs[xs.len() - 1]);
        prop_assert!(e.quantile(0.0) >= xs[0]);
    }

    /// Quantiles are order-consistent.
    #[test]
    fn ecdf_quantiles_monotone(xs in proptest::collection::vec(0f64..1e3, 2..100), q1 in 0.01f64..1.0, q2 in 0.01f64..1.0) {
        let e = Ecdf::from_samples(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi));
    }

    /// Calendar dates round-trip through Display.
    #[test]
    fn date_display_roundtrip(y in 1970i64..2200, m in 1u64..=12, d in 1u64..=28) {
        let t = date(y, m, d);
        let s = t.to_string();
        let expect = format!("{y:04}-{m:02}-{d:02}T00:00:00Z");
        prop_assert_eq!(s, expect);
    }

    /// TimeWindow day iteration matches duration arithmetic.
    #[test]
    fn window_days(start_day in 0u64..40_000, len_days in 1u64..400) {
        let w = TimeWindow::new(
            SimTime(start_day * 86_400),
            SimTime((start_day + len_days) * 86_400),
        );
        prop_assert_eq!(w.days(), len_days);
        prop_assert_eq!(w.days_iter().count() as u64, len_days);
        prop_assert_eq!(w.duration(), SimDuration::from_days(len_days));
    }
}
