//! # ar-simnet — synthetic Internet ground truth
//!
//! The paper this workspace reproduces ("Quantifying the Impact of
//! Blocklisting in the Age of Address Reuse", IMC 2020) measures the *live*
//! Internet: the BitTorrent DHT, RIPE Atlas connection logs, and 151 public
//! blocklist feeds. None of those inputs exist in an offline reproduction,
//! so this crate builds the thing they all observe: a seeded, deterministic
//! model of an IPv4 Internet with
//!
//! * autonomous systems owning `/24` prefixes,
//! * per-prefix address-allocation policies — static assignment, NAT
//!   gateways shared by several simultaneous users, and dynamic (DHCP-style)
//!   pools that reallocate addresses over time,
//! * a host population with behaviours (runs BitTorrent, hosts a RIPE Atlas
//!   probe, emits malicious traffic),
//! * a virtual clock covering the paper's real measurement windows.
//!
//! Downstream crates *measure* this universe exactly the way the paper
//! measured the Internet — by crawling the DHT (`ar-dht`/`ar-crawler`),
//! reading probe connection logs (`ar-atlas`), collecting blocklist
//! snapshots (`ar-blocklists`) and running an ICMP census (`ar-census`).
//! The ground truth is only consulted afterwards, to validate detector
//! precision and recall — a validation the original study could not do.
//!
//! Everything is derived from a single [`Seed`], so the same seed and
//! [`UniverseConfig`] always produce the same universe.
//!
//! ```
//! use ar_simnet::{Seed, UniverseConfig, Universe};
//!
//! let config = UniverseConfig::tiny();
//! let universe = Universe::generate(Seed(42), &config);
//! assert!(universe.num_hosts() > 0);
//! // Deterministic: same seed, same universe.
//! let again = Universe::generate(Seed(42), &config);
//! assert_eq!(universe.num_hosts(), again.num_hosts());
//! ```

pub mod alloc;
pub mod asn;
pub mod config;
pub mod fnv;
pub mod hosts;
pub mod ip;
pub mod malice;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod universe;

pub use asn::{AsProfile, AsTier, Asn, Region};
pub use config::{Scale, UniverseConfig};
pub use fnv::{fnv1a64, FnvHasher};
pub use hosts::{Host, HostBehavior, HostId};
pub use ip::{IpRange, Prefix24};
pub use malice::{MaliceCategory, MaliceEvent};
pub use rng::{fork_rng, Seed};
pub use time::{SimDuration, SimTime, TimeWindow, ATLAS_WINDOW, PERIOD_1, PERIOD_2};
pub use universe::{AddressPolicy, PrefixRecord, Universe, UniverseSummary};
