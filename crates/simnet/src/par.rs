//! Deterministic fork-join helpers for the study orchestrator.
//!
//! The whole workspace is seeded: every unit of work (a crawl period, a
//! blocklist feed, an Atlas probe) derives its randomness from its own
//! [`Seed`](crate::Seed) fork, so units are independent and can run on any
//! thread. The helpers here exploit that while keeping the core invariant —
//! results are always assembled in *input order*, so output is byte-identical
//! whether the work ran on one thread or sixteen.
//!
//! Thread count resolution order: explicit config value, then the
//! `AR_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "AR_THREADS";

/// The default worker-thread count: `AR_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (at least 1).
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    host_threads()
}

/// The machine's real available parallelism (at least 1), ignoring
/// `AR_THREADS`. Benchmarks record this so a requested thread count can be
/// judged against what the host can actually run concurrently.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve an optional configured thread count against [`max_threads`].
pub fn resolve(configured: Option<usize>) -> usize {
    match configured {
        Some(n) if n > 0 => n,
        _ => max_threads(),
    }
}

/// Map `f` over `items` on up to `threads` scoped worker threads and return
/// the results **in input order**.
///
/// Work is handed out through an atomic cursor, so threads that finish a
/// cheap item immediately pick up the next one (no static chunking
/// imbalance). Each result is tagged with its input index and the collected
/// vector is re-sorted by that index before returning; combined with
/// per-item seeding this makes the output independent of the schedule.
///
/// With `threads <= 1` or fewer than two items the map runs inline on the
/// caller's thread — the serial and parallel paths share `f` itself, so
/// equivalence is by construction.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(&items[idx])));
                }
                local
            }));
        }
        for handle in handles {
            // A worker panic propagates: unwrap re-raises it on the caller.
            tagged.extend(handle.join().unwrap());
        }
    });
    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[200], 200 * 200);
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        // Early items are much slower than late ones; the atomic cursor lets
        // idle workers steal ahead, but output order must not change.
        let items: Vec<u32> = (0..64).collect();
        let out = par_map(4, &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        let expected: Vec<u32> = (1..=64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x * 2), vec![14]);
    }

    #[test]
    fn resolve_prefers_explicit_config() {
        assert_eq!(resolve(Some(3)), 3);
        assert!(resolve(None) >= 1);
        assert!(resolve(Some(0)) >= 1);
    }
}
