//! IPv4 address utilities: `/24` prefixes and contiguous ranges.
//!
//! The paper reasons about address reuse at two granularities: individual
//! IPv4 addresses (NAT detection) and covering `/24` prefixes (dynamic
//! detection, §3.2: "a conservative approach is to consider the entire /24
//! prefix as dynamic"). [`Prefix24`] is the workspace-wide currency for the
//! latter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A `/24` IPv4 prefix, stored as the upper 24 bits of the network address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The `/24` prefix covering `ip`.
    pub fn of(ip: Ipv4Addr) -> Self {
        Prefix24(u32::from(ip) >> 8)
    }

    /// Construct from the raw 24-bit value (must fit in 24 bits).
    pub fn from_raw(raw: u32) -> Self {
        assert!(raw <= 0x00ff_ffff, "prefix value exceeds 24 bits");
        Prefix24(raw)
    }

    pub fn raw(self) -> u32 {
        self.0
    }

    /// The network (`.0`) address of the prefix.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The host address with the given final octet.
    pub fn host(self, last_octet: u8) -> Ipv4Addr {
        Ipv4Addr::from((self.0 << 8) | u32::from(last_octet))
    }

    /// Does this prefix cover `ip`?
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        u32::from(ip) >> 8 == self.0
    }

    /// All 256 addresses of the prefix.
    pub fn addrs(self) -> impl Iterator<Item = Ipv4Addr> {
        let base = self.0 << 8;
        (0u32..256).map(move |i| Ipv4Addr::from(base | i))
    }

    /// The next consecutive `/24`.
    pub fn next(self) -> Prefix24 {
        Prefix24((self.0 + 1) & 0x00ff_ffff)
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

impl FromStr for Prefix24 {
    type Err = String;
    /// Parse `"a.b.c.0/24"` or a bare network address `"a.b.c.0"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let ip_part = s.strip_suffix("/24").unwrap_or(s);
        let ip: Ipv4Addr = ip_part
            .parse()
            .map_err(|e| format!("bad prefix {s:?}: {e}"))?;
        Ok(Prefix24::of(ip))
    }
}

/// A contiguous, inclusive range of IPv4 addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpRange {
    pub first: Ipv4Addr,
    pub last: Ipv4Addr,
}

impl IpRange {
    pub fn new(first: Ipv4Addr, last: Ipv4Addr) -> Self {
        assert!(u32::from(first) <= u32::from(last), "inverted IP range");
        IpRange { first, last }
    }

    /// Range covering exactly one `/24`.
    pub fn of_prefix(p: Prefix24) -> Self {
        IpRange::new(p.host(0), p.host(255))
    }

    pub fn len(&self) -> u64 {
        u64::from(u32::from(self.last)) - u64::from(u32::from(self.first)) + 1
    }

    pub fn is_empty(&self) -> bool {
        false // by construction a range holds at least one address
    }

    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let x = u32::from(ip);
        x >= u32::from(self.first) && x <= u32::from(self.last)
    }

    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> {
        let first = u32::from(self.first);
        let last = u32::from(self.last);
        (first..=last).map(Ipv4Addr::from)
    }

    /// The `idx`-th address of the range (panics when out of bounds).
    pub fn nth(&self, idx: u64) -> Ipv4Addr {
        assert!(idx < self.len(), "index beyond range");
        Ipv4Addr::from(u32::from(self.first) + idx as u32)
    }

    /// `/24` prefixes intersecting the range.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix24> {
        let first = u32::from(self.first) >> 8;
        let last = u32::from(self.last) >> 8;
        (first..=last).map(Prefix24)
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_of_and_contains() {
        let ip: Ipv4Addr = "198.51.100.77".parse().unwrap();
        let p = Prefix24::of(ip);
        assert_eq!(p.network(), "198.51.100.0".parse::<Ipv4Addr>().unwrap());
        assert!(p.contains(ip));
        assert!(!p.contains("198.51.101.1".parse().unwrap()));
        assert_eq!(p.to_string(), "198.51.100.0/24");
    }

    #[test]
    fn prefix_parse() {
        let p: Prefix24 = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p, Prefix24::of("10.1.2.99".parse().unwrap()));
        let q: Prefix24 = "10.1.2.0".parse().unwrap();
        assert_eq!(p, q);
        assert!("not-an-ip/24".parse::<Prefix24>().is_err());
    }

    #[test]
    fn prefix_addrs_covers_256() {
        let p = Prefix24::from_raw(0x0a_0102);
        let v: Vec<_> = p.addrs().collect();
        assert_eq!(v.len(), 256);
        assert_eq!(v[0], p.network());
        assert_eq!(v[255], p.host(255));
    }

    #[test]
    fn range_basics() {
        let r = IpRange::new("10.0.0.250".parse().unwrap(), "10.0.1.5".parse().unwrap());
        assert_eq!(r.len(), 12);
        assert!(r.contains("10.0.1.0".parse().unwrap()));
        assert!(!r.contains("10.0.1.6".parse().unwrap()));
        let prefixes: Vec<_> = r.prefixes().collect();
        assert_eq!(prefixes.len(), 2);
        assert_eq!(r.nth(0), r.first);
        assert_eq!(r.nth(11), r.last);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn range_rejects_inversion() {
        IpRange::new("10.0.0.2".parse().unwrap(), "10.0.0.1".parse().unwrap());
    }
}
