//! Virtual time.
//!
//! The simulation runs on a virtual clock measured in whole seconds since
//! the Unix epoch. Using real calendar timestamps (rather than "tick 0")
//! lets the substrates reuse the paper's actual measurement windows and
//! makes log output directly comparable to the dates quoted in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time: seconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of virtual time in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

pub const SECOND: SimDuration = SimDuration(1);
pub const MINUTE: SimDuration = SimDuration(60);
pub const HOUR: SimDuration = SimDuration(3600);
pub const DAY: SimDuration = SimDuration(86_400);

impl SimDuration {
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60)
    }
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }
    pub const fn as_secs(self) -> u64 {
        self.0
    }
    /// Whole days, rounding down.
    pub const fn as_days(self) -> u64 {
        self.0 / 86_400
    }
    /// Days as a float (used by duration CDFs).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl SimTime {
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s)
    }
    pub const fn as_secs(self) -> u64 {
        self.0
    }
    pub const fn saturating_sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
    /// Subtract a duration, clamping at the epoch.
    pub const fn saturating_sub_duration(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
    /// Truncate to midnight (UTC) of the containing day.
    pub const fn floor_day(self) -> SimTime {
        SimTime(self.0 - self.0 % 86_400)
    }
    /// The calendar day index since the epoch.
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400
    }
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = civil_from_days((self.0 / 86_400) as i64);
        let rem = self.0 % 86_400;
        write!(
            f,
            "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 86_400 == 0 && self.0 > 0 {
            write!(f, "{}d", self.0 / 86_400)
        } else if self.0 % 3600 == 0 && self.0 > 0 {
            write!(f, "{}h", self.0 / 3600)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

/// Construct a [`SimTime`] at midnight UTC of a calendar date.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm, valid for all dates in
/// the simulation range.
pub const fn date(year: i64, month: u64, day: u64) -> SimTime {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let m = month;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + day - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    let days = era * 146_097 + doe as i64 - 719_468;
    SimTime(days as u64 * 86_400)
}

/// Inverse of `days_from_civil`: day count since epoch to (y, m, d).
const fn civil_from_days(z: i64) -> (i64, u64, u64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// A half-open interval of virtual time `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    pub start: SimTime,
    pub end: SimTime,
}

impl TimeWindow {
    pub const fn new(start: SimTime, end: SimTime) -> Self {
        TimeWindow { start, end }
    }
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
    pub fn days(&self) -> u64 {
        self.duration().as_days()
    }
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
    /// Iterate over the midnight timestamps of each day in the window.
    pub fn days_iter(&self) -> impl Iterator<Item = SimTime> {
        let start = self.start.floor_day();
        let end = self.end;
        (0..)
            .map(move |i| start + SimDuration::from_days(i))
            .take_while(move |t| *t < end)
    }
    /// Clamp a time into the window (inclusive of `end` for interval ends).
    pub fn clamp(&self, t: SimTime) -> SimTime {
        t.max(self.start).min(self.end)
    }
    /// Intersection with another window; `None` if disjoint.
    pub fn intersect(&self, other: &TimeWindow) -> Option<TimeWindow> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(TimeWindow { start, end })
    }
}

/// First blocklist measurement period: 03 Aug 2019 – 10 Sep 2019 (39 days,
/// paper §4).
pub const PERIOD_1: TimeWindow = TimeWindow::new(date(2019, 8, 3), date(2019, 9, 11));

/// Second blocklist measurement period: 29 Mar 2020 – 11 May 2020 (44 days,
/// paper §4).
pub const PERIOD_2: TimeWindow = TimeWindow::new(date(2020, 3, 29), date(2020, 5, 12));

/// RIPE Atlas connection-log window: 1 Jan 2019 – 11 May 2020 (~16 months,
/// paper §3.2).
pub const ATLAS_WINDOW: TimeWindow = TimeWindow::new(date(2019, 1, 1), date(2020, 5, 12));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        assert_eq!(date(1970, 1, 1), SimTime(0));
        assert_eq!(date(1970, 1, 2), SimTime(86_400));
    }

    #[test]
    fn display_formats_calendar_dates() {
        assert_eq!(date(2019, 8, 3).to_string(), "2019-08-03T00:00:00Z");
        assert_eq!(date(2020, 3, 29).to_string(), "2020-03-29T00:00:00Z");
        assert_eq!(
            (date(2020, 2, 29) + SimDuration::from_secs(3_661)).to_string(),
            "2020-02-29T01:01:01Z"
        );
    }

    #[test]
    fn paper_window_lengths() {
        // Paper: 39-day and 44-day collection periods, 83 days total.
        assert_eq!(PERIOD_1.days(), 39);
        assert_eq!(PERIOD_2.days(), 44);
        assert_eq!(PERIOD_1.days() + PERIOD_2.days(), 83);
        // ~16 months of Atlas logs.
        assert!(ATLAS_WINDOW.days() > 480 && ATLAS_WINDOW.days() < 510);
    }

    #[test]
    fn window_day_iteration() {
        let w = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 6));
        let days: Vec<_> = w.days_iter().collect();
        assert_eq!(days.len(), 3);
        assert_eq!(days[0], date(2019, 8, 3));
        assert_eq!(days[2], date(2019, 8, 5));
    }

    #[test]
    fn window_intersect() {
        let a = TimeWindow::new(SimTime(0), SimTime(100));
        let b = TimeWindow::new(SimTime(50), SimTime(150));
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.start, SimTime(50));
        assert_eq!(c.end, SimTime(100));
        let d = TimeWindow::new(SimTime(200), SimTime(300));
        assert!(a.intersect(&d).is_none());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(1000);
        assert_eq!(t + SimDuration(50), SimTime(1050));
        assert_eq!(SimTime(1050) - t, SimDuration(50));
        assert_eq!(SimDuration::from_days(2).as_days(), 2);
        assert_eq!(SimDuration::from_hours(25).as_days(), 1);
        assert_eq!(t.floor_day(), SimTime(0));
    }
}
