//! Autonomous-system model.
//!
//! Figure 3 of the paper is a CDF over the ~26K ASes that contain
//! blocklisted addresses, and §4 highlights heavy concentration (the top 10
//! ASes hold 27.7% of blocklisted addresses; AS4134 alone holds 9%). To get
//! those shapes the universe needs ASes of very different sizes and
//! characters, which [`AsTier`] captures.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Continent an AS mostly operates in. RIPE Atlas probes are
/// "predominantly present only in Europe and North America" (paper §3.2
/// limitations), so a region modulates probe density — which is exactly
/// why the most-blocklisted ASes (the paper's AS4134, China Telecom) sit
/// in poorly-probed space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    Europe,
    NorthAmerica,
    Asia,
    SouthAmerica,
    Africa,
    Oceania,
}

impl Region {
    pub const ALL: [Region; 6] = [
        Region::Europe,
        Region::NorthAmerica,
        Region::Asia,
        Region::SouthAmerica,
        Region::Africa,
        Region::Oceania,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Region::Europe => "europe",
            Region::NorthAmerica => "north-america",
            Region::Asia => "asia",
            Region::SouthAmerica => "south-america",
            Region::Africa => "africa",
            Region::Oceania => "oceania",
        }
    }

    /// RIPE Atlas probe-density multiplier (Europe/NA heavy).
    pub fn probe_density(self) -> f64 {
        match self {
            Region::Europe => 1.7,
            Region::NorthAmerica => 1.1,
            Region::Asia => 0.22,
            Region::SouthAmerica => 0.15,
            Region::Africa => 0.08,
            Region::Oceania => 0.45,
        }
    }
}

/// Broad class of an AS; drives its size and address-policy mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsTier {
    /// National backbone / incumbent (the AS4134 shape): very many
    /// prefixes, heavy NAT and dynamic deployment, high abuse volume.
    Backbone,
    /// Large consumer ISP: many prefixes, mostly dynamic pools and NATs.
    ConsumerIsp,
    /// Regional / smaller ISP.
    RegionalIsp,
    /// Hosting / cloud provider: static addressing, high abuse density,
    /// low BitTorrent usage, almost no RIPE probes.
    Hosting,
    /// Enterprise or campus network: static, low abuse, moderate probes.
    Enterprise,
}

impl AsTier {
    pub const ALL: [AsTier; 5] = [
        AsTier::Backbone,
        AsTier::ConsumerIsp,
        AsTier::RegionalIsp,
        AsTier::Hosting,
        AsTier::Enterprise,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AsTier::Backbone => "backbone",
            AsTier::ConsumerIsp => "consumer-isp",
            AsTier::RegionalIsp => "regional-isp",
            AsTier::Hosting => "hosting",
            AsTier::Enterprise => "enterprise",
        }
    }
}

/// Per-AS generation profile. All probabilities are per-address or
/// per-prefix as documented on each field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsProfile {
    pub asn: Asn,
    pub tier: AsTier,
    /// Operating region (reassigned by the universe generator).
    pub region: Region,
    /// Number of /24 prefixes the AS announces.
    pub num_prefixes: u32,
    /// Fraction of prefixes that are dynamic pools.
    pub dynamic_share: f64,
    /// Of dynamic pools, fraction with fast (≤ 1 day) reallocation.
    pub fast_dynamic_share: f64,
    /// Fraction of prefixes that are NAT blocks.
    pub nat_share: f64,
    /// Occupancy of static prefixes (fraction of addresses with a host).
    pub static_occupancy: f64,
    /// Probability a host in this AS runs BitTorrent.
    pub bittorrent_rate: f64,
    /// Probability a (non-NAT-user) subscriber hosts a RIPE Atlas probe.
    ///
    /// RIPE Atlas deployment is strongly biased to Europe/North America
    /// (paper §3.2 limitations); tiers encode that bias via this rate.
    pub probe_rate: f64,
    /// Probability a host is a malicious actor during a measurement period.
    pub malice_rate: f64,
}

impl AsProfile {
    /// Baseline profile for a tier; the universe generator jitters these.
    pub fn baseline(asn: Asn, tier: AsTier) -> Self {
        match tier {
            AsTier::Backbone => AsProfile {
                asn,
                tier,
                region: Region::Europe,
                num_prefixes: 400,
                dynamic_share: 0.35,
                fast_dynamic_share: 0.28,
                nat_share: 0.30,
                static_occupancy: 0.25,
                bittorrent_rate: 0.10,
                probe_rate: 0.002,
                malice_rate: 0.015,
            },
            AsTier::ConsumerIsp => AsProfile {
                asn,
                tier,
                region: Region::Europe,
                num_prefixes: 80,
                dynamic_share: 0.45,
                fast_dynamic_share: 0.22,
                nat_share: 0.20,
                static_occupancy: 0.30,
                bittorrent_rate: 0.12,
                probe_rate: 0.012,
                malice_rate: 0.006,
            },
            AsTier::RegionalIsp => AsProfile {
                asn,
                tier,
                region: Region::Europe,
                num_prefixes: 16,
                dynamic_share: 0.40,
                fast_dynamic_share: 0.18,
                nat_share: 0.12,
                static_occupancy: 0.35,
                bittorrent_rate: 0.08,
                probe_rate: 0.010,
                malice_rate: 0.004,
            },
            AsTier::Hosting => AsProfile {
                asn,
                tier,
                region: Region::Europe,
                num_prefixes: 24,
                dynamic_share: 0.0,
                fast_dynamic_share: 0.0,
                nat_share: 0.02,
                static_occupancy: 0.55,
                bittorrent_rate: 0.01,
                probe_rate: 0.001,
                malice_rate: 0.030,
            },
            AsTier::Enterprise => AsProfile {
                asn,
                tier,
                region: Region::Europe,
                num_prefixes: 4,
                dynamic_share: 0.05,
                fast_dynamic_share: 0.08,
                nat_share: 0.10,
                static_occupancy: 0.40,
                bittorrent_rate: 0.02,
                probe_rate: 0.006,
                malice_rate: 0.001,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_unique() {
        let mut names: Vec<_> = AsTier::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), AsTier::ALL.len());
    }

    #[test]
    fn backbone_is_biggest() {
        let b = AsProfile::baseline(Asn(1), AsTier::Backbone);
        for t in AsTier::ALL {
            let p = AsProfile::baseline(Asn(2), t);
            assert!(b.num_prefixes >= p.num_prefixes);
        }
    }

    #[test]
    fn hosting_has_no_dynamic_pools() {
        let h = AsProfile::baseline(Asn(3), AsTier::Hosting);
        assert_eq!(h.dynamic_share, 0.0);
        assert!(h.malice_rate > AsProfile::baseline(Asn(4), AsTier::Enterprise).malice_rate);
    }

    #[test]
    fn display() {
        assert_eq!(Asn(4134).to_string(), "AS4134");
    }
}
