//! Distribution helpers used across the simulation.
//!
//! Kept dependency-free (plain `rand`) because `rand_distr` is not in the
//! approved crate set; the handful of samplers we need are small enough to
//! implement and test directly.

use rand::Rng;

/// Sample from a bounded Zipf-like distribution over ranks `1..=n` with
/// exponent `s` (via inverse-CDF on precomputed weights for small `n`, or
/// rejection for large `n`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `1..=n` (1 is the heaviest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }

    pub fn support(&self) -> usize {
        self.cumulative.len()
    }
}

/// Sample an exponentially distributed duration with the given mean.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // Inverse CDF; clamp u away from 0 to avoid inf.
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Sample a log-normally distributed value with the given median and sigma
/// (of the underlying normal).
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * sample_standard_normal(rng)).exp()
}

/// Box–Muller standard normal.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a geometric count (number of Bernoulli(p) failures before the
/// first success), truncated at `max`.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64, max: u32) -> u32 {
    debug_assert!(p > 0.0 && p <= 1.0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let k = (u.ln() / (1.0 - p).max(1e-12).ln()).floor();
    (k as u32).min(max)
}

/// Weighted choice over indices: returns `i` with probability
/// `weights[i] / sum(weights)`.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index on zero weights");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// An empirical cumulative distribution over f64 samples.
///
/// Used throughout the analysis crates to produce the paper's CDF figures.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X <= x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 <= q <= 1), nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Evaluate the CDF at each point in `xs` (for figure series output).
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.at(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > 2_000, "rank 1 should be heavy: {}", counts[1]);
    }

    #[test]
    fn zipf_stays_in_support() {
        let z = Zipf::new(5, 0.8);
        let mut rng = rng();
        for _ in 0..1_000 {
            let k = z.sample(&mut rng);
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = rng();
        let n = 50_000;
        let mean = 7.0;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut rng, mean)).sum();
        let avg = total / n as f64;
        assert!((avg - mean).abs() < 0.2, "avg={avg}");
    }

    #[test]
    fn lognormal_median_converges() {
        let mut rng = rng();
        let mut samples: Vec<f64> = (0..20_001)
            .map(|_| sample_lognormal(&mut rng, 5.0, 0.6))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 5.0).abs() < 0.3, "median={median}");
    }

    #[test]
    fn geometric_truncates() {
        let mut rng = rng();
        for _ in 0..1_000 {
            assert!(sample_geometric(&mut rng, 0.01, 10) <= 10);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng();
        let w = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut rng, &w), 1);
        }
    }

    #[test]
    fn ecdf_quantiles_and_at() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(2.0), 0.5);
        assert_eq!(e.at(10.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_empty_is_safe() {
        let e = Ecdf::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.at(1.0), 0.0);
    }
}
