//! Dynamic-address allocation timelines.
//!
//! For every dynamic pool, this module simulates which subscriber holds
//! which address over a time window, with the invariant that *no two
//! observable subscribers hold the same address at the same time* (a
//! violation would manufacture phantom NAT signals in the DHT crawl).
//!
//! Simulating every subscriber of every pool over 16 months is wasteful:
//! only *observable* subscribers — those that run BitTorrent, host a RIPE
//! Atlas probe, or emit malicious traffic — ever surface in a measurement
//! substrate. [`AllocationPlan::build`] therefore simulates exactly that
//! subset (selectable), which keeps the event count tractable at experiment
//! scale while preserving every cross-dataset correlation the paper
//! measures (a blocklisted dynamic address that also appears in the DHT
//! crawl is the *same* address in both substrates because both read this
//! plan).

use crate::hosts::{Attachment, Host, HostId};
use crate::rng::Seed;
use crate::stats;
use crate::time::{SimTime, TimeWindow};
use crate::universe::{DynamicPool, Universe};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::Ipv4Addr;

/// The address-hold history of one subscriber over a window.
///
/// Entry `i` means: from `events[i].0` until `events[i+1].0` (or the window
/// end) the subscriber held `events[i].1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscriberTimeline {
    pub window: TimeWindow,
    events: Vec<(SimTime, Ipv4Addr)>,
}

impl SubscriberTimeline {
    /// Address held at time `t` (None outside the window).
    pub fn addr_at(&self, t: SimTime) -> Option<Ipv4Addr> {
        if !self.window.contains(t) || self.events.is_empty() {
            return None;
        }
        let idx = self.events.partition_point(|(start, _)| *start <= t);
        if idx == 0 {
            None
        } else {
            Some(self.events[idx - 1].1)
        }
    }

    /// Number of *distinct consecutive* allocations (≥ 1).
    pub fn allocation_count(&self) -> usize {
        self.events.len()
    }

    /// Number of address *changes* (allocations − 1).
    pub fn change_count(&self) -> usize {
        self.events.len().saturating_sub(1)
    }

    /// All (start, address) allocation events.
    pub fn events(&self) -> &[(SimTime, Ipv4Addr)] {
        &self.events
    }

    /// Mean time between consecutive address changes, if ≥ 1 change.
    pub fn mean_interchange(&self) -> Option<crate::time::SimDuration> {
        if self.events.len() < 2 {
            return None;
        }
        let total = self.events.last().expect("nonempty").0 - self.events[0].0;
        Some(crate::time::SimDuration(
            total.as_secs() / (self.events.len() as u64 - 1),
        ))
    }
}

/// Which subscribers to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestSet {
    /// BitTorrent + malicious + probe hosts: everything the measurement
    /// substrates can observe during a blocklist collection period.
    Observable,
    /// Probe hosts only (enough for the 16-month Atlas window).
    ProbesOnly,
    /// Every subscriber (tiny universes / exhaustive tests only).
    All,
}

impl InterestSet {
    fn selects(self, host: &Host) -> bool {
        match self {
            InterestSet::All => true,
            InterestSet::ProbesOnly => host.behavior.ripe_probe,
            InterestSet::Observable => {
                host.behavior.bittorrent
                    || host.behavior.ripe_probe
                    || host.behavior.malice.is_some()
            }
        }
    }
}

/// Allocation timelines for all pools over one window.
#[derive(Debug, Clone)]
pub struct AllocationPlan {
    pub window: TimeWindow,
    timelines: HashMap<HostId, SubscriberTimeline>,
    /// Per-address holding intervals `(start, end, holder)`, sorted by start.
    holders: HashMap<Ipv4Addr, Vec<(SimTime, SimTime, HostId)>>,
}

impl AllocationPlan {
    /// Simulate all dynamic pools of `universe` over `window` for the given
    /// interest set. Deterministic in `universe.seed`, the window, and the
    /// interest set.
    pub fn build(universe: &Universe, window: TimeWindow, interest: InterestSet) -> Self {
        let mut timelines = HashMap::new();
        let mut holders: HashMap<Ipv4Addr, Vec<(SimTime, SimTime, HostId)>> = HashMap::new();

        for pool in &universe.pools {
            let interesting: Vec<HostId> = pool
                .subscribers
                .iter()
                .copied()
                .filter(|id| interest.selects(universe.host(*id)))
                .collect();
            if interesting.is_empty() {
                continue;
            }
            let seed = universe.seed.fork_idx(
                "alloc",
                u64::from(pool.id.0) << 32 | window.start.as_secs() >> 16,
            );
            simulate_pool(pool, &interesting, window, seed, &mut timelines);
        }

        for (host, tl) in &timelines {
            let evs = tl.events();
            for (i, (start, ip)) in evs.iter().enumerate() {
                let end = evs.get(i + 1).map_or(window.end, |(next, _)| *next);
                holders.entry(*ip).or_default().push((*start, end, *host));
            }
        }
        for intervals in holders.values_mut() {
            intervals.sort_by_key(|(start, _, _)| *start);
        }

        AllocationPlan {
            window,
            timelines,
            holders,
        }
    }

    /// The public address of `host` at time `t`.
    ///
    /// Statically attached hosts return their fixed address; NAT users their
    /// gateway's public address; dynamic subscribers their current
    /// allocation (None when the host was not simulated or `t` is outside
    /// the window).
    pub fn public_ip(&self, universe: &Universe, host: HostId, t: SimTime) -> Option<Ipv4Addr> {
        match universe.host(host).attachment {
            Attachment::Static { ip } => Some(ip),
            Attachment::NatUser { nat, .. } => Some(universe.nat(nat).ip),
            Attachment::DynamicSub { .. } => self.timelines.get(&host)?.addr_at(t),
        }
    }

    /// Timeline of a simulated dynamic subscriber.
    pub fn timeline(&self, host: HostId) -> Option<&SubscriberTimeline> {
        self.timelines.get(&host)
    }

    /// The simulated holder of a dynamic address at `t`, if any.
    pub fn holder_of(&self, ip: Ipv4Addr, t: SimTime) -> Option<HostId> {
        let intervals = self.holders.get(&ip)?;
        let idx = intervals.partition_point(|(start, _, _)| *start <= t);
        if idx == 0 {
            return None;
        }
        let (_, end, host) = intervals[idx - 1];
        (t < end).then_some(host)
    }

    /// Number of simulated subscribers.
    pub fn num_timelines(&self) -> usize {
        self.timelines.len()
    }

    /// Iterate all simulated (host, timeline) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&HostId, &SubscriberTimeline)> {
        self.timelines.iter()
    }
}

/// Simulate one pool: interesting subscribers draw addresses from the pool
/// range, never colliding with each other.
fn simulate_pool(
    pool: &DynamicPool,
    interesting: &[HostId],
    window: TimeWindow,
    seed: Seed,
    out: &mut HashMap<HostId, SubscriberTimeline>,
) {
    let mut rng = seed.rng();
    let pool_size = pool.range.len();
    // Guard against degenerate configs where interest ≥ pool size.
    let usable = interesting.len().min(pool_size as usize);

    let mut occupied: HashSet<Ipv4Addr> = HashSet::with_capacity(usable);
    let mut events: HashMap<HostId, Vec<(SimTime, Ipv4Addr)>> = HashMap::new();
    // Per-subscriber hold-time factor: some subscribers reconnect more often.
    let mut factor: HashMap<HostId, f64> = HashMap::new();

    let pick_free = |rng: &mut rand::rngs::SmallRng, occupied: &HashSet<Ipv4Addr>| {
        for _ in 0..64 {
            let ip = pool.range.nth(rng.gen_range(0..pool_size));
            if !occupied.contains(&ip) {
                return Some(ip);
            }
        }
        None
    };

    // Binary heap keyed on Reverse(next-change time).
    let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, HostId)>> = BinaryHeap::new();

    for &host in interesting.iter().take(usable) {
        let ip = match pick_free(&mut rng, &occupied) {
            Some(ip) => ip,
            None => continue,
        };
        occupied.insert(ip);
        events.entry(host).or_default().push((window.start, ip));
        let f = stats::sample_lognormal(&mut rng, 1.0, 0.25).clamp(0.4, 2.5);
        factor.insert(host, f);
        let hold = next_hold(&mut rng, pool, f);
        heap.push(std::cmp::Reverse((window.start + hold, host)));
    }

    while let Some(std::cmp::Reverse((t, host))) = heap.pop() {
        if t >= window.end {
            continue;
        }
        let evs = events.get_mut(&host).expect("scheduled host has events");
        let current = evs.last().expect("scheduled host has an allocation").1;
        occupied.remove(&current);
        let next_ip = pick_free(&mut rng, &occupied).unwrap_or(current);
        occupied.insert(next_ip);
        if next_ip != current {
            evs.push((t, next_ip));
        }
        let hold = next_hold(&mut rng, pool, factor[&host]);
        heap.push(std::cmp::Reverse((t + hold, host)));
    }

    for (host, evs) in events {
        out.insert(
            host,
            SubscriberTimeline {
                window,
                events: evs,
            },
        );
    }
}

fn next_hold(
    rng: &mut rand::rngs::SmallRng,
    pool: &DynamicPool,
    factor: f64,
) -> crate::time::SimDuration {
    let mean = pool.mean_hold.as_secs() as f64 * factor;
    // Leases shorter than 15 minutes would be unrealistic even for
    // aggressive reallocation.
    let secs = stats::sample_exponential(rng, mean).max(900.0);
    crate::time::SimDuration((secs) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;
    use crate::time::{SimDuration, PERIOD_2};

    fn plan() -> (Universe, AllocationPlan) {
        let u = Universe::generate(Seed(21), &UniverseConfig::tiny());
        let p = AllocationPlan::build(&u, PERIOD_2, InterestSet::Observable);
        (u, p)
    }

    #[test]
    fn deterministic() {
        let (u, p1) = plan();
        let p2 = AllocationPlan::build(&u, PERIOD_2, InterestSet::Observable);
        assert_eq!(p1.num_timelines(), p2.num_timelines());
        for (host, tl) in p1.iter() {
            let other = p2.timeline(*host).expect("same hosts simulated");
            assert_eq!(tl.events(), other.events());
        }
    }

    #[test]
    fn addresses_stay_in_pool_range() {
        let (u, p) = plan();
        assert!(p.num_timelines() > 0, "tiny universe has observable subs");
        for (host, tl) in p.iter() {
            let pool_id = match u.host(*host).attachment {
                Attachment::DynamicSub { pool, .. } => pool,
                other => panic!("timeline for non-subscriber {other:?}"),
            };
            let pool = u.pool(pool_id);
            for (_, ip) in tl.events() {
                assert!(pool.range.contains(*ip), "{ip} outside {}", pool.range);
            }
        }
    }

    #[test]
    fn no_simultaneous_sharing_within_pool() {
        let (u, p) = plan();
        // Sample hourly: no address may have two holders.
        let mut t = PERIOD_2.start;
        let mut by_addr: HashMap<Ipv4Addr, HostId> = HashMap::new();
        while t < PERIOD_2.end {
            by_addr.clear();
            for (host, tl) in p.iter() {
                if let Some(ip) = tl.addr_at(t) {
                    if let Some(prev) = by_addr.insert(ip, *host) {
                        panic!("{ip} held by both {prev:?} and {host:?} at {t}");
                    }
                }
            }
            t += SimDuration::from_hours(6);
            let _ = &u;
        }
    }

    #[test]
    fn fast_pools_change_more_than_slow() {
        let (u, p) = plan();
        let mut fast_changes = Vec::new();
        let mut slow_changes = Vec::new();
        for (host, tl) in p.iter() {
            if let Attachment::DynamicSub { pool, .. } = u.host(*host).attachment {
                if u.pool(pool).fast {
                    fast_changes.push(tl.change_count());
                } else {
                    slow_changes.push(tl.change_count());
                }
            }
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&fast_changes) > mean(&slow_changes) + 1.0,
            "fast {:.1} vs slow {:.1}",
            mean(&fast_changes),
            mean(&slow_changes)
        );
        // A fast pool reallocating ~daily across 44 days should show tens of
        // changes for typical subscribers.
        assert!(mean(&fast_changes) > 10.0);
    }

    #[test]
    fn holder_of_agrees_with_timeline() {
        let (_u, p) = plan();
        let mid = PERIOD_2.start + SimDuration::from_days(20);
        let mut checked = 0;
        for (host, tl) in p.iter() {
            if let Some(ip) = tl.addr_at(mid) {
                assert_eq!(p.holder_of(ip, mid), Some(*host));
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn public_ip_for_all_attachment_kinds() {
        let (u, p) = plan();
        let mid = PERIOD_2.start + SimDuration::from_days(1);
        let mut seen_static = false;
        let mut seen_nat = false;
        for host in &u.hosts {
            match host.attachment {
                Attachment::Static { ip } => {
                    assert_eq!(p.public_ip(&u, host.id, mid), Some(ip));
                    seen_static = true;
                }
                Attachment::NatUser { nat, .. } => {
                    assert_eq!(p.public_ip(&u, host.id, mid), Some(u.nat(nat).ip));
                    seen_nat = true;
                }
                Attachment::DynamicSub { .. } => {}
            }
            if seen_static && seen_nat {
                break;
            }
        }
        assert!(seen_static && seen_nat);
    }

    #[test]
    fn probes_only_is_smaller() {
        let u = Universe::generate(Seed(22), &UniverseConfig::tiny());
        let all = AllocationPlan::build(&u, PERIOD_2, InterestSet::Observable);
        let probes = AllocationPlan::build(&u, PERIOD_2, InterestSet::ProbesOnly);
        assert!(probes.num_timelines() <= all.num_timelines());
    }
}
