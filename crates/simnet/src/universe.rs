//! Universe generation: the single ground-truth model every measurement
//! substrate observes.
//!
//! [`Universe::generate`] deterministically expands a [`Seed`] and
//! [`UniverseConfig`] into autonomous systems, `/24` prefixes with
//! address-allocation policies, NAT gateways with user populations, dynamic
//! pools with subscribers, and a behavioural host population.
//!
//! Nothing here is visible to the detection pipelines: they see only what
//! the substrates (DHT traffic, Atlas logs, blocklist snapshots, ICMP
//! responses) derive from this model. The ground-truth query methods
//! ([`Universe::true_nat_user_count`], [`Universe::true_dynamic_prefixes`],
//! …) exist for *validation* of detector output.

use crate::asn::{AsProfile, AsTier, Asn, Region};
use crate::config::UniverseConfig;
use crate::hosts::{Attachment, Host, HostBehavior, HostId, NatId, PoolId};
use crate::ip::{IpRange, Prefix24};
use crate::malice::{MaliceCategory, MalicePersistence, MaliceProfile};
use crate::rng::Seed;
use crate::stats;
use crate::time::{SimDuration, PERIOD_1, PERIOD_2};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Address-allocation policy of one `/24` prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressPolicy {
    /// Addresses statically assigned to individual hosts.
    Static,
    /// Addresses are public sides of NAT gateways.
    NatBlock,
    /// Addresses belong to the given dynamic pool.
    DynamicPool(PoolId),
    /// Announced but unpopulated.
    Unused,
}

/// One announced `/24` and its policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrefixRecord {
    pub prefix: Prefix24,
    pub asn: Asn,
    pub policy: AddressPolicy,
}

/// A NAT gateway: one public address shared by `users` at the same time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NatGateway {
    pub id: NatId,
    pub ip: Ipv4Addr,
    pub asn: Asn,
    /// Hosts behind the gateway (ground truth).
    pub users: Vec<HostId>,
    /// Carrier-grade (large) vs. home/office NAT.
    pub carrier_grade: bool,
}

/// A dynamic (DHCP-style) address pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicPool {
    pub id: PoolId,
    pub asn: Asn,
    /// The contiguous address range reallocation draws from. May cover half
    /// a /24, exactly one, or two — operators' pool boundaries do not align
    /// with the /24 assumption the paper's §3.2 expansion makes, which the
    /// `ablation_prefix` experiment quantifies.
    pub range: IpRange,
    /// Subscriber hosts (ground truth).
    pub subscribers: Vec<HostId>,
    /// Mean address-hold time before reallocation.
    pub mean_hold: SimDuration,
    /// True when reallocation is on average within one day — the class the
    /// paper's final pipeline stage targets.
    pub fast: bool,
}

impl DynamicPool {
    /// `/24`s intersecting the pool's range.
    pub fn prefixes(&self) -> Vec<Prefix24> {
        self.range.prefixes().collect()
    }
}

/// The generated ground-truth Internet.
#[derive(Debug, Clone)]
pub struct Universe {
    pub seed: Seed,
    pub config: UniverseConfig,
    pub ases: Vec<AsProfile>,
    pub prefixes: Vec<PrefixRecord>,
    pub nat_gateways: Vec<NatGateway>,
    pub pools: Vec<DynamicPool>,
    pub hosts: Vec<Host>,
    /// ASes that filter ICMP at their edge (census confounder).
    pub icmp_filtered_ases: HashSet<Asn>,
    prefix_index: HashMap<Prefix24, usize>,
    nat_index: HashMap<Ipv4Addr, NatId>,
}

impl Universe {
    /// Deterministically generate a universe.
    pub fn generate(seed: Seed, config: &UniverseConfig) -> Universe {
        let mut gen = Generator::new(seed, config.clone());
        gen.generate_ases();
        gen.generate_prefixes_and_populations();
        gen.assign_probes();
        gen.finish()
    }

    // ----- topology queries ------------------------------------------------

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    pub fn nat(&self, id: NatId) -> &NatGateway {
        &self.nat_gateways[id.0 as usize]
    }

    pub fn pool(&self, id: PoolId) -> &DynamicPool {
        &self.pools[id.0 as usize]
    }

    pub fn prefix_record(&self, prefix: Prefix24) -> Option<&PrefixRecord> {
        self.prefix_index.get(&prefix).map(|&i| &self.prefixes[i])
    }

    /// The AS announcing `ip`, if announced at all.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.prefix_record(Prefix24::of(ip)).map(|r| r.asn)
    }

    /// Address policy covering `ip`.
    pub fn policy_of(&self, ip: Ipv4Addr) -> Option<AddressPolicy> {
        let rec = self.prefix_record(Prefix24::of(ip))?;
        match rec.policy {
            // A pool may cover only part of its /24.
            AddressPolicy::DynamicPool(id) => {
                if self.pool(id).range.contains(ip) {
                    Some(AddressPolicy::DynamicPool(id))
                } else {
                    Some(AddressPolicy::Static)
                }
            }
            p => Some(p),
        }
    }

    /// The NAT gateway owning `ip` as its public address, if any.
    pub fn nat_at(&self, ip: Ipv4Addr) -> Option<&NatGateway> {
        self.nat_index.get(&ip).map(|id| self.nat(*id))
    }

    // ----- ground-truth queries (validation only) ---------------------------

    /// Ground truth: number of users simultaneously sharing `ip` via NAT
    /// (`None` when `ip` is not a NAT public address).
    pub fn true_nat_user_count(&self, ip: Ipv4Addr) -> Option<usize> {
        self.nat_at(ip).map(|g| g.users.len())
    }

    /// Ground truth: `ip` is reused by ≥ 2 simultaneous users.
    pub fn is_truly_natted(&self, ip: Ipv4Addr) -> bool {
        self.true_nat_user_count(ip).is_some_and(|n| n >= 2)
    }

    /// Ground truth: `/24`s covered by a dynamic pool. With `fast_only`,
    /// restrict to pools with mean reallocation ≤ 1 day (the population the
    /// paper's pipeline targets).
    pub fn true_dynamic_prefixes(&self, fast_only: bool) -> HashSet<Prefix24> {
        self.pools
            .iter()
            .filter(|p| !fast_only || p.fast)
            .flat_map(|p| p.prefixes())
            .collect()
    }

    /// Ground truth: is `ip` inside a dynamic pool's range?
    pub fn is_truly_dynamic(&self, ip: Ipv4Addr) -> bool {
        matches!(self.policy_of(ip), Some(AddressPolicy::DynamicPool(_)))
    }

    /// Hosts that run BitTorrent.
    pub fn bittorrent_hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(|h| h.behavior.bittorrent)
    }

    /// Hosts carrying a RIPE Atlas probe.
    pub fn probe_hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(|h| h.behavior.ripe_probe)
    }

    /// Hosts with a malice profile.
    pub fn malicious_hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(|h| h.behavior.malice.is_some())
    }

    /// The static address of a host, when statically attached.
    pub fn static_ip(&self, host: &Host) -> Option<Ipv4Addr> {
        match host.attachment {
            Attachment::Static { ip } => Some(ip),
            _ => None,
        }
    }

    /// Serialisable inventory of the generated ground truth (for reports
    /// and the CLI's JSON output).
    pub fn summary(&self) -> UniverseSummary {
        let mut per_tier = std::collections::BTreeMap::new();
        for a in &self.ases {
            *per_tier.entry(a.tier.name()).or_insert(0u32) += 1;
        }
        UniverseSummary {
            ases: self.ases.len(),
            prefixes: self.prefixes.len(),
            hosts: self.hosts.len(),
            nat_gateways: self.nat_gateways.len(),
            multi_user_nats: self
                .nat_gateways
                .iter()
                .filter(|g| g.users.len() >= 2)
                .count(),
            pools: self.pools.len(),
            fast_pools: self.pools.iter().filter(|p| p.fast).count(),
            bittorrent_hosts: self.bittorrent_hosts().count(),
            probe_hosts: self.probe_hosts().count(),
            malicious_hosts: self.malicious_hosts().count(),
            icmp_filtered_ases: self.icmp_filtered_ases.len(),
            per_tier,
        }
    }
}

/// Ground-truth inventory counts (see [`Universe::summary`]).
#[derive(Debug, Clone, Serialize)]
pub struct UniverseSummary {
    pub ases: usize,
    pub prefixes: usize,
    pub hosts: usize,
    pub nat_gateways: usize,
    /// Gateways with >= 2 users — truly reused addresses.
    pub multi_user_nats: usize,
    pub pools: usize,
    pub fast_pools: usize,
    pub bittorrent_hosts: usize,
    pub probe_hosts: usize,
    pub malicious_hosts: usize,
    pub icmp_filtered_ases: usize,
    pub per_tier: std::collections::BTreeMap<&'static str, u32>,
}

// ---------------------------------------------------------------------------

struct Generator {
    seed: Seed,
    config: UniverseConfig,
    ases: Vec<AsProfile>,
    prefixes: Vec<PrefixRecord>,
    nat_gateways: Vec<NatGateway>,
    pools: Vec<DynamicPool>,
    hosts: Vec<Host>,
    icmp_filtered_ases: HashSet<Asn>,
    prefix_cursor: u32,
}

impl Generator {
    fn new(seed: Seed, config: UniverseConfig) -> Self {
        Generator {
            seed,
            config,
            ases: Vec::new(),
            prefixes: Vec::new(),
            nat_gateways: Vec::new(),
            pools: Vec::new(),
            hosts: Vec::new(),
            icmp_filtered_ases: HashSet::new(),
            // Start allocating at 1.0.0.0/24; everything below is reserved.
            prefix_cursor: 0x0001_0000,
        }
    }

    fn generate_ases(&mut self) {
        let mut rng = self.seed.fork("ases").rng();
        for i in 0..self.config.num_ases {
            let tier = self.config.tier_for_index(i);
            // Allocate ASNs with gaps, like the real registry.
            let asn = Asn(100 + i * 7 + rng.gen_range(0..5));
            let mut p = AsProfile::baseline(asn, tier);
            // Region: backbones skew to Asia (the AS4134 shape: the most
            // blocklisted space sits where probes are scarce); the rest
            // follow a global mix.
            p.region = if tier == AsTier::Backbone {
                if rng.gen_bool(0.6) {
                    Region::Asia
                } else {
                    Region::ALL[rng.gen_range(0..Region::ALL.len())]
                }
            } else {
                let weights = [0.28, 0.22, 0.26, 0.10, 0.08, 0.06];
                Region::ALL[crate::stats::weighted_index(&mut rng, &weights)]
            };
            // Jitter sizes ±40% and apply the global prefix scale, keeping
            // at least one prefix.
            let jitter = rng.gen_range(0.6..1.4);
            p.num_prefixes = ((f64::from(p.num_prefixes) * jitter * self.config.prefix_scale)
                .round() as u32)
                .max(1);
            p.dynamic_share = (p.dynamic_share * rng.gen_range(0.7..1.3)).min(0.9);
            p.nat_share = (p.nat_share * rng.gen_range(0.7..1.3)).min(0.9);
            p.bittorrent_rate = (p.bittorrent_rate * rng.gen_range(0.5..1.8)).min(0.95);
            p.malice_rate = (p.malice_rate * rng.gen_range(0.3..2.5)).min(0.5);
            if rng.gen_bool(self.config.icmp_filtered_as_rate) {
                self.icmp_filtered_ases.insert(asn);
            }
            self.ases.push(p);
        }
    }

    fn next_prefix(&mut self) -> Prefix24 {
        let p = Prefix24::from_raw(self.prefix_cursor);
        self.prefix_cursor += 1;
        // Leave a gap between ASes occasionally? Not needed; contiguous is
        // fine for the model.
        p
    }

    fn generate_prefixes_and_populations(&mut self) {
        let profiles = self.ases.clone();
        for profile in &profiles {
            let mut rng = self
                .seed
                .fork_idx("as-body", u64::from(profile.asn.0))
                .rng();
            let mut remaining = profile.num_prefixes;
            while remaining > 0 {
                let roll: f64 = rng.gen();
                if roll < profile.dynamic_share {
                    let span = self.choose_pool_span(&mut rng, remaining);
                    self.build_dynamic_pool(profile, &mut rng, span);
                    remaining -= span.prefix_count;
                } else if roll < profile.dynamic_share + profile.nat_share {
                    self.build_nat_prefix(profile, &mut rng);
                    remaining -= 1;
                } else {
                    self.build_static_prefix(profile, &mut rng);
                    remaining -= 1;
                }
            }
        }
    }

    fn choose_pool_span(&self, rng: &mut SmallRng, remaining: u32) -> PoolSpan {
        let roll: f64 = rng.gen();
        if roll < 0.15 {
            // Pool covers only the lower half of its /24 (the §3.2 /24
            // expansion over-counts here).
            PoolSpan {
                prefix_count: 1,
                addrs: 128,
            }
        } else if roll < 0.40 && remaining >= 2 {
            // Pool spans two /24s (the expansion under-counts here).
            PoolSpan {
                prefix_count: 2,
                addrs: 512,
            }
        } else {
            PoolSpan {
                prefix_count: 1,
                addrs: 256,
            }
        }
    }

    fn build_dynamic_pool(&mut self, profile: &AsProfile, rng: &mut SmallRng, span: PoolSpan) {
        let pool_id = PoolId(self.pools.len() as u32);
        let first_prefix = self.next_prefix();
        let mut prefixes = vec![first_prefix];
        for _ in 1..span.prefix_count {
            prefixes.push(self.next_prefix());
        }
        for p in &prefixes {
            self.prefixes.push(PrefixRecord {
                prefix: *p,
                asn: profile.asn,
                policy: AddressPolicy::DynamicPool(pool_id),
            });
        }
        let range = IpRange::new(first_prefix.host(0), {
            let last = *prefixes.last().expect("span has at least one prefix");
            if span.addrs == 128 {
                first_prefix.host(127)
            } else {
                last.host(255)
            }
        });

        // Hold times follow a two-component mixture: a minority of pools
        // reallocate within a day (the population §3.2 ultimately targets),
        // the rest follow a broad lognormal from days to many months. The
        // continuous spread matters: Figure 2's sorted allocation-count
        // curve is smooth, and the Kneedle knee lands in single digits only
        // when intermediate churn rates exist.
        let mean_hold = if rng.gen_bool(profile.fast_dynamic_share) {
            let h = stats::sample_lognormal(rng, self.config.fast_hold_hours_mean, 0.8)
                .clamp(4.0, 23.9);
            SimDuration::from_secs((h * 3600.0) as u64)
        } else {
            let d = stats::sample_lognormal(rng, self.config.slow_hold_days_mean, 1.1)
                .clamp(1.05, 300.0);
            SimDuration::from_secs((d * 86_400.0) as u64)
        };
        let fast = mean_hold <= SimDuration::from_days(1);

        let sub_count =
            ((span.addrs as f64) * self.config.dynamic_occupancy * rng.gen_range(0.85..1.0)) as u32;
        let mut subscribers = Vec::with_capacity(sub_count as usize);
        for sub in 0..sub_count {
            let host_id = HostId(self.hosts.len() as u32);
            let behavior = self.subscriber_behavior(profile, rng);
            self.hosts.push(Host {
                id: host_id,
                asn: profile.asn,
                attachment: Attachment::DynamicSub { pool: pool_id, sub },
                behavior,
            });
            subscribers.push(host_id);
        }

        self.pools.push(DynamicPool {
            id: pool_id,
            asn: profile.asn,
            range,
            subscribers,
            mean_hold,
            fast,
        });
    }

    fn build_nat_prefix(&mut self, profile: &AsProfile, rng: &mut SmallRng) {
        let prefix = self.next_prefix();
        self.prefixes.push(PrefixRecord {
            prefix,
            asn: profile.asn,
            policy: AddressPolicy::NatBlock,
        });
        let gateways = self.config.nat_gateways_per_prefix.clamp(1, 254);
        for g in 0..gateways {
            let nat_id = NatId(self.nat_gateways.len() as u32);
            let ip = prefix.host((g + 1) as u8);
            let carrier_grade = rng.gen_bool(self.config.cgn_fraction);
            let user_count = if carrier_grade {
                (stats::sample_lognormal(rng, self.config.cgn_median_users, 1.0).round() as u32)
                    .clamp(3, self.config.nat_max_users)
            } else if rng.gen_bool(0.35) {
                1 // single-user gateway: NOT a reused address
            } else {
                2 + stats::sample_geometric(rng, 0.55, 6)
            };
            // Home/office NATs split into "P2P households" — where several
            // devices run BitTorrent — and everyone else. This clustering
            // gives Figure 8 its shape: most *detected* NATs show exactly
            // two users, because detection requires ≥2 concurrent clients
            // and that mostly happens in P2P households.
            let p2p_household = !carrier_grade && rng.gen_bool(0.18);
            let mut users = Vec::with_capacity(user_count as usize);
            for slot in 0..user_count {
                let host_id = HostId(self.hosts.len() as u32);
                // In a P2P household the first two devices run BitTorrent
                // for sure (that's what makes it one); further devices
                // rarely do. This is why most detected NATs show exactly
                // two users (Figure 8: 68.5%).
                let behavior = if p2p_household {
                    let rate = if slot < 2 { 0.97 } else { 0.12 };
                    let mut b = self.base_behavior(profile, rng, rate);
                    // P2P devices are disproportionately compromised
                    // (DeKoven et al., cited in §4): give household
                    // devices extra infection pressure. This is also what
                    // puts *small* NATs on blocklists often enough for
                    // Figure 8's two-user dominance.
                    if b.malice.is_none() {
                        let extra = (profile.malice_rate * self.config.malice_boost * 5.0).min(0.5);
                        if rng.gen_bool(extra) {
                            b.malice = self.sample_malice_forced(profile, rng);
                        }
                    }
                    b
                } else {
                    self.nat_user_behavior(profile, rng, carrier_grade)
                };
                self.hosts.push(Host {
                    id: host_id,
                    asn: profile.asn,
                    attachment: Attachment::NatUser {
                        nat: nat_id,
                        slot: slot as u16,
                    },
                    behavior,
                });
                users.push(host_id);
            }
            self.nat_gateways.push(NatGateway {
                id: nat_id,
                ip,
                asn: profile.asn,
                users,
                carrier_grade,
            });
        }
    }

    fn build_static_prefix(&mut self, profile: &AsProfile, rng: &mut SmallRng) {
        let prefix = self.next_prefix();
        self.prefixes.push(PrefixRecord {
            prefix,
            asn: profile.asn,
            policy: AddressPolicy::Static,
        });
        for octet in 1..255u16 {
            if !rng.gen_bool(profile.static_occupancy) {
                continue;
            }
            let host_id = HostId(self.hosts.len() as u32);
            let ip = prefix.host(octet as u8);
            let behavior = self.static_host_behavior(profile, rng);
            self.hosts.push(Host {
                id: host_id,
                asn: profile.asn,
                attachment: Attachment::Static { ip },
                behavior,
            });
        }
    }

    // ----- behaviours -------------------------------------------------------

    fn base_behavior(&self, profile: &AsProfile, rng: &mut SmallRng, bt_rate: f64) -> HostBehavior {
        HostBehavior {
            bittorrent: rng.gen_bool(bt_rate.min(0.95)),
            ripe_probe: false, // assigned in a later pass
            malice: self.sample_malice(profile, rng),
            online_fraction: rng.gen_range(0.35..0.98),
            middlebox: false,
            // Relocation (taking the device to a different network) is not
            // specific to dynamic subscribers: the paper's 13.1% multi-AS
            // probes include moved hardware of every attachment kind.
            multi_as_mover: rng.gen_bool(self.config.multi_as_mover_rate),
        }
    }

    fn subscriber_behavior(&self, profile: &AsProfile, rng: &mut SmallRng) -> HostBehavior {
        self.base_behavior(profile, rng, profile.bittorrent_rate)
    }

    fn nat_user_behavior(
        &self,
        profile: &AsProfile,
        rng: &mut SmallRng,
        carrier_grade: bool,
    ) -> HostBehavior {
        let bt_rate = if carrier_grade {
            // Carrier-grade NAT fronts whole access networks with a dense
            // client population — the source of Figure 8's tail.
            self.config.cgn_bt_rate
        } else {
            profile.bittorrent_rate * 0.5
        };
        self.base_behavior(profile, rng, bt_rate)
    }

    fn static_host_behavior(&self, profile: &AsProfile, rng: &mut SmallRng) -> HostBehavior {
        let mut b = self.base_behavior(profile, rng, profile.bittorrent_rate);
        b.middlebox = rng.gen_bool(self.config.middlebox_rate);
        if profile.tier == AsTier::Hosting {
            // Servers are up nearly all the time.
            b.online_fraction = rng.gen_range(0.9..1.0);
        }
        b
    }

    fn sample_malice(&self, profile: &AsProfile, rng: &mut SmallRng) -> Option<MaliceProfile> {
        let rate = (profile.malice_rate * self.config.malice_boost).min(0.5);
        if !rng.gen_bool(rate) {
            return None;
        }
        self.sample_malice_forced(profile, rng)
    }

    /// Draw a malice profile unconditionally (the caller already decided
    /// the host is compromised).
    fn sample_malice_forced(
        &self,
        profile: &AsProfile,
        rng: &mut SmallRng,
    ) -> Option<MaliceProfile> {
        let (categories, weights): (&[MaliceCategory], &[f64]) = match profile.tier {
            AsTier::Hosting => (
                &[
                    MaliceCategory::MalwareHosting,
                    MaliceCategory::Scan,
                    MaliceCategory::Ransomware,
                    MaliceCategory::Backdoor,
                    MaliceCategory::Reputation,
                    MaliceCategory::Http,
                ],
                &[0.3, 0.25, 0.1, 0.1, 0.15, 0.1],
            ),
            _ => (
                &[
                    MaliceCategory::Spam,
                    MaliceCategory::Reputation,
                    MaliceCategory::Bruteforce,
                    MaliceCategory::Ssh,
                    MaliceCategory::Ddos,
                    MaliceCategory::Scan,
                    MaliceCategory::Http,
                ],
                &[0.4, 0.2, 0.12, 0.1, 0.08, 0.06, 0.04],
            ),
        };
        let category = categories[stats::weighted_index(rng, weights)];
        let persistence = match profile.tier {
            AsTier::Hosting => MalicePersistence::Dedicated,
            _ => {
                if rng.gen_bool(0.25) {
                    MalicePersistence::Transient
                } else {
                    MalicePersistence::Infection
                }
            }
        };
        let period_days = PERIOD_1.days().max(PERIOD_2.days());
        let active_for = match persistence {
            MalicePersistence::Dedicated => {
                SimDuration::from_days(rng.gen_range((period_days * 3 / 4)..=(period_days + 10)))
            }
            MalicePersistence::Infection => {
                let d = stats::sample_lognormal(rng, 6.0, 0.7).clamp(1.0, period_days as f64);
                SimDuration::from_secs((d * 86_400.0) as u64)
            }
            MalicePersistence::Transient => SimDuration::from_secs(
                (stats::sample_lognormal(rng, 8.0, 0.8).clamp(1.0, 36.0) * 3_600.0) as u64,
            ),
        };
        Some(MaliceProfile {
            category,
            persistence,
            mean_event_gap: SimDuration::from_secs(
                (stats::sample_lognormal(rng, 3.0, 0.6).clamp(0.3, 24.0) * 3_600.0) as u64,
            ),
            start_offset: SimDuration::from_secs(rng.gen_range(0..period_days * 86_400)),
            active_for,
        })
    }

    /// Select RIPE-probe hosts: weighted by the AS's probe rate, scaled to
    /// hit the configured target count.
    fn assign_probes(&mut self) {
        let mut rng = self.seed.fork("probes").rng();
        let as_rate: HashMap<Asn, f64> = self
            .ases
            .iter()
            .map(|a| (a.asn, a.probe_rate * a.region.probe_density()))
            .collect();
        // Probes sit in CPEs, i.e. subscriber-like attachments. NAT users are
        // eligible too (their probe simply reports the gateway address).
        let weights: Vec<f64> = self
            .hosts
            .iter()
            .map(|h| {
                let bias = match h.attachment {
                    Attachment::Static { .. } => self.config.probe_static_bias,
                    Attachment::DynamicSub { .. } => self.config.probe_dynamic_bias,
                    Attachment::NatUser { .. } => 1.0,
                };
                as_rate.get(&h.asn).copied().unwrap_or(0.0) * bias
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return;
        }
        let target = f64::from(self.config.probe_target);
        for (host, w) in self.hosts.iter_mut().zip(weights) {
            let p = (w * target / total).min(1.0);
            if rng.gen_bool(p) {
                host.behavior.ripe_probe = true;
            }
        }
    }

    fn finish(self) -> Universe {
        let prefix_index = self
            .prefixes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.prefix, i))
            .collect();
        let nat_index = self.nat_gateways.iter().map(|g| (g.ip, g.id)).collect();
        Universe {
            seed: self.seed,
            config: self.config,
            ases: self.ases,
            prefixes: self.prefixes,
            nat_gateways: self.nat_gateways,
            pools: self.pools,
            hosts: self.hosts,
            icmp_filtered_ases: self.icmp_filtered_ases,
            prefix_index,
            nat_index,
        }
    }
}

#[derive(Clone, Copy)]
struct PoolSpan {
    prefix_count: u32,
    addrs: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;

    fn tiny() -> Universe {
        Universe::generate(Seed(7), &UniverseConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.num_hosts(), b.num_hosts());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
        assert_eq!(a.nat_gateways.len(), b.nat_gateways.len());
        for (x, y) in a.nat_gateways.iter().zip(&b.nat_gateways) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.users.len(), y.users.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate(Seed(1), &UniverseConfig::tiny());
        let b = Universe::generate(Seed(2), &UniverseConfig::tiny());
        // Not a strict requirement for every field, but host counts differing
        // is overwhelmingly likely for distinct seeds.
        assert_ne!(
            (a.num_hosts(), a.nat_gateways.len()),
            (b.num_hosts(), b.nat_gateways.len())
        );
    }

    #[test]
    fn prefixes_are_unique_and_indexed() {
        let u = tiny();
        let mut seen = std::collections::HashSet::new();
        for rec in &u.prefixes {
            assert!(seen.insert(rec.prefix), "duplicate prefix {}", rec.prefix);
            let found = u.prefix_record(rec.prefix).expect("index lookup");
            assert_eq!(found.asn, rec.asn);
        }
    }

    #[test]
    fn nat_ground_truth_consistent() {
        let u = tiny();
        assert!(!u.nat_gateways.is_empty(), "tiny universe has NATs");
        let mut multi = 0;
        for g in &u.nat_gateways {
            assert!(!g.users.is_empty());
            assert_eq!(u.true_nat_user_count(g.ip), Some(g.users.len()));
            if g.users.len() >= 2 {
                multi += 1;
                assert!(u.is_truly_natted(g.ip));
            }
            for uid in &g.users {
                match u.host(*uid).attachment {
                    Attachment::NatUser { nat, .. } => assert_eq!(nat, g.id),
                    other => panic!("NAT user with non-NAT attachment {other:?}"),
                }
            }
        }
        assert!(multi > 0, "some gateways have >=2 users");
    }

    #[test]
    fn nat_user_counts_mostly_small() {
        let u = Universe::generate(Seed(3), &UniverseConfig::small());
        let counts: Vec<usize> = u
            .nat_gateways
            .iter()
            .map(|g| g.users.len())
            .filter(|&n| n >= 2)
            .collect();
        assert!(!counts.is_empty());
        let twos = counts.iter().filter(|&&n| n == 2).count();
        // Small NATs dominate (Figure 8: 68.5% of detected NATed IPs show
        // exactly two users).
        assert!(
            twos * 2 > counts.len(),
            "2-user NATs should be the majority: {twos}/{}",
            counts.len()
        );
        assert!(counts.iter().all(|&n| n <= u.config.nat_max_users as usize));
    }

    #[test]
    fn dynamic_pools_have_fast_and_slow() {
        let u = Universe::generate(Seed(5), &UniverseConfig::small());
        let fast = u.pools.iter().filter(|p| p.fast).count();
        let slow = u.pools.len() - fast;
        assert!(fast > 0 && slow > 0, "fast={fast} slow={slow}");
        for p in &u.pools {
            if p.fast {
                assert!(p.mean_hold <= SimDuration::from_days(1), "fast pool hold");
            } else {
                // `fast` is *defined* as mean hold ≤ 1 day.
                assert!(p.mean_hold > SimDuration::from_days(1), "slow pool hold");
            }
            assert!(!p.subscribers.is_empty());
            assert!(p.subscribers.len() as u64 <= p.range.len());
        }
    }

    #[test]
    fn dynamic_prefix_ground_truth_respects_fast_flag() {
        let u = tiny();
        let all = u.true_dynamic_prefixes(false);
        let fast = u.true_dynamic_prefixes(true);
        assert!(fast.is_subset(&all));
    }

    #[test]
    fn pool_partial_prefix_policy_lookup() {
        let u = Universe::generate(Seed(11), &UniverseConfig::small());
        // Find a half-/24 pool and check addresses beyond its range fall back
        // to Static in policy_of.
        let half = u.pools.iter().find(|p| p.range.len() == 128);
        if let Some(p) = half {
            let inside = p.range.first;
            let outside = Prefix24::of(p.range.first).host(200);
            assert!(matches!(
                u.policy_of(inside),
                Some(AddressPolicy::DynamicPool(_))
            ));
            assert!(matches!(u.policy_of(outside), Some(AddressPolicy::Static)));
        }
    }

    #[test]
    fn probes_assigned_near_target() {
        let u = Universe::generate(Seed(13), &UniverseConfig::small());
        let probes = u.probe_hosts().count() as f64;
        let target = f64::from(u.config.probe_target);
        assert!(
            probes > target * 0.6 && probes < target * 1.4,
            "probes={probes} target={target}"
        );
    }

    #[test]
    fn populations_exist() {
        let u = tiny();
        assert!(u.bittorrent_hosts().count() > 0);
        assert!(u.malicious_hosts().count() > 0);
        assert!(u.pools.len() > 3);
        assert!(!u.icmp_filtered_ases.is_empty());
    }

    #[test]
    fn probe_density_follows_regions() {
        let u = Universe::generate(Seed(17), &UniverseConfig::small());
        let region_of: std::collections::HashMap<_, _> =
            u.ases.iter().map(|a| (a.asn, a.region)).collect();
        let mut probes_by_region = std::collections::HashMap::new();
        let mut hosts_by_region = std::collections::HashMap::new();
        for h in &u.hosts {
            let r = region_of[&h.asn];
            *hosts_by_region.entry(r).or_insert(0u64) += 1;
            if h.behavior.ripe_probe {
                *probes_by_region.entry(r).or_insert(0u64) += 1;
            }
        }
        let density = |r: crate::asn::Region| {
            *probes_by_region.get(&r).unwrap_or(&0) as f64
                / *hosts_by_region.get(&r).unwrap_or(&1) as f64
        };
        // Europe per-host probe density clearly exceeds Asia's (the §3.2
        // limitation the model encodes).
        assert!(
            density(crate::asn::Region::Europe) > density(crate::asn::Region::Asia) * 2.0,
            "europe {:.5} vs asia {:.5}",
            density(crate::asn::Region::Europe),
            density(crate::asn::Region::Asia)
        );
    }

    #[test]
    fn summary_counts_are_consistent() {
        let u = tiny();
        let s = u.summary();
        assert_eq!(s.hosts, u.num_hosts());
        assert_eq!(s.prefixes, u.prefixes.len());
        assert!(s.multi_user_nats <= s.nat_gateways);
        assert!(s.fast_pools <= s.pools);
        assert_eq!(s.per_tier.values().sum::<u32>() as usize, s.ases);
        // Serialises cleanly.
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("multi_user_nats"));
    }

    #[test]
    fn asn_lookup_roundtrip() {
        let u = tiny();
        for rec in u.prefixes.iter().take(32) {
            assert_eq!(u.asn_of(rec.prefix.host(5)), Some(rec.asn));
        }
        // Unannounced space.
        assert_eq!(u.asn_of("250.250.250.250".parse().unwrap()), None);
    }
}
