//! Hosts: the end systems whose addresses get reused (and blocklisted).
//!
//! A host is a single machine/user. Its [`Attachment`] determines how it
//! obtains a public IPv4 address:
//!
//! * [`Attachment::Static`] — it owns one address for the whole simulation,
//! * [`Attachment::NatUser`] — it shares a NAT gateway's public address with
//!   the gateway's other users *at the same time*,
//! * [`Attachment::DynamicSub`] — it is a subscriber of a dynamic pool and
//!   holds different addresses *over time*.
//!
//! The second and third cases are exactly the two forms of address reuse the
//! paper studies (§1).

use crate::malice::MaliceProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Dense host identifier; index into [`crate::Universe::hosts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Identifier of a NAT gateway; index into [`crate::Universe::nat_gateways`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NatId(pub u32);

/// Identifier of a dynamic pool; index into [`crate::Universe::pools`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// How a host is attached to the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attachment {
    /// Permanently assigned a single public address.
    Static { ip: Ipv4Addr },
    /// One of several users behind a NAT gateway; `slot` is the host's
    /// stable index among the gateway's users.
    NatUser { nat: NatId, slot: u16 },
    /// Subscriber `sub` of dynamic pool `pool`.
    DynamicSub { pool: PoolId, sub: u32 },
}

/// Behavioural attributes of a host, sampled at universe generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostBehavior {
    /// Runs a BitTorrent client (visible to the DHT crawler).
    pub bittorrent: bool,
    /// Hosts a RIPE Atlas probe in its CPE.
    pub ripe_probe: bool,
    /// If malicious, how (drives blocklist listings).
    pub malice: Option<MaliceProfile>,
    /// Long-run fraction of time the host is powered on and online.
    pub online_fraction: f64,
    /// Static hosts only: a middlebox in front answers ICMP on the host's
    /// behalf even when the host is down (census confounder, paper §2).
    pub middlebox: bool,
    /// Dynamic subscribers only: relocates to a different AS mid-window
    /// (the 13.1% of RIPE probes the paper's pipeline excludes).
    pub multi_as_mover: bool,
}

impl HostBehavior {
    pub fn quiet() -> Self {
        HostBehavior {
            bittorrent: false,
            ripe_probe: false,
            malice: None,
            online_fraction: 0.7,
            middlebox: false,
            multi_as_mover: false,
        }
    }
}

/// One end system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    pub id: HostId,
    pub asn: crate::asn::Asn,
    pub attachment: Attachment,
    pub behavior: HostBehavior,
}

impl Host {
    /// True when the host's address is reused *by construction* — i.e. the
    /// ground truth the detectors try to recover.
    pub fn is_on_reused_address(&self) -> bool {
        !matches!(self.attachment, Attachment::Static { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ground_truth_by_attachment() {
        let mk = |attachment| Host {
            id: HostId(0),
            asn: crate::asn::Asn(65000),
            attachment,
            behavior: HostBehavior::quiet(),
        };
        assert!(!mk(Attachment::Static {
            ip: "192.0.2.1".parse().unwrap()
        })
        .is_on_reused_address());
        assert!(mk(Attachment::NatUser {
            nat: NatId(0),
            slot: 0
        })
        .is_on_reused_address());
        assert!(mk(Attachment::DynamicSub {
            pool: PoolId(0),
            sub: 3
        })
        .is_on_reused_address());
    }
}
