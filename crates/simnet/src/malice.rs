//! Malicious-activity model.
//!
//! Blocklists list addresses that "have sent spam, DDoS attacks, dictionary
//! attacks, or malicious scans" (paper §4). In the simulation, malicious
//! *hosts* carry a [`MaliceProfile`]; combining a profile with the host's
//! public address at event time yields the [`MaliceEvent`] stream that
//! blocklist maintainers observe. This is where the paper's central problem
//! is manufactured: an event is attributed to a *public address*, not to the
//! offending host, so NAT neighbours and later holders of a dynamic address
//! inherit the listing.

use crate::time::{SimDuration, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Category of malicious activity; matches the blocklist categories of the
/// BLAG dataset (Table 2) and the survey's Figure 9 axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MaliceCategory {
    Spam,
    Reputation,
    Ddos,
    Bruteforce,
    Ransomware,
    Ssh,
    Http,
    Backdoor,
    Ftp,
    Banking,
    Voip,
    MalwareHosting,
    Scan,
}

impl MaliceCategory {
    pub const ALL: [MaliceCategory; 13] = [
        MaliceCategory::Spam,
        MaliceCategory::Reputation,
        MaliceCategory::Ddos,
        MaliceCategory::Bruteforce,
        MaliceCategory::Ransomware,
        MaliceCategory::Ssh,
        MaliceCategory::Http,
        MaliceCategory::Backdoor,
        MaliceCategory::Ftp,
        MaliceCategory::Banking,
        MaliceCategory::Voip,
        MaliceCategory::MalwareHosting,
        MaliceCategory::Scan,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MaliceCategory::Spam => "spam",
            MaliceCategory::Reputation => "reputation",
            MaliceCategory::Ddos => "ddos",
            MaliceCategory::Bruteforce => "bruteforce",
            MaliceCategory::Ransomware => "ransomware",
            MaliceCategory::Ssh => "ssh",
            MaliceCategory::Http => "http",
            MaliceCategory::Backdoor => "backdoor",
            MaliceCategory::Ftp => "ftp",
            MaliceCategory::Banking => "banking",
            MaliceCategory::Voip => "voip",
            MaliceCategory::MalwareHosting => "malware-hosting",
            MaliceCategory::Scan => "scan",
        }
    }
}

impl fmt::Display for MaliceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How persistently an actor misbehaves. Persistence drives how long the
/// actor's address keeps getting re-reported, and therefore how long it
/// stays listed (Figure 7's duration CDFs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MalicePersistence {
    /// A compromised consumer device: bursts of activity over days–weeks
    /// until cleaned up.
    Infection,
    /// A dedicated abuse host: active for most of the window.
    Dedicated,
    /// A transient actor (e.g. a booter client): hours.
    Transient,
}

/// Malice attributes attached to a host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaliceProfile {
    pub category: MaliceCategory,
    pub persistence: MalicePersistence,
    /// Mean time between observable malicious events while active.
    pub mean_event_gap: SimDuration,
    /// Offset of activity start within each measurement window, seconds.
    pub start_offset: SimDuration,
    /// Length of the active burst (capped by the window).
    pub active_for: SimDuration,
}

impl MaliceProfile {
    /// The actor's active sub-window within a measurement window, if any.
    pub fn active_window(&self, period: &TimeWindow) -> Option<TimeWindow> {
        let start = period.start + self.start_offset;
        if start >= period.end {
            return None;
        }
        let end = (start + self.active_for).min(period.end);
        (start < end).then_some(TimeWindow::new(start, end))
    }
}

/// One observable malicious event attributed to a public address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaliceEvent {
    pub time: SimTime,
    /// Public source address the event is attributed to.
    pub ip: Ipv4Addr,
    pub category: MaliceCategory,
    /// The actually-responsible host (ground truth; never exposed to the
    /// measurement pipelines).
    pub actor: crate::hosts::HostId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::date;

    fn profile(offset_days: u64, active_days: u64) -> MaliceProfile {
        MaliceProfile {
            category: MaliceCategory::Spam,
            persistence: MalicePersistence::Infection,
            mean_event_gap: SimDuration::from_hours(2),
            start_offset: SimDuration::from_days(offset_days),
            active_for: SimDuration::from_days(active_days),
        }
    }

    #[test]
    fn active_window_clips_to_period() {
        let period = TimeWindow::new(date(2019, 8, 3), date(2019, 9, 11));
        let w = profile(5, 1000).active_window(&period).unwrap();
        assert_eq!(w.start, date(2019, 8, 8));
        assert_eq!(w.end, period.end);
    }

    #[test]
    fn active_window_none_when_offset_beyond_period() {
        let period = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10));
        assert!(profile(30, 2).active_window(&period).is_none());
    }

    #[test]
    fn category_names_unique() {
        let mut names: Vec<_> = MaliceCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), MaliceCategory::ALL.len());
    }
}
