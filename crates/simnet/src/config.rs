//! Universe configuration and the global scale knob.
//!
//! The paper's populations (48.7M BitTorrent IPs, 2.2M blocklisted
//! addresses, 26K ASes) do not fit a laptop-scale reproduction, so every
//! population size passes through a [`Scale`] divisor. The paper's headline
//! results are proportions and distribution shapes, which are scale-free;
//! EXPERIMENTS.md reports measured values next to their scaled paper
//! expectations.

use crate::asn::AsTier;
use serde::{Deserialize, Serialize};

/// A `1:n` downscaling factor applied to population sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale(pub u32);

impl Scale {
    pub const UNIT: Scale = Scale(1);

    /// Scale a paper-reported count down, keeping at least `min`.
    pub fn apply(self, paper_count: u64, min: u64) -> u64 {
        (paper_count / u64::from(self.0)).max(min)
    }

    pub fn factor(self) -> f64 {
        f64::from(self.0)
    }
}

/// Full parameter set for [`crate::Universe::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Downscaling factor relative to the paper's populations.
    pub scale: Scale,
    /// Number of autonomous systems to generate.
    pub num_ases: u32,
    /// Relative frequency of each AS tier, aligned with [`AsTier::ALL`].
    pub tier_weights: [f64; 5],
    /// Mean users behind a small (home/office) NAT, beyond the first.
    pub nat_small_extra_mean: f64,
    /// Fraction of NAT gateways that are carrier-grade (large user counts).
    pub cgn_fraction: f64,
    /// Median users behind a carrier-grade NAT.
    pub cgn_median_users: f64,
    /// Hard cap on users behind one NAT gateway.
    pub nat_max_users: u32,
    /// Mean address-hold time, in hours, for fast dynamic pools (≤ 1 day —
    /// the population §3.2's final filter is designed to catch).
    pub fast_hold_hours_mean: f64,
    /// Mean address-hold time, in days, for slow dynamic pools.
    pub slow_hold_days_mean: f64,
    /// Fraction of dynamic-pool subscribers that relocate to a different AS
    /// mid-window (the 13.1% of probes the paper excludes).
    pub multi_as_mover_rate: f64,
    /// Multiplier applied to per-AS prefix counts (shrinks test universes).
    pub prefix_scale: f64,
    /// Public gateway addresses carved out of each NAT-policy /24.
    pub nat_gateways_per_prefix: u32,
    /// Fraction of a dynamic pool's addresses that have a subscriber.
    pub dynamic_occupancy: f64,
    /// BitTorrent-propensity multiplier for NAT users relative to the AS
    /// baseline (P2P usage clusters behind shared connectivity; DeKoven et
    /// al., cited in paper §4, find P2P devices disproportionately
    /// compromised).
    pub nat_bt_multiplier: f64,
    /// Per-user BitTorrent rate behind carrier-grade NATs (drives Figure
    /// 8's long tail — the paper detected up to 78 users on one address).
    pub cgn_bt_rate: f64,
    /// Target number of RIPE Atlas probe hosts (paper: 15,703, scaled more
    /// gently than addresses so Figure 2 keeps a usable population).
    pub probe_target: u32,
    /// Probe-hosting propensity multiplier for statically attached hosts.
    /// Atlas volunteers skew toward static connections: the paper finds 59%
    /// of probes never change address in 16 months (Figure 2).
    pub probe_static_bias: f64,
    /// Probe-hosting propensity multiplier for dynamic-pool subscribers.
    pub probe_dynamic_bias: f64,
    /// Multiplier on per-AS malice rates. 1.0 at experiment scale; test
    /// universes raise it so the blocklisted∩reused joins stay populated
    /// despite tiny host populations.
    pub malice_boost: f64,
    /// Fraction of ASes that filter outbound ICMP (census confounder).
    pub icmp_filtered_as_rate: f64,
    /// Fraction of static hosts fronted by a middlebox that answers ICMP on
    /// their behalf (census confounder).
    pub middlebox_rate: f64,
}

impl UniverseConfig {
    /// Minimal universe for unit tests: runs in milliseconds.
    pub fn tiny() -> Self {
        UniverseConfig {
            scale: Scale(20_000),
            num_ases: 40,
            prefix_scale: 0.08,
            probe_target: 120,
            malice_boost: 12.0,
            ..Self::base()
        }
    }

    /// Small universe for integration tests: runs in well under a second.
    pub fn small() -> Self {
        UniverseConfig {
            scale: Scale(4_000),
            num_ases: 120,
            prefix_scale: 0.25,
            probe_target: 500,
            malice_boost: 5.0,
            ..Self::base()
        }
    }

    /// Default experiment universe used by the figure-regeneration
    /// binaries (~1:500 of the paper's address populations).
    pub fn experiment() -> Self {
        UniverseConfig {
            scale: Scale(500),
            num_ases: 600,
            prefix_scale: 1.0,
            probe_target: 1_570,
            ..Self::base()
        }
    }

    /// Experiment universe at an explicit scale; AS count and probe count
    /// shrink more gently than address populations so Figure 3 keeps enough
    /// ASes and Figure 2 enough probes.
    pub fn at_scale(scale: u32) -> Self {
        let scale = scale.max(1);
        UniverseConfig {
            scale: Scale(scale),
            num_ases: (26_000 * 12 / scale).clamp(40, 4_000),
            prefix_scale: (500.0 / f64::from(scale)).clamp(0.05, 2.0),
            probe_target: (15_703 * 50 / scale).clamp(100, 15_703),
            // Calibrated so the blocklisted-address population lands near
            // paper-scale (2.2M / scale); the tier baselines alone overshoot.
            malice_boost: 0.4,
            ..Self::base()
        }
    }

    fn base() -> Self {
        UniverseConfig {
            scale: Scale(250),
            num_ases: 1_000,
            // Tier mix: a handful of backbones, many small networks.
            tier_weights: [0.01, 0.09, 0.40, 0.20, 0.30],
            nat_small_extra_mean: 1.3,
            cgn_fraction: 0.015,
            cgn_median_users: 18.0,
            nat_max_users: 300,
            fast_hold_hours_mean: 10.0,
            slow_hold_days_mean: 60.0,
            multi_as_mover_rate: 0.131,
            prefix_scale: 1.0,
            nat_gateways_per_prefix: 32,
            dynamic_occupancy: 0.8,
            nat_bt_multiplier: 3.5,
            cgn_bt_rate: 0.35,
            probe_target: 1_570,
            probe_static_bias: 3.2,
            probe_dynamic_bias: 0.55,
            malice_boost: 1.0,
            icmp_filtered_as_rate: 0.15,
            middlebox_rate: 0.05,
        }
    }

    /// Tier of the `idx`-th AS given the configured weights (deterministic
    /// stratified assignment so every universe has its backbones).
    pub fn tier_for_index(&self, idx: u32) -> AsTier {
        let total: f64 = self.tier_weights.iter().sum();
        let frac = (f64::from(idx) + 0.5) / f64::from(self.num_ases);
        let mut acc = 0.0;
        for (tier, w) in AsTier::ALL.iter().zip(self.tier_weights) {
            acc += w / total;
            if frac < acc {
                return *tier;
            }
        }
        AsTier::Enterprise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_apply() {
        assert_eq!(Scale(1000).apply(48_700_000, 1), 48_700);
        assert_eq!(Scale(1000).apply(10, 5), 5);
        assert_eq!(Scale::UNIT.apply(7, 1), 7);
    }

    #[test]
    fn tier_assignment_is_stratified() {
        let cfg = UniverseConfig::experiment();
        let mut counts = std::collections::HashMap::new();
        for i in 0..cfg.num_ases {
            *counts.entry(cfg.tier_for_index(i).name()).or_insert(0u32) += 1;
        }
        // With 1% backbone weight over 1000 ASes we expect ~10 backbones.
        let backbones = counts["backbone"];
        assert!(
            (5..=20).contains(&backbones),
            "backbones={backbones} out of expectation"
        );
        assert!(counts["regional-isp"] > counts["consumer-isp"]);
    }

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(UniverseConfig::tiny().scale.0 > UniverseConfig::small().scale.0);
        assert!(UniverseConfig::small().scale.0 > UniverseConfig::experiment().scale.0);
    }

    #[test]
    fn at_scale_clamps_as_count() {
        assert_eq!(UniverseConfig::at_scale(1).num_ases, 4_000);
        assert_eq!(UniverseConfig::at_scale(1_000_000).num_ases, 40);
        assert_eq!(UniverseConfig::at_scale(500).num_ases, 624);
        assert!(UniverseConfig::at_scale(500).prefix_scale <= 1.0);
    }
}
