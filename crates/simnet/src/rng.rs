//! Seeded, forkable randomness.
//!
//! Every stochastic subsystem receives its own RNG forked from the master
//! [`Seed`] by a label, so adding randomness consumption to one subsystem
//! never perturbs another — a property the integration tests rely on.

use crate::fnv::{FnvHasher, FNV_BASIS};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Master seed for a whole simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Seed(pub u64);

impl Seed {
    /// Derive a child seed for a named subsystem.
    ///
    /// Uses an FNV-1a fold of the label into a splitmix64 finalizer: cheap,
    /// stable across platforms, and well-distributed for the handful of
    /// labels we use.
    pub fn fork(self, label: &str) -> Seed {
        let mut h = FnvHasher::with_state(FNV_BASIS ^ self.0);
        h.update(label.as_bytes());
        Seed(splitmix64(h.finish()))
    }

    /// Derive a child seed by index (e.g. per-host).
    pub fn fork_idx(self, label: &str, idx: u64) -> Seed {
        Seed(splitmix64(self.fork(label).0 ^ splitmix64(idx)))
    }

    /// Build the RNG for this seed.
    pub fn rng(self) -> SmallRng {
        SmallRng::seed_from_u64(self.0)
    }
}

/// Convenience: fork a seed and immediately build the RNG.
pub fn fork_rng(seed: Seed, label: &str) -> SmallRng {
    seed.fork(label).rng()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn forks_are_stable() {
        let a = Seed(1).fork("dht");
        let b = Seed(1).fork("dht");
        assert_eq!(a, b);
    }

    /// Golden values captured before `fork` moved onto the shared
    /// [`FnvHasher`]: every seeded subsystem replays these exact streams.
    #[test]
    fn fork_values_are_pinned() {
        assert_eq!(Seed(1).fork("dht"), Seed(0xf705_3b25_b709_57d0));
        assert_eq!(Seed(2020).fork("serve-chaos"), Seed(0xda5c_935a_2590_65e8));
    }

    #[test]
    fn forks_differ_by_label() {
        assert_ne!(Seed(1).fork("dht"), Seed(1).fork("atlas"));
        assert_ne!(Seed(1).fork("dht"), Seed(2).fork("dht"));
    }

    #[test]
    fn fork_idx_differs_by_index() {
        let a = Seed(7).fork_idx("host", 0);
        let b = Seed(7).fork_idx("host", 1);
        assert_ne!(a, b);
        assert_eq!(a, Seed(7).fork_idx("host", 0));
    }

    #[test]
    fn rng_streams_are_deterministic() {
        let mut r1 = fork_rng(Seed(3), "x");
        let mut r2 = fork_rng(Seed(3), "x");
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
