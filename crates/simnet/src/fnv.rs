//! The workspace's one FNV-1a 64 implementation.
//!
//! Four subsystems hash with FNV-1a — verdict-stream checksums
//! (`ar-serve`), the crawler's node-id digests and /24 shard partition,
//! the bench harness's artifact digests, and [`crate::rng::Seed::fork`] —
//! and each grew its own copy of the fold. This module is the single
//! source of truth: a one-shot [`fnv1a64`] for byte slices and a
//! streaming [`FnvHasher`] for callers that fold several buffers (or
//! start from a custom state, as seed forking does). The digests are
//! part of the determinism contract, so the constants and fold order are
//! pinned by golden-vector tests below; `ar-index` re-exports the module
//! for crates that do not depend on `ar-simnet` directly.

/// FNV-1a 64 offset basis (the digest of the empty input).
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64: feed any number of buffers, read the digest at
/// any point. Folding one buffer is byte-identical to folding its
/// concatenated pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnvHasher {
    state: u64,
}

impl FnvHasher {
    /// Start from the standard offset basis.
    pub fn new() -> FnvHasher {
        FnvHasher { state: FNV_BASIS }
    }

    /// Start from an arbitrary state (seed forking xors the master seed
    /// into the basis before folding the label).
    pub fn with_state(state: u64) -> FnvHasher {
        FnvHasher { state }
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut FnvHasher {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors captured from the four pre-consolidation copies:
    /// a drifted constant or fold order breaks every digest downstream.
    #[test]
    fn golden_vectors_are_pinned() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"abc"), 0xe71f_a219_0541_574b);
        assert_eq!(fnv1a64(b"address-reuse"), 0x1a21_0bf8_a4c7_83ce);
    }

    #[test]
    fn streaming_matches_one_shot_at_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = fnv1a64(data);
        for split in 0..=data.len() {
            let mut h = FnvHasher::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn custom_state_seeds_the_fold() {
        let mut h = FnvHasher::with_state(FNV_BASIS ^ 7);
        h.update(b"dht");
        let mut again = FnvHasher::with_state(FNV_BASIS ^ 7);
        again.update(b"dht");
        assert_eq!(h.finish(), again.finish());
        assert_ne!(h.finish(), fnv1a64(b"dht"));
    }
}
