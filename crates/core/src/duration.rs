//! Figure 7: how long reused addresses stay listed.
//!
//! "On average, blocklisted addresses are removed within nine days, NATed
//! IP addresses are removed within ten days, and dynamic addresses are
//! removed within three days … Within two days, 77.5% of all dynamic
//! addresses are removed from blocklists, compared to only 60% of NATed IP
//! addresses … only 42% of all blocklisted IP addresses are removed in two
//! days. In the worst case, reused addresses are present in blocklists for
//! the entire monitoring period of 44 days." (§5)

use crate::study::Study;
use ar_simnet::stats::Ecdf;
use serde::Serialize;
use std::net::Ipv4Addr;

/// Duration CDFs for the three Figure 7 populations.
#[derive(Debug, Clone)]
pub struct DurationAnalysis {
    pub all: Ecdf,
    pub natted: Ecdf,
    pub dynamic: Ecdf,
}

/// Headline numbers extracted from the CDFs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DurationSummary {
    pub mean_days_all: f64,
    pub mean_days_natted: f64,
    pub mean_days_dynamic: f64,
    /// Fraction removed within two days, per population.
    pub within2_all: f64,
    pub within2_natted: f64,
    pub within2_dynamic: f64,
    /// Longest residence observed (paper: the full 44-day period).
    pub max_days: f64,
}

/// Compute the Figure 7 populations from a study.
pub fn durations(study: &Study) -> DurationAnalysis {
    let collect = |ips: Vec<Ipv4Addr>| -> Ecdf {
        Ecdf::from_samples(
            ips.into_iter()
                .map(|ip| study.blocklists.days_listed(ip) as f64)
                .collect(),
        )
    };

    let all: Vec<Ipv4Addr> = study.blocklists.all_ips().into_iter().collect();
    let natted: Vec<Ipv4Addr> = study.natted_blocklisted().into_iter().collect();
    let dynamic: Vec<Ipv4Addr> = study.dynamic_blocklisted().into_iter().collect();

    DurationAnalysis {
        all: collect(all),
        natted: collect(natted),
        dynamic: collect(dynamic),
    }
}

impl DurationAnalysis {
    pub fn summary(&self) -> DurationSummary {
        DurationSummary {
            mean_days_all: self.all.mean(),
            mean_days_natted: self.natted.mean(),
            mean_days_dynamic: self.dynamic.mean(),
            within2_all: self.all.at(2.0),
            within2_natted: self.natted.at(2.0),
            within2_dynamic: self.dynamic.at(2.0),
            max_days: [self.all.max(), self.natted.max(), self.dynamic.max()]
                .into_iter()
                .fold(f64::NAN, f64::max),
        }
    }

    /// CDF series at integer day marks for plotting (paper x-axis 0–44).
    pub fn series(&self, max_day: u64) -> Vec<(f64, f64, f64, f64)> {
        (0..=max_day)
            .map(|d| {
                let x = d as f64;
                (x, self.all.at(x), self.natted.at(x), self.dynamic.at(x))
            })
            .collect()
    }
}
