//! Daily listing churn: the dataset's dynamics day by day.
//!
//! Figure 7 summarises residence as a CDF; this module exposes the
//! underlying time series — additions, removals and standing size per day,
//! for the whole dataset and for the reused subsets — which is what a
//! maintainer watching their feed actually sees.

use crate::study::Study;
use ar_simnet::time::SimTime;
use serde::Serialize;

/// One day of feed dynamics. Listings clipped at a period boundary are
/// never observed as removals — they are still standing when collection
/// stops, exactly as in the real campaign ("in the worst case, reused
/// addresses are present in blocklists for the entire monitoring period").
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChurnDay {
    pub day: SimTime,
    /// Listings that started this day.
    pub added: usize,
    /// Listings that ended this day.
    pub removed: usize,
    /// Listings active at the day's midnight.
    pub active: usize,
    /// Of the added listings, how many hit detected-reused addresses.
    pub added_reused: usize,
}

/// The full campaign's daily series.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnSeries {
    pub days: Vec<ChurnDay>,
}

impl ChurnSeries {
    /// Mean daily turnover rate: (adds + removes) / 2·active, over days
    /// with any standing population.
    pub fn mean_turnover(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for d in &self.days {
            if d.active > 0 {
                total += (d.added + d.removed) as f64 / (2.0 * d.active as f64);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Share of all additions that hit reused addresses — the standing
    /// fraction of new blocking decisions that are unjust-by-construction.
    pub fn reused_addition_share(&self) -> f64 {
        let added: usize = self.days.iter().map(|d| d.added).sum();
        let reused: usize = self.days.iter().map(|d| d.added_reused).sum();
        if added == 0 {
            0.0
        } else {
            reused as f64 / added as f64
        }
    }
}

/// Compute the daily churn series across all lists and both periods.
pub fn churn(study: &Study) -> ChurnSeries {
    let reused = study
        .natted_blocklisted()
        .union(&study.dynamic_blocklisted());

    let mut days = Vec::new();
    for period in &study.config.periods {
        for day in period.days_iter() {
            let next = SimTime(day.as_secs() + 86_400);
            let mut added = 0;
            let mut removed = 0;
            let mut active = 0;
            let mut added_reused = 0;
            for l in &study.blocklists.listings {
                if l.start >= day && l.start < next {
                    added += 1;
                    if reused.contains(l.ip) {
                        added_reused += 1;
                    }
                }
                if l.end >= day && l.end < next {
                    removed += 1;
                }
                if l.active_at(day) {
                    active += 1;
                }
            }
            days.push(ChurnDay {
                day,
                added,
                removed,
                active,
                added_reused,
            });
        }
    }
    ChurnSeries { days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use ar_simnet::rng::Seed;
    use std::sync::OnceLock;

    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::run(StudyConfig::quick_test(Seed(505))))
    }

    #[test]
    fn series_covers_every_campaign_day() {
        let s = study();
        let c = churn(s);
        let expect: u64 = s.config.periods.iter().map(|p| p.days()).sum();
        assert_eq!(c.days.len() as u64, expect);
    }

    #[test]
    fn adds_and_removes_balance_over_the_campaign() {
        let s = study();
        let c = churn(s);
        let added: usize = c.days.iter().map(|d| d.added).sum();
        let removed: usize = c.days.iter().map(|d| d.removed).sum();
        // Every listing starts inside a period…
        assert_eq!(added, s.blocklists.total_listings());
        // …but listings clipped at a period boundary are still standing
        // when collection ends and never show up as removals.
        let standing_at_end = s
            .blocklists
            .listings
            .iter()
            .filter(|l| {
                // Compare against the period that contains the listing.
                s.config
                    .periods
                    .iter()
                    .any(|p| l.start >= p.start && l.start < p.end && l.end >= p.end)
            })
            .count();
        assert_eq!(removed + standing_at_end, s.blocklists.total_listings());
        assert!(standing_at_end > 0, "period-end clipping must occur");
    }

    #[test]
    fn turnover_and_reused_share_are_meaningful() {
        let c = churn(study());
        let turnover = c.mean_turnover();
        assert!(turnover > 0.0 && turnover < 1.0, "turnover {turnover}");
        let share = c.reused_addition_share();
        assert!((0.0..=1.0).contains(&share));
        assert!(share > 0.0, "some additions hit reused space");
    }

    #[test]
    fn active_counts_are_consistent_with_membership() {
        let s = study();
        let c = churn(s);
        // Spot-check one mid-period day against the dataset query.
        let mid = c.days[c.days.len() / 4];
        let direct: usize = s
            .blocklists
            .listings
            .iter()
            .filter(|l| l.active_at(mid.day))
            .count();
        assert_eq!(mid.active, direct);
    }
}
