//! Per-period breakdown and cross-period persistence.
//!
//! The paper collects over two windows half a year apart (Aug–Sep 2019 and
//! Mar–May 2020) and pools them. Splitting them back out answers a
//! question the pooled numbers hide: does the *same* reused address keep
//! getting relisted months later (a stable NAT gateway with a recurring
//! infection), or does the population turn over?

use crate::study::Study;
use ar_simnet::time::TimeWindow;
use serde::Serialize;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// One period's slice of the campaign.
#[derive(Debug, Clone, Serialize)]
pub struct PeriodSlice {
    pub window: TimeWindow,
    pub blocklisted: usize,
    pub natted_blocklisted: usize,
    pub dynamic_blocklisted: usize,
}

/// The cross-period comparison.
#[derive(Debug, Clone, Serialize)]
pub struct PeriodComparison {
    pub periods: Vec<PeriodSlice>,
    /// Blocklisted addresses present in every period.
    pub recurring_blocklisted: usize,
    /// NATed blocklisted addresses present in every period — gateways whose
    /// users keep getting the address relisted months apart.
    pub recurring_natted: usize,
    /// Share of the pooled NATed∩blocklisted set that recurs.
    pub natted_recurrence_share: f64,
}

/// Split the study's joins by measurement period.
pub fn compare_periods(study: &Study) -> PeriodComparison {
    let natted_all = study.natted_blocklisted();
    let dynamic_all = study.dynamic_blocklisted();

    let per_period: Vec<(TimeWindow, BTreeSet<Ipv4Addr>)> = study
        .config
        .periods
        .iter()
        .map(|&w| {
            let ips: BTreeSet<Ipv4Addr> = study
                .blocklists
                .listings
                .iter()
                .filter(|l| l.start >= w.start && l.start < w.end)
                .map(|l| l.ip)
                .collect();
            (w, ips)
        })
        .collect();

    let periods: Vec<PeriodSlice> = per_period
        .iter()
        .map(|(window, ips)| PeriodSlice {
            window: *window,
            blocklisted: ips.len(),
            natted_blocklisted: ips.iter().filter(|ip| natted_all.contains(**ip)).count(),
            dynamic_blocklisted: ips.iter().filter(|ip| dynamic_all.contains(**ip)).count(),
        })
        .collect();

    let recurring: BTreeSet<Ipv4Addr> = match per_period.split_first() {
        Some(((_, first), rest)) => rest.iter().fold(first.clone(), |acc, (_, ips)| {
            acc.intersection(ips).copied().collect()
        }),
        None => BTreeSet::new(),
    };
    let recurring_natted = recurring
        .iter()
        .filter(|ip| natted_all.contains(**ip))
        .count();

    PeriodComparison {
        periods,
        recurring_blocklisted: recurring.len(),
        recurring_natted,
        natted_recurrence_share: if natted_all.is_empty() {
            0.0
        } else {
            recurring_natted as f64 / natted_all.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use ar_simnet::rng::Seed;

    #[test]
    fn period_slices_partition_the_campaign() {
        let study = crate::Study::run(StudyConfig::quick_test(Seed(909)));
        let cmp = compare_periods(&study);
        assert_eq!(cmp.periods.len(), 2);
        for p in &cmp.periods {
            assert!(p.blocklisted > 0, "each period has listings");
            assert!(p.natted_blocklisted <= p.blocklisted);
            assert!(p.dynamic_blocklisted <= p.blocklisted);
        }
        // Every listing starts inside exactly one period, so slices cover
        // the pooled population.
        let total: usize = cmp.periods.iter().map(|p| p.blocklisted).sum();
        assert!(total >= study.blocklists.all_ips().len());
        // Recurrence is a subset of both periods.
        assert!(cmp.recurring_blocklisted <= cmp.periods[0].blocklisted);
        assert!(cmp.recurring_blocklisted <= cmp.periods[1].blocklisted);
        assert!(cmp.recurring_natted <= cmp.recurring_blocklisted);
        assert!((0.0..=1.0).contains(&cmp.natted_recurrence_share));
    }

    #[test]
    fn recurring_addresses_exist_across_six_months() {
        // Stable infrastructure (hosting abuse, persistent NATs) should
        // reappear across the paper's two windows.
        let study = crate::Study::run(StudyConfig::quick_test(Seed(910)));
        let cmp = compare_periods(&study);
        assert!(
            cmp.recurring_blocklisted > 0,
            "some addresses recur across periods"
        );
    }
}
