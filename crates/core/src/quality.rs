//! Per-blocklist quality scorecard (paper §6).
//!
//! "Our lists can also provide incentives to blocklist maintainers to
//! maintain more accurate blocklists." This module turns the study's
//! joined data into the scorecard a maintainer would receive: how much of
//! the feed is reused address space, how fast the feed churns, how much of
//! it is corroborated by other feeds, and how long entries linger.

use crate::study::Study;
use ar_blocklists::ListId;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One list's quality metrics.
#[derive(Debug, Clone, Serialize)]
pub struct ListScore {
    pub list: ListId,
    pub name: String,
    /// Distinct addresses ever listed during the campaign.
    pub size: usize,
    /// Share of the feed that is detected reused space (NAT or dynamic) —
    /// the overblocking-risk headline.
    pub reused_share: f64,
    /// Share of the feed corroborated by at least one other list.
    pub corroborated_share: f64,
    /// Mean days an entry stays listed.
    pub mean_residency_days: f64,
    /// Listings per distinct address (re-listing churn).
    pub relist_factor: f64,
}

impl ListScore {
    /// Composite overblocking-risk score in [0, 1]: heavy reused share and
    /// low corroboration are what §6 warns about. Weights are a policy
    /// choice, not a measurement — expose and document rather than hide.
    pub fn risk(&self) -> f64 {
        (0.7 * self.reused_share + 0.3 * (1.0 - self.corroborated_share)).clamp(0.0, 1.0)
    }
}

/// Compute every list's scorecard, descending by risk.
pub fn scorecard(study: &Study) -> Vec<ListScore> {
    let natted = study.natted_blocklisted();
    let dynamic = study.dynamic_blocklisted();
    let reused = natted.union(&dynamic);

    // ip → number of lists carrying it (for corroboration).
    let mut list_count: BTreeMap<Ipv4Addr, u32> = BTreeMap::new();
    for meta in &study.blocklists.catalog {
        for ip in study.blocklists.ips_of_list(meta.id) {
            *list_count.entry(ip).or_insert(0) += 1;
        }
    }

    let mut out = Vec::with_capacity(study.blocklists.catalog.len());
    for meta in &study.blocklists.catalog {
        let ips = study.blocklists.ips_of_list(meta.id);
        let size = ips.len();
        if size == 0 {
            out.push(ListScore {
                list: meta.id,
                name: meta.name.clone(),
                size: 0,
                reused_share: 0.0,
                corroborated_share: 0.0,
                mean_residency_days: 0.0,
                relist_factor: 0.0,
            });
            continue;
        }
        let reused_n = ips.intersection_count(&reused);
        let corroborated = ips
            .iter()
            .filter(|ip| list_count.get(ip).copied().unwrap_or(0) >= 2)
            .count();
        let listings: Vec<_> = study
            .blocklists
            .listings
            .iter()
            .filter(|l| l.list == meta.id)
            .collect();
        let mean_days =
            listings.iter().map(|l| l.days() as f64).sum::<f64>() / listings.len().max(1) as f64;
        out.push(ListScore {
            list: meta.id,
            name: meta.name.clone(),
            size,
            reused_share: reused_n as f64 / size as f64,
            corroborated_share: corroborated as f64 / size as f64,
            mean_residency_days: mean_days,
            relist_factor: listings.len() as f64 / size as f64,
        });
    }
    out.sort_by(|a, b| {
        b.risk()
            .partial_cmp(&a.risk())
            .expect("risk is finite")
            .then(a.list.cmp(&b.list))
    });
    out
}

/// Render the maintainer-facing scorecard (top `n` riskiest lists).
pub fn render_scorecard(scores: &[ListScore], n: usize) -> String {
    let mut s = format!(
        "{:<36} {:>6} {:>8} {:>8} {:>9} {:>7}\n",
        "list", "size", "reused", "corrob", "mean-days", "risk"
    );
    for score in scores.iter().filter(|s| s.size > 0).take(n) {
        s.push_str(&format!(
            "{:<36} {:>6} {:>7.1}% {:>7.1}% {:>9.1} {:>7.2}\n",
            score.name,
            score.size,
            100.0 * score.reused_share,
            100.0 * score.corroborated_share,
            score.mean_residency_days,
            score.risk(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use ar_simnet::rng::Seed;
    use std::sync::OnceLock;

    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::run(StudyConfig::quick_test(Seed(606))))
    }

    #[test]
    fn scorecard_covers_every_list_and_is_risk_sorted() {
        let scores = scorecard(study());
        assert_eq!(scores.len(), 151);
        for w in scores.windows(2) {
            assert!(w[0].risk() >= w[1].risk());
        }
        for s in &scores {
            assert!((0.0..=1.0).contains(&s.reused_share));
            assert!((0.0..=1.0).contains(&s.corroborated_share));
            assert!(s.relist_factor >= 0.0);
        }
    }

    #[test]
    fn populated_lists_have_meaningful_metrics() {
        let scores = scorecard(study());
        let populated: Vec<_> = scores.iter().filter(|s| s.size > 0).collect();
        assert!(!populated.is_empty());
        // At least one list carries reused space in a quick study.
        assert!(populated.iter().any(|s| s.reused_share > 0.0));
        // Residency of populated lists is positive and bounded by the
        // window.
        for s in &populated {
            assert!(s.mean_residency_days > 0.0);
            assert!(s.mean_residency_days <= 14.0 + 1.0);
            assert!(s.relist_factor >= 1.0, "{}: {}", s.name, s.relist_factor);
        }
    }

    #[test]
    fn render_lists_riskiest_first() {
        let scores = scorecard(study());
        let text = render_scorecard(&scores, 5);
        assert!(text.lines().count() <= 6);
        let first_risky = scores.iter().find(|s| s.size > 0).unwrap();
        assert!(text.contains(&first_risky.name));
    }
}
