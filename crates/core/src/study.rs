//! The study orchestrator: run the whole measurement campaign.
//!
//! [`Study::run`] reproduces the paper's end-to-end flow on one seeded
//! universe:
//!
//! 1. collect the blocklist dataset over the two measurement periods (§4);
//! 2. crawl the BitTorrent DHT during each period, restricted — like the
//!    paper's crawler — to the blocklisted address space (§3.1);
//! 3. run the RIPE-Atlas pipeline over the 16-month connection log (§3.2);
//! 4. run the Cai-et-al. ICMP census baseline (§5).
//!
//! The result object exposes the joined views every figure and table is
//! computed from.

use ar_atlas::{detect_dynamic, generate_fleet, ConnectionLog, DynamicDetection, PipelineConfig};
use ar_blocklists::{build_catalog, generate_dataset, BlocklistDataset};
use ar_census::{run_census, CensusReport, Classifier, SurveyConfig};
use ar_crawler::{crawl, CrawlConfig, CrawlReport, Scope};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::ip::Prefix24;
use ar_simnet::rng::Seed;
use ar_simnet::time::{TimeWindow, ATLAS_WINDOW, PERIOD_1, PERIOD_2};
use ar_simnet::universe::Universe;
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Full study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub seed: Seed,
    pub universe: UniverseConfig,
    /// Blocklist collection + crawl periods (default: the paper's two).
    pub periods: Vec<TimeWindow>,
    /// Restrict the crawler to blocklisted /24s (the paper's politeness
    /// restriction). Disabling widens coverage at probe cost.
    pub restrict_crawl: bool,
    /// Atlas pipeline settings (ablations override).
    pub pipeline: PipelineConfig,
    /// Census classifier thresholds.
    pub census_classifier: Classifier,
    /// Skip the bt_ping verification round (ablation).
    pub disable_ping_verification: bool,
}

impl StudyConfig {
    /// The paper's configuration at a given universe scale.
    pub fn paper(seed: Seed, universe: UniverseConfig) -> Self {
        StudyConfig {
            seed,
            universe,
            periods: vec![PERIOD_1, PERIOD_2],
            restrict_crawl: true,
            pipeline: PipelineConfig::default(),
            census_classifier: Classifier::default(),
            disable_ping_verification: false,
        }
    }

    /// Fast configuration for tests: tiny universe, two-week windows
    /// (shorter windows clip listing durations so hard that Figure 7's
    /// orderings drown in truncation noise).
    pub fn quick_test(seed: Seed) -> Self {
        use ar_simnet::time::{date, SimDuration};
        let w1 = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 17));
        let w2 =
            TimeWindow::new(date(2020, 3, 29), date(2020, 3, 29) + SimDuration::from_days(14));
        StudyConfig {
            periods: vec![w1, w2],
            ..Self::paper(seed, UniverseConfig::tiny())
        }
    }

    /// Distribution-shape test configuration: a `small` universe with
    /// two-week windows. Tiny universes leave the blocklisted∩reused joins
    /// with a few dozen members — pure noise for CDF-shape assertions —
    /// while this size keeps Figures 7/8's orderings stable across seeds
    /// at a few seconds' cost.
    pub fn shape_test(seed: Seed) -> Self {
        StudyConfig {
            universe: UniverseConfig::small(),
            ..Self::quick_test(seed)
        }
    }
}

/// Everything the measurement campaign produced.
pub struct Study {
    pub config: StudyConfig,
    pub universe: Universe,
    /// Observable-host allocation plan per period (shared by all
    /// substrates so cross-dataset addresses line up).
    pub plans: Vec<(TimeWindow, AllocationPlan)>,
    pub blocklists: BlocklistDataset,
    /// One crawl report per period.
    pub crawls: Vec<CrawlReport>,
    /// The 16-month Atlas log and its detection output.
    pub atlas_log: ConnectionLog,
    pub atlas: DynamicDetection,
    pub census: CensusReport,
}

impl Study {
    /// Run the full campaign. Deterministic in `config`.
    pub fn run(config: StudyConfig) -> Study {
        let universe = Universe::generate(config.seed, &config.universe);

        // Per-period allocation plans for everything observable.
        let plans: Vec<(TimeWindow, AllocationPlan)> = config
            .periods
            .iter()
            .map(|&p| (p, AllocationPlan::build(&universe, p, InterestSet::Observable)))
            .collect();

        // 1. Blocklists (defines the crawl scope, as BLAG did for the
        //    paper's crawler).
        let plan_refs: Vec<(TimeWindow, &AllocationPlan)> =
            plans.iter().map(|(w, a)| (*w, a)).collect();
        let blocklists = generate_dataset(&universe, &plan_refs, build_catalog());

        // 2. DHT crawls.
        let scope_prefixes: HashSet<Prefix24> = blocklists
            .all_ips()
            .into_iter()
            .map(Prefix24::of)
            .collect();
        let mut crawls = Vec::new();
        for (window, plan) in &plans {
            let mut net = SimNetwork::new(&universe, plan, SimParams::default());
            let mut crawl_config = CrawlConfig::new(*window);
            if config.restrict_crawl {
                crawl_config = crawl_config.with_scope(Scope::Prefixes(scope_prefixes.clone()));
            }
            crawl_config.disable_ping_verification = config.disable_ping_verification;
            crawls.push(crawl(&mut net, &crawl_config));
        }

        // 3. Atlas pipeline over the long window.
        let atlas_alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
        let (_probes, atlas_log) = generate_fleet(&universe, &atlas_alloc, ATLAS_WINDOW);
        let atlas = detect_dynamic(&atlas_log, &config.pipeline, |ip| universe.asn_of(ip));

        // 4. Census baseline (surveys during the second period, like the
        //    IT89w dataset the paper matched to its window).
        let census_window = SurveyConfig::two_weeks_from(config.periods.last().map_or(
            PERIOD_2.start,
            |w| w.start,
        ));
        let census = run_census(&universe, &census_window, &config.census_classifier);

        Study {
            config,
            universe,
            plans,
            blocklists,
            crawls,
            atlas_log,
            atlas,
            census,
        }
    }

    // ---- joined views -------------------------------------------------------

    /// Every IP the crawler confirmed as NATed, across periods.
    pub fn natted_ips(&self) -> HashSet<Ipv4Addr> {
        self.crawls
            .iter()
            .flat_map(|c| c.natted_ips())
            .collect()
    }

    /// Every IP seen running BitTorrent.
    pub fn bittorrent_ips(&self) -> HashSet<Ipv4Addr> {
        self.crawls
            .iter()
            .flat_map(|c| c.bittorrent_ips())
            .collect()
    }

    /// Lower bound on users behind a NATed IP (max across periods).
    pub fn nat_user_bound(&self, ip: Ipv4Addr) -> Option<u32> {
        self.crawls
            .iter()
            .filter_map(|c| c.user_lower_bound(ip))
            .max()
    }

    /// Blocklisted ∩ NATed (the paper's 29.7K).
    pub fn natted_blocklisted(&self) -> HashSet<Ipv4Addr> {
        let blocklisted = self.blocklists.all_ips();
        self.natted_ips()
            .into_iter()
            .filter(|ip| blocklisted.contains(ip))
            .collect()
    }

    /// Blocklisted addresses inside the detected dynamic space (the
    /// paper's 22.7K).
    pub fn dynamic_blocklisted(&self) -> HashSet<Ipv4Addr> {
        self.blocklists
            .all_ips()
            .into_iter()
            .filter(|ip| self.atlas.covers(*ip))
            .collect()
    }

    /// Blocklisted addresses inside census-detected dynamic blocks (the
    /// paper's Cai-et-al. comparison, 29.8K listings).
    pub fn census_blocklisted(&self) -> HashSet<Ipv4Addr> {
        self.blocklists
            .all_ips()
            .into_iter()
            .filter(|ip| self.census.covers(*ip))
            .collect()
    }

    /// Blocklisted addresses inside each Atlas pipeline stage's prefix set
    /// (Figure 4's right funnel: 53.7K → 34.4K → 33.1K → 22.7K).
    pub fn atlas_funnel_blocklisted(&self) -> BTreeMap<&'static str, usize> {
        let blocklisted = self.blocklists.all_ips();
        let count_in = |prefixes: &std::collections::BTreeSet<Prefix24>| {
            blocklisted
                .iter()
                .filter(|ip| prefixes.contains(&Prefix24::of(**ip)))
                .count()
        };
        let mut map = BTreeMap::new();
        map.insert("0 all RIPE prefixes", count_in(&self.atlas.all.prefixes));
        map.insert("1 same-AS", count_in(&self.atlas.same_as.prefixes));
        map.insert("2 frequent", count_in(&self.atlas.frequent.prefixes));
        map.insert("3 daily", count_in(&self.atlas.daily.prefixes));
        map
    }

    /// Merged crawl statistics.
    pub fn crawl_totals(&self) -> ar_crawler::CrawlStats {
        let mut total = ar_crawler::CrawlStats::default();
        for c in &self.crawls {
            total.get_nodes_sent += c.stats.get_nodes_sent;
            total.pings_sent += c.stats.pings_sent;
            total.replies_received += c.stats.replies_received;
            total.unique_ips += c.stats.unique_ips;
            total.unique_node_ids += c.stats.unique_node_ids;
            total.multiport_ips += c.stats.multiport_ips;
            total.natted_ips += c.stats.natted_ips;
            total.ping_rounds += c.stats.ping_rounds;
        }
        total
    }
}
