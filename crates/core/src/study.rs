//! The study orchestrator: run the whole measurement campaign.
//!
//! [`Study::run`] reproduces the paper's end-to-end flow on one seeded
//! universe:
//!
//! 1. collect the blocklist dataset over the two measurement periods (§4);
//! 2. crawl the BitTorrent DHT during each period, restricted — like the
//!    paper's crawler — to the blocklisted address space (§3.1);
//! 3. run the RIPE-Atlas pipeline over the 16-month connection log (§3.2);
//! 4. run the Cai-et-al. ICMP census baseline (§5).
//!
//! The result object exposes the joined views every figure and table is
//! computed from.
//!
//! ## Parallel orchestration
//!
//! The substrates are independent once the universe exists: each per-period
//! DHT crawl owns its own [`SimNetwork`], the Atlas fleet and the ICMP
//! census touch only the universe, and the blocklist dataset feeds nothing
//! but the crawl scope. [`Study::run`] therefore fans them out over scoped
//! threads — census and Atlas start immediately, crawls as soon as the
//! blocklist dataset (their scope) exists — and joins in a fixed order.
//! Every component is seeded per task, so the assembled `Study` is
//! byte-identical to a serial run for any thread count (`AR_THREADS=1`
//! forces the serial path).

use ar_atlas::{detect_dynamic, generate_fleet, ConnectionLog, DynamicDetection, PipelineConfig};
use ar_blocklists::{build_catalog, generate_dataset_threaded, BlocklistDataset};
use ar_census::{run_census, CensusReport, Classifier, SurveyConfig};
use ar_crawler::{crawl, CrawlConfig, CrawlReport, Scope};
use ar_dht::{SimNetwork, SimParams};
use ar_index::{weighted_prefix_intersection, IpSet, PrefixSet};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::ip::Prefix24;
use ar_simnet::par;
use ar_simnet::rng::Seed;
use ar_simnet::time::{TimeWindow, ATLAS_WINDOW, PERIOD_1, PERIOD_2};
use ar_simnet::universe::Universe;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

/// Full study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub seed: Seed,
    pub universe: UniverseConfig,
    /// Blocklist collection + crawl periods (default: the paper's two).
    pub periods: Vec<TimeWindow>,
    /// Restrict the crawler to blocklisted /24s (the paper's politeness
    /// restriction). Disabling widens coverage at probe cost.
    pub restrict_crawl: bool,
    /// Atlas pipeline settings (ablations override).
    pub pipeline: PipelineConfig,
    /// Census classifier thresholds.
    pub census_classifier: Classifier,
    /// Skip the bt_ping verification round (ablation).
    pub disable_ping_verification: bool,
    /// Worker threads for the orchestrator and its inner fan-outs. `None`
    /// resolves via `AR_THREADS`, then available parallelism; `Some(1)`
    /// forces the fully serial path. Results are identical either way.
    pub threads: Option<usize>,
}

impl StudyConfig {
    /// The paper's configuration at a given universe scale.
    pub fn paper(seed: Seed, universe: UniverseConfig) -> Self {
        StudyConfig {
            seed,
            universe,
            periods: vec![PERIOD_1, PERIOD_2],
            restrict_crawl: true,
            pipeline: PipelineConfig::default(),
            census_classifier: Classifier::default(),
            disable_ping_verification: false,
            threads: None,
        }
    }

    /// Fast configuration for tests: tiny universe, two-week windows
    /// (shorter windows clip listing durations so hard that Figure 7's
    /// orderings drown in truncation noise).
    pub fn quick_test(seed: Seed) -> Self {
        use ar_simnet::time::{date, SimDuration};
        let w1 = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 17));
        let w2 =
            TimeWindow::new(date(2020, 3, 29), date(2020, 3, 29) + SimDuration::from_days(14));
        StudyConfig {
            periods: vec![w1, w2],
            ..Self::paper(seed, UniverseConfig::tiny())
        }
    }

    /// Distribution-shape test configuration: a `small` universe with
    /// two-week windows. Tiny universes leave the blocklisted∩reused joins
    /// with a few dozen members — pure noise for CDF-shape assertions —
    /// while this size keeps Figures 7/8's orderings stable across seeds
    /// at a few seconds' cost.
    pub fn shape_test(seed: Seed) -> Self {
        StudyConfig {
            universe: UniverseConfig::small(),
            ..Self::quick_test(seed)
        }
    }
}

/// Per-phase wall-clock of one [`Study::run`], in seconds.
///
/// Phase entries measure the time spent *inside* each task (crawls: summed
/// over periods), wherever the task ran; `total` is the end-to-end
/// wall-clock of `run`. In a parallel run `total` is less than the sum of
/// the phases — that gap is the orchestrator's win.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StudyTimings {
    pub blocklists: f64,
    pub crawls: f64,
    pub atlas: f64,
    pub census: f64,
    pub total: f64,
}

/// Everything the measurement campaign produced.
pub struct Study {
    pub config: StudyConfig,
    pub universe: Universe,
    /// Observable-host allocation plan per period (shared by all
    /// substrates so cross-dataset addresses line up).
    pub plans: Vec<(TimeWindow, AllocationPlan)>,
    pub blocklists: BlocklistDataset,
    /// One crawl report per period.
    pub crawls: Vec<CrawlReport>,
    /// The 16-month Atlas log and its detection output.
    pub atlas_log: ConnectionLog,
    pub atlas: DynamicDetection,
    pub census: CensusReport,
    /// Where the wall-clock went.
    pub timings: StudyTimings,
}

impl Study {
    /// Run the full campaign. Deterministic in `config`: the output is
    /// byte-identical for every thread count.
    pub fn run(config: StudyConfig) -> Study {
        let run_start = Instant::now();
        let threads = par::resolve(config.threads);
        let universe = Universe::generate(config.seed, &config.universe);

        // Per-period allocation plans for everything observable.
        let plans: Vec<(TimeWindow, AllocationPlan)> = config
            .periods
            .iter()
            .map(|&p| (p, AllocationPlan::build(&universe, p, InterestSet::Observable)))
            .collect();

        // Inner fan-outs (per-list feeds, per-probe summaries) inherit the
        // resolved budget unless the pipeline config pinned its own.
        let mut pipeline = config.pipeline.clone();
        if pipeline.threads.is_none() {
            pipeline.threads = Some(threads);
        }

        // Census surveys during the second period, like the IT89w dataset
        // the paper matched to its window.
        let census_window = SurveyConfig::two_weeks_from(
            config.periods.last().map_or(PERIOD_2.start, |w| w.start),
        );

        let mut timings = StudyTimings::default();
        let (blocklists, crawls, atlas_log, atlas, census);

        if threads <= 1 {
            // Serial path: the original phase order, one thread.
            let t = Instant::now();
            let plan_refs: Vec<(TimeWindow, &AllocationPlan)> =
                plans.iter().map(|(w, a)| (*w, a)).collect();
            blocklists = generate_dataset_threaded(&universe, &plan_refs, build_catalog(), 1);
            timings.blocklists = t.elapsed().as_secs_f64();

            let scope = crawl_scope(&config, &blocklists);
            let t = Instant::now();
            let mut out = Vec::with_capacity(plans.len());
            for (window, plan) in &plans {
                out.push(crawl_period(&universe, &config, *window, plan, scope.as_ref()));
            }
            crawls = out;
            timings.crawls = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let (log, detection) = atlas_task(&universe, &pipeline);
            atlas_log = log;
            atlas = detection;
            timings.atlas = t.elapsed().as_secs_f64();

            let t = Instant::now();
            census = run_census(&universe, &census_window, &config.census_classifier);
            timings.census = t.elapsed().as_secs_f64();
        } else {
            // Parallel path. Atlas and census depend only on the universe,
            // so they start immediately; the main thread builds the
            // blocklist dataset (itself fanned out per list), then launches
            // one crawl task per period against the shared scope index.
            // Joins happen in a fixed order (crawls by period, then atlas,
            // then census), so assembly is schedule-independent.
            (blocklists, crawls, atlas_log, atlas, census) = std::thread::scope(|s| {
                let atlas_handle = s.spawn(|| {
                    let t = Instant::now();
                    let out = atlas_task(&universe, &pipeline);
                    (out, t.elapsed().as_secs_f64())
                });
                let census_handle = s.spawn(|| {
                    let t = Instant::now();
                    let out = run_census(&universe, &census_window, &config.census_classifier);
                    (out, t.elapsed().as_secs_f64())
                });

                let t = Instant::now();
                let plan_refs: Vec<(TimeWindow, &AllocationPlan)> =
                    plans.iter().map(|(w, a)| (*w, a)).collect();
                let blocklists =
                    generate_dataset_threaded(&universe, &plan_refs, build_catalog(), threads);
                timings.blocklists = t.elapsed().as_secs_f64();

                let scope = crawl_scope(&config, &blocklists);
                let crawl_handles: Vec<_> = plans
                    .iter()
                    .map(|(window, plan)| {
                        let scope = scope.clone();
                        let universe = &universe;
                        let config = &config;
                        s.spawn(move || {
                            let t = Instant::now();
                            let out =
                                crawl_period(universe, config, *window, plan, scope.as_ref());
                            (out, t.elapsed().as_secs_f64())
                        })
                    })
                    .collect();

                let mut crawls = Vec::with_capacity(crawl_handles.len());
                for handle in crawl_handles {
                    let (report, secs) = handle.join().expect("crawl task panicked");
                    crawls.push(report);
                    timings.crawls += secs;
                }
                let ((atlas_log, atlas), atlas_secs) =
                    atlas_handle.join().expect("atlas task panicked");
                timings.atlas = atlas_secs;
                let (census, census_secs) =
                    census_handle.join().expect("census task panicked");
                timings.census = census_secs;

                (blocklists, crawls, atlas_log, atlas, census)
            });
        }
        timings.total = run_start.elapsed().as_secs_f64();

        Study {
            config,
            universe,
            plans,
            blocklists,
            crawls,
            atlas_log,
            atlas,
            census,
            timings,
        }
    }

    // ---- joined views -------------------------------------------------------

    /// Every IP the crawler confirmed as NATed, across periods.
    pub fn natted_ips(&self) -> IpSet {
        self.crawls.iter().flat_map(|c| c.natted_ips()).collect()
    }

    /// Every IP seen running BitTorrent.
    pub fn bittorrent_ips(&self) -> IpSet {
        self.crawls.iter().flat_map(|c| c.bittorrent_ips()).collect()
    }

    /// Lower bound on users behind a NATed IP (max across periods).
    pub fn nat_user_bound(&self, ip: Ipv4Addr) -> Option<u32> {
        self.crawls
            .iter()
            .filter_map(|c| c.user_lower_bound(ip))
            .max()
    }

    /// Blocklisted ∩ NATed (the paper's 29.7K) — a single linear merge of
    /// the two sorted indexes.
    pub fn natted_blocklisted(&self) -> IpSet {
        self.blocklists.all_ips().intersect(&self.natted_ips())
    }

    /// Blocklisted addresses inside the detected dynamic space (the
    /// paper's 22.7K): merge-join against the dynamic /24s, plus the exact
    /// addresses when prefix expansion is disabled.
    pub fn dynamic_blocklisted(&self) -> IpSet {
        let blocklisted = self.blocklists.all_ips();
        let by_prefix =
            PrefixSet::from_sorted(&self.atlas.dynamic_prefixes).covered(blocklisted);
        if self.atlas.dynamic_addresses.is_empty() {
            return by_prefix;
        }
        let addresses: IpSet = self.atlas.dynamic_addresses.iter().copied().collect();
        by_prefix.union(&blocklisted.intersect(&addresses))
    }

    /// Blocklisted addresses inside census-detected dynamic blocks (the
    /// paper's Cai-et-al. comparison, 29.8K listings).
    pub fn census_blocklisted(&self) -> IpSet {
        PrefixSet::from_sorted(&self.census.dynamic_blocks)
            .covered(self.blocklists.all_ips())
    }

    /// Blocklisted addresses inside each Atlas pipeline stage's prefix set
    /// (Figure 4's right funnel: 53.7K → 34.4K → 33.1K → 22.7K).
    ///
    /// One histogram pass converts every blocklisted IP to its /24 exactly
    /// once; each stage is then a two-pointer join over the histogram.
    pub fn atlas_funnel_blocklisted(&self) -> BTreeMap<&'static str, usize> {
        let hist = self.blocklists.all_ips().prefix_histogram();
        let count_in = |prefixes: &std::collections::BTreeSet<Prefix24>| {
            weighted_prefix_intersection(&hist, prefixes.iter().copied()) as usize
        };
        let mut map = BTreeMap::new();
        map.insert("0 all RIPE prefixes", count_in(&self.atlas.all.prefixes));
        map.insert("1 same-AS", count_in(&self.atlas.same_as.prefixes));
        map.insert("2 frequent", count_in(&self.atlas.frequent.prefixes));
        map.insert("3 daily", count_in(&self.atlas.daily.prefixes));
        map
    }

    /// Merged crawl statistics.
    pub fn crawl_totals(&self) -> ar_crawler::CrawlStats {
        let mut total = ar_crawler::CrawlStats::default();
        for c in &self.crawls {
            total += &c.stats;
        }
        total
    }
}

// ---- run() task bodies (shared by the serial and parallel paths) -----------

/// The crawler's address-space restriction: the /24s of every blocklisted
/// IP, built once and shared across periods via `Arc`.
fn crawl_scope(config: &StudyConfig, blocklists: &BlocklistDataset) -> Option<Arc<PrefixSet>> {
    config
        .restrict_crawl
        .then(|| Arc::new(blocklists.all_ips().prefixes()))
}

/// One period's DHT crawl, on its own `SimNetwork`.
fn crawl_period(
    universe: &Universe,
    config: &StudyConfig,
    window: TimeWindow,
    plan: &AllocationPlan,
    scope: Option<&Arc<PrefixSet>>,
) -> CrawlReport {
    let mut net = SimNetwork::new(universe, plan, SimParams::default());
    let mut crawl_config = CrawlConfig::new(window);
    if let Some(prefixes) = scope {
        crawl_config = crawl_config.with_scope(Scope::Prefixes(Arc::clone(prefixes)));
    }
    crawl_config.disable_ping_verification = config.disable_ping_verification;
    crawl(&mut net, &crawl_config)
}

/// The Atlas leg: fleet simulation over the long window, then the
/// detection pipeline.
fn atlas_task(universe: &Universe, pipeline: &PipelineConfig) -> (ConnectionLog, DynamicDetection) {
    let atlas_alloc = AllocationPlan::build(universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, atlas_log) = generate_fleet(universe, &atlas_alloc, ATLAS_WINDOW);
    let atlas = detect_dynamic(&atlas_log, pipeline, |ip| universe.asn_of(ip));
    (atlas_log, atlas)
}
