//! The study orchestrator: run the whole measurement campaign.
//!
//! [`Study::run`] reproduces the paper's end-to-end flow on one seeded
//! universe:
//!
//! 1. collect the blocklist dataset over the two measurement periods (§4);
//! 2. crawl the BitTorrent DHT during each period, restricted — like the
//!    paper's crawler — to the blocklisted address space (§3.1);
//! 3. run the RIPE-Atlas pipeline over the 16-month connection log (§3.2);
//! 4. run the Cai-et-al. ICMP census baseline (§5).
//!
//! The result object exposes the joined views every figure and table is
//! computed from.
//!
//! ## Parallel orchestration
//!
//! The substrates are independent once the universe exists: each per-period
//! DHT crawl owns its own fabric, the Atlas fleet and the ICMP census touch
//! only the universe, and the blocklist dataset feeds nothing but the crawl
//! scope. [`Study::run`] builds the blocklist dataset first (itself fanned
//! out per feed), then hands the thread budget to the crawls — each period
//! runs the internally partitioned crawler (`crawl_sharded`), whose shards
//! spread over the period's worker slice — while the sub-second Atlas and
//! census phases run inline on the orchestrator thread (spawning them was
//! measured *slower* than filling the main thread's idle time). Joins
//! happen in a fixed order. Every component is seeded per task and the
//! sharded crawl's partition layout is fixed in config, so the assembled
//! `Study` is byte-identical for any thread count (`AR_THREADS=1` forces
//! the fully serial path). An explicit thread request is honoured even
//! above the host's real parallelism — oversubscription just time-slices,
//! and determinism suites rely on genuinely spawning N workers on small
//! hosts; only the ambient default is sized to the machine.

use ar_atlas::{
    apply_atlas_gaps, detect_dynamic, generate_fleet, ConnectionLog, DynamicDetection,
    PipelineConfig, StageSet,
};
use ar_blocklists::{
    build_catalog, dataset_via_faulted_snapshots, generate_dataset_threaded, BlocklistDataset,
};
use ar_census::{run_census_with_faults, CensusReport, Classifier, SurveyConfig};
use ar_crawler::{
    crawl, crawl_sharded, crawl_until, resume, resume_until, CrawlConfig, CrawlReport, RetryPolicy,
    Scope,
};
use ar_dht::{FaultyTransport, ShardedSimNetwork, SimNetwork, SimParams};
use ar_faults::{FaultDomain, FaultPlan, FaultSpec};
use ar_index::{weighted_prefix_intersection, IpSet, PrefixSet};
use ar_obs::{EventKind, Obs, RunReport};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::asn::Asn;
use ar_simnet::config::UniverseConfig;
use ar_simnet::ip::Prefix24;
use ar_simnet::par;
use ar_simnet::rng::Seed;
use ar_simnet::time::{TimeWindow, ATLAS_WINDOW, PERIOD_1, PERIOD_2};
use ar_simnet::universe::Universe;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// How many consecutive missed snapshot days the gap-tolerant listing
/// reconstruction will interpolate across before splitting a listing.
pub const FEED_GAP_BRIDGE_DAYS: u64 = 3;

/// Full study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub seed: Seed,
    pub universe: UniverseConfig,
    /// Blocklist collection + crawl periods (default: the paper's two).
    pub periods: Vec<TimeWindow>,
    /// Restrict the crawler to blocklisted /24s (the paper's politeness
    /// restriction). Disabling widens coverage at probe cost.
    pub restrict_crawl: bool,
    /// Atlas pipeline settings (ablations override).
    pub pipeline: PipelineConfig,
    /// Census classifier thresholds.
    pub census_classifier: Classifier,
    /// Skip the bt_ping verification round (ablation).
    pub disable_ping_verification: bool,
    /// Worker threads for the orchestrator and its inner fan-outs. `None`
    /// resolves via `AR_THREADS`, then available parallelism; `Some(1)`
    /// forces the fully serial path. Results are identical either way.
    pub threads: Option<usize>,
    /// Correlated-failure injection. `None` (the default) and a
    /// zero-intensity spec both leave every phase on its unfaulted code
    /// path, byte-identical to a fault-free study.
    pub faults: Option<FaultSpec>,
    /// Retry policy for the crawler's bt_ping verification sends. The
    /// default is off (single send); [`RetryPolicy::resilient`] rides out
    /// injected loss bursts at extra probe cost.
    pub ping_retry: RetryPolicy,
    /// Collect metrics, phase spans and events into [`Study::run_report`]
    /// (the default). Instrumentation only observes — study output is
    /// byte-identical with it on or off; disabling merely skips the
    /// bookkeeping.
    pub collect_metrics: bool,
}

impl StudyConfig {
    /// The paper's configuration at a given universe scale.
    pub fn paper(seed: Seed, universe: UniverseConfig) -> Self {
        StudyConfig {
            seed,
            universe,
            periods: vec![PERIOD_1, PERIOD_2],
            restrict_crawl: true,
            pipeline: PipelineConfig::default(),
            census_classifier: Classifier::default(),
            disable_ping_verification: false,
            threads: None,
            faults: None,
            ping_retry: RetryPolicy::default(),
            collect_metrics: true,
        }
    }

    /// Fast configuration for tests: tiny universe, two-week windows
    /// (shorter windows clip listing durations so hard that Figure 7's
    /// orderings drown in truncation noise).
    pub fn quick_test(seed: Seed) -> Self {
        use ar_simnet::time::{date, SimDuration};
        let w1 = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 17));
        let w2 = TimeWindow::new(
            date(2020, 3, 29),
            date(2020, 3, 29) + SimDuration::from_days(14),
        );
        StudyConfig {
            periods: vec![w1, w2],
            ..Self::paper(seed, UniverseConfig::tiny())
        }
    }

    /// Distribution-shape test configuration: a `small` universe with
    /// two-week windows. Tiny universes leave the blocklisted∩reused joins
    /// with a few dozen members — pure noise for CDF-shape assertions —
    /// while this size keeps Figures 7/8's orderings stable across seeds
    /// at a few seconds' cost.
    pub fn shape_test(seed: Seed) -> Self {
        StudyConfig {
            universe: UniverseConfig::small(),
            ..Self::quick_test(seed)
        }
    }
}

/// Per-phase wall-clock of one [`Study::run`], in seconds.
///
/// Phase entries measure the time spent *inside* each task (crawls: summed
/// over periods), wherever the task ran; `total` is the end-to-end
/// wall-clock of `run`. In a parallel run `total` is less than the sum of
/// the phases — that gap is the orchestrator's win.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StudyTimings {
    pub blocklists: f64,
    pub crawls: f64,
    /// Wall-clock of the crawl phase as a whole: launch of the first
    /// period's crawl until the last one joined. Equal to `crawls` when
    /// serial; in a parallel run this is what the concurrent periods and
    /// the intra-crawl shard workers actually bought (the orchestrator
    /// thread also completes the inline atlas/census phases inside this
    /// window, so it is an upper bound on pure crawl wall time).
    pub crawls_wall: f64,
    pub atlas: f64,
    pub census: f64,
    pub total: f64,
}

/// Outcome of one study phase under fault injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PhaseStatus {
    /// Ran clean (the only status a fault-free study ever reports).
    Ok,
    /// Completed, but faults bit: data was lost, interpolated, or recovered
    /// via checkpoint/resume. The string says what and how much.
    Degraded(String),
    /// The phase itself blew up; the study carries an empty placeholder
    /// result for it instead of aborting the campaign.
    Failed(String),
}

impl PhaseStatus {
    pub fn is_ok(&self) -> bool {
        matches!(self, PhaseStatus::Ok)
    }
}

/// Per-phase health of a study run. A fault-free run is all-`Ok`; injected
/// faults surface here as `Degraded` annotations rather than panics.
#[derive(Debug, Clone, Serialize)]
pub struct StudyHealth {
    pub blocklists: PhaseStatus,
    /// One status per crawl period.
    pub crawls: Vec<PhaseStatus>,
    pub atlas: PhaseStatus,
    pub census: PhaseStatus,
}

impl StudyHealth {
    fn clean(periods: usize) -> Self {
        StudyHealth {
            blocklists: PhaseStatus::Ok,
            crawls: vec![PhaseStatus::Ok; periods],
            atlas: PhaseStatus::Ok,
            census: PhaseStatus::Ok,
        }
    }

    pub fn is_clean(&self) -> bool {
        self.blocklists.is_ok()
            && self.crawls.iter().all(PhaseStatus::is_ok)
            && self.atlas.is_ok()
            && self.census.is_ok()
    }

    /// Every non-Ok phase as a `"phase: reason"` line, in phase order.
    pub fn degraded_reasons(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |phase: String, status: &PhaseStatus| match status {
            PhaseStatus::Ok => {}
            PhaseStatus::Degraded(why) => out.push(format!("{phase} degraded: {why}")),
            PhaseStatus::Failed(why) => out.push(format!("{phase} FAILED: {why}")),
        };
        push("blocklists".into(), &self.blocklists);
        for (i, c) in self.crawls.iter().enumerate() {
            push(format!("crawl[{i}]"), c);
        }
        push("atlas".into(), &self.atlas);
        push("census".into(), &self.census);
        out
    }

    /// Every phase with its status, in phase order — the flat view the
    /// run report records.
    pub fn entries(&self) -> Vec<(String, &PhaseStatus)> {
        let mut out = vec![("blocklists".to_string(), &self.blocklists)];
        for (i, c) in self.crawls.iter().enumerate() {
            out.push((format!("crawl[{i}]"), c));
        }
        out.push(("atlas".to_string(), &self.atlas));
        out.push(("census".to_string(), &self.census));
        out
    }

    /// Record every phase verdict — including *why* the degraded ones
    /// degraded — into the registry, emitting one event per non-Ok phase.
    fn record_obs(&self, obs: &Obs) {
        for (phase, status) in self.entries() {
            match status {
                PhaseStatus::Ok => obs.set_phase_health(&phase, "ok", ""),
                PhaseStatus::Degraded(why) => {
                    obs.set_phase_health(&phase, "degraded", why);
                    obs.event(&phase, EventKind::PhaseDegraded, None, 1, why.clone());
                }
                PhaseStatus::Failed(why) => {
                    obs.set_phase_health(&phase, "failed", why);
                    obs.event(&phase, EventKind::PhaseFailed, None, 1, why.clone());
                }
            }
        }
    }
}

/// Everything the measurement campaign produced.
pub struct Study {
    pub config: StudyConfig,
    pub universe: Universe,
    /// Observable-host allocation plan per period (shared by all
    /// substrates so cross-dataset addresses line up).
    pub plans: Vec<(TimeWindow, AllocationPlan)>,
    pub blocklists: BlocklistDataset,
    /// One crawl report per period.
    pub crawls: Vec<CrawlReport>,
    /// The 16-month Atlas log and its detection output.
    pub atlas_log: ConnectionLog,
    pub atlas: DynamicDetection,
    pub census: CensusReport,
    /// The fault schedule this run executed under (`None` = fault-free).
    pub fault_plan: Option<FaultPlan>,
    /// What survived, what degraded, what failed.
    pub health: StudyHealth,
    /// Where the wall-clock went.
    pub timings: StudyTimings,
    /// Metrics, phase spans, events and per-phase health collected during
    /// the run (`None` when `collect_metrics` is off). Apart from span
    /// timings, identical for every thread count.
    pub run_report: Option<RunReport>,
}

impl Study {
    /// Run the full campaign. Deterministic in `config`: the output is
    /// byte-identical for every thread count.
    pub fn run(config: StudyConfig) -> Study {
        let run_start = Instant::now();
        // Honour an explicit thread request even above the host's real
        // parallelism: oversubscribed workers merely time-slice, artifacts
        // are thread-count invariant either way, and the determinism suites
        // must genuinely spawn N workers even on small hosts. The ambient
        // default (no config, no AR_THREADS) already resolves to
        // `available_parallelism`; bench_study flags oversubscribed runs.
        let threads = par::resolve(config.threads).max(1);
        let obs = if config.collect_metrics {
            Obs::new()
        } else {
            Obs::disabled()
        };
        let universe = Universe::generate(config.seed, &config.universe);

        // The fault schedule, derived from its own forked seed so enabling
        // (or re-seeding) it never shifts any consumer RNG stream. `None`
        // stays `None`; a zero-intensity spec yields an empty plan and every
        // phase below takes its unfaulted code path.
        let fault_plan: Option<FaultPlan> = config.faults.as_ref().map(|spec| {
            let mut asns: Vec<Asn> = universe.prefixes.iter().map(|r| r.asn).collect();
            asns.sort_unstable();
            asns.dedup();
            let domain = FaultDomain {
                asns,
                periods: config.periods.clone(),
                atlas_window: ATLAS_WINDOW,
                feed_count: build_catalog().len() as u16,
            };
            FaultPlan::generate(spec.seed, &spec.config, &domain)
        });
        let faults = fault_plan.as_ref();

        // Per-period allocation plans for everything observable.
        let plans: Vec<(TimeWindow, AllocationPlan)> = config
            .periods
            .iter()
            .map(|&p| {
                (
                    p,
                    AllocationPlan::build(&universe, p, InterestSet::Observable),
                )
            })
            .collect();

        // Inner fan-outs (per-list feeds, per-probe summaries) inherit the
        // resolved budget unless the pipeline config pinned its own.
        let mut pipeline = config.pipeline.clone();
        if pipeline.threads.is_none() {
            pipeline.threads = Some(threads);
        }

        // Census surveys during the second period, like the IT89w dataset
        // the paper matched to its window.
        let census_window =
            SurveyConfig::two_weeks_from(config.periods.last().map_or(PERIOD_2.start, |w| w.start));

        let mut timings = StudyTimings::default();
        let mut health = StudyHealth::clean(plans.len());
        let (blocklists, crawls, atlas_log, atlas, census);

        if threads <= 1 {
            // Serial path: the original phase order, one thread.
            let t = Instant::now();
            let plan_refs: Vec<(TimeWindow, &AllocationPlan)> =
                plans.iter().map(|(w, a)| (*w, a)).collect();
            let (dataset, status) = blocklists_task(&universe, &plan_refs, 1, faults, &obs);
            blocklists = dataset;
            health.blocklists = status;
            timings.blocklists = t.elapsed().as_secs_f64();

            let scope = crawl_scope(&config, &blocklists);
            let t = Instant::now();
            let mut out = Vec::with_capacity(plans.len());
            for (idx, (window, plan)) in plans.iter().enumerate() {
                let (report, status) = crawl_period(
                    &universe,
                    &config,
                    idx,
                    *window,
                    plan,
                    scope.as_ref(),
                    faults,
                    &obs,
                    1,
                );
                out.push(report);
                health.crawls[idx] = status;
            }
            crawls = out;
            timings.crawls = t.elapsed().as_secs_f64();
            timings.crawls_wall = timings.crawls;

            let t = Instant::now();
            let (log, detection, status) = atlas_task(&universe, &pipeline, faults, &obs);
            atlas_log = log;
            atlas = detection;
            health.atlas = status;
            timings.atlas = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let (report, status) = census_task(
                &universe,
                &census_window,
                &config.census_classifier,
                faults,
                &obs,
            );
            census = report;
            health.census = status;
            timings.census = t.elapsed().as_secs_f64();
        } else {
            // Parallel path. The main thread builds the blocklist dataset
            // first (itself fanned out per list), then launches one crawl
            // task per period — each running the partitioned crawler over
            // an equal slice of the thread budget — and fills its own idle
            // time with the sub-second Atlas and census phases inline.
            // Spawning those tiny phases onto pool threads was a measured
            // regression (atlas 0.022 s serial → 0.132 s under an 8-thread
            // orchestrator on one core): the spawn/contention overhead
            // dwarfs the work. Joins happen in a fixed order (crawls by
            // period, then the inline results), so assembly is
            // schedule-independent.
            (blocklists, crawls, atlas_log, atlas, census) = std::thread::scope(|s| {
                let t = Instant::now();
                let plan_refs: Vec<(TimeWindow, &AllocationPlan)> =
                    plans.iter().map(|(w, a)| (*w, a)).collect();
                let (blocklists, blocklists_status) =
                    blocklists_task(&universe, &plan_refs, threads, faults, &obs);
                health.blocklists = blocklists_status;
                timings.blocklists = t.elapsed().as_secs_f64();

                let scope = crawl_scope(&config, &blocklists);
                let crawl_workers = (threads / plans.len().max(1)).max(1);
                let crawl_launch = Instant::now();
                let crawl_handles: Vec<_> = plans
                    .iter()
                    .enumerate()
                    .map(|(idx, (window, plan))| {
                        let scope = scope.clone();
                        let universe = &universe;
                        let config = &config;
                        let obs = &obs;
                        s.spawn(move || {
                            let t = Instant::now();
                            let out = crawl_period(
                                universe,
                                config,
                                idx,
                                *window,
                                plan,
                                scope.as_ref(),
                                faults,
                                obs,
                                crawl_workers,
                            );
                            (out, t.elapsed().as_secs_f64())
                        })
                    })
                    .collect();

                let t = Instant::now();
                let (atlas_log, atlas, atlas_status) =
                    atlas_task(&universe, &pipeline, faults, &obs);
                health.atlas = atlas_status;
                timings.atlas = t.elapsed().as_secs_f64();

                let t = Instant::now();
                let (census, census_status) = census_task(
                    &universe,
                    &census_window,
                    &config.census_classifier,
                    faults,
                    &obs,
                );
                health.census = census_status;
                timings.census = t.elapsed().as_secs_f64();

                let mut crawls = Vec::with_capacity(crawl_handles.len());
                for (idx, handle) in crawl_handles.into_iter().enumerate() {
                    let ((report, status), secs) = handle.join().expect("crawl task panicked");
                    crawls.push(report);
                    health.crawls[idx] = status;
                    timings.crawls += secs;
                }
                timings.crawls_wall = crawl_launch.elapsed().as_secs_f64();

                (blocklists, crawls, atlas_log, atlas, census)
            });
        }
        timings.total = run_start.elapsed().as_secs_f64();

        if let Some(fp) = fault_plan.as_ref() {
            for b in &fp.blackouts {
                obs.event(
                    "network",
                    EventKind::AsBlackoutEntered,
                    Some(b.window.start.as_secs()),
                    1,
                    format!("AS{}", b.asn.0),
                );
                obs.event(
                    "network",
                    EventKind::AsBlackoutExited,
                    Some(b.window.end.as_secs()),
                    1,
                    format!("AS{}", b.asn.0),
                );
            }
        }
        health.record_obs(&obs);
        obs.record_span("study", timings.total);
        let run_report = obs.enabled().then(|| obs.report());

        Study {
            config,
            universe,
            plans,
            blocklists,
            crawls,
            atlas_log,
            atlas,
            census,
            fault_plan,
            health,
            timings,
            run_report,
        }
    }

    // ---- joined views -------------------------------------------------------

    /// Every IP the crawler confirmed as NATed, across periods.
    pub fn natted_ips(&self) -> IpSet {
        self.crawls.iter().flat_map(|c| c.natted_ips()).collect()
    }

    /// Every IP seen running BitTorrent.
    pub fn bittorrent_ips(&self) -> IpSet {
        self.crawls
            .iter()
            .flat_map(|c| c.bittorrent_ips())
            .collect()
    }

    /// Lower bound on users behind a NATed IP (max across periods).
    pub fn nat_user_bound(&self, ip: Ipv4Addr) -> Option<u32> {
        self.crawls
            .iter()
            .filter_map(|c| c.user_lower_bound(ip))
            .max()
    }

    /// Blocklisted ∩ NATed (the paper's 29.7K) — a single linear merge of
    /// the two sorted indexes.
    pub fn natted_blocklisted(&self) -> IpSet {
        self.blocklists.all_ips().intersect(&self.natted_ips())
    }

    /// Blocklisted addresses inside the detected dynamic space (the
    /// paper's 22.7K): merge-join against the dynamic /24s, plus the exact
    /// addresses when prefix expansion is disabled.
    pub fn dynamic_blocklisted(&self) -> IpSet {
        let blocklisted = self.blocklists.all_ips();
        let by_prefix = PrefixSet::from_sorted(&self.atlas.dynamic_prefixes).covered(blocklisted);
        if self.atlas.dynamic_addresses.is_empty() {
            return by_prefix;
        }
        let addresses: IpSet = self.atlas.dynamic_addresses.iter().copied().collect();
        by_prefix.union(&blocklisted.intersect(&addresses))
    }

    /// Blocklisted addresses inside census-detected dynamic blocks (the
    /// paper's Cai-et-al. comparison, 29.8K listings).
    pub fn census_blocklisted(&self) -> IpSet {
        PrefixSet::from_sorted(&self.census.dynamic_blocks).covered(self.blocklists.all_ips())
    }

    /// Blocklisted addresses inside each Atlas pipeline stage's prefix set
    /// (Figure 4's right funnel: 53.7K → 34.4K → 33.1K → 22.7K).
    ///
    /// One histogram pass converts every blocklisted IP to its /24 exactly
    /// once; each stage is then a two-pointer join over the histogram.
    pub fn atlas_funnel_blocklisted(&self) -> BTreeMap<&'static str, usize> {
        let hist = self.blocklists.all_ips().prefix_histogram();
        let count_in = |prefixes: &std::collections::BTreeSet<Prefix24>| {
            weighted_prefix_intersection(&hist, prefixes.iter().copied()) as usize
        };
        let mut map = BTreeMap::new();
        map.insert("0 all RIPE prefixes", count_in(&self.atlas.all.prefixes));
        map.insert("1 same-AS", count_in(&self.atlas.same_as.prefixes));
        map.insert("2 frequent", count_in(&self.atlas.frequent.prefixes));
        map.insert("3 daily", count_in(&self.atlas.daily.prefixes));
        map
    }

    /// Merged crawl statistics.
    pub fn crawl_totals(&self) -> ar_crawler::CrawlStats {
        let mut total = ar_crawler::CrawlStats::default();
        for c in &self.crawls {
            total += &c.stats;
        }
        total
    }
}

// ---- run() task bodies (shared by the serial and parallel paths) -----------

/// The crawler's address-space restriction: the /24s of every blocklisted
/// IP, built once and shared across periods via `Arc`.
fn crawl_scope(config: &StudyConfig, blocklists: &BlocklistDataset) -> Option<Arc<PrefixSet>> {
    config
        .restrict_crawl
        .then(|| Arc::new(blocklists.all_ips().prefixes()))
}

/// Render whatever a phase panicked with into a `Failed` reason.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run a phase body; a panic becomes a `Failed` status plus the phase's
/// empty fallback value, so one broken substrate degrades the study
/// instead of aborting the whole campaign.
fn guard<T>(
    phase: &str,
    fallback: impl FnOnce() -> T,
    body: impl FnOnce() -> (T, PhaseStatus),
) -> (T, PhaseStatus) {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(out) => out,
        Err(payload) => {
            let reason = panic_reason(payload);
            (
                fallback(),
                PhaseStatus::Failed(format!("{phase} panicked: {reason}")),
            )
        }
    }
}

/// The blocklist leg. Without feed faults this is the direct dataset; with
/// them, collection is re-played through the daily-snapshot channel with the
/// scheduled damage applied and listings rebuilt gap-tolerantly.
fn blocklists_task(
    universe: &Universe,
    plan_refs: &[(TimeWindow, &AllocationPlan)],
    threads: usize,
    faults: Option<&FaultPlan>,
    obs: &Obs,
) -> (BlocklistDataset, PhaseStatus) {
    let span = obs.span("study/blocklists");
    guard(
        "blocklists",
        || {
            BlocklistDataset::new(
                build_catalog(),
                plan_refs.iter().map(|(w, _)| *w).collect(),
                Vec::new(),
            )
        },
        || {
            let generate = obs.span("study/blocklists/generate");
            let dataset = generate_dataset_threaded(universe, plan_refs, build_catalog(), threads);
            generate.finish();
            let out = match faults {
                Some(fp) if fp.has_feed_faults() => {
                    let replay = obs.span("study/blocklists/replay");
                    let (damaged, degradation) =
                        dataset_via_faulted_snapshots(&dataset, fp, FEED_GAP_BRIDGE_DAYS);
                    replay.finish();
                    degradation.record_obs(obs);
                    let status = if degradation.is_clean() {
                        PhaseStatus::Ok
                    } else {
                        PhaseStatus::Degraded(degradation.describe())
                    };
                    (damaged, status)
                }
                _ => (dataset, PhaseStatus::Ok),
            };
            out.0.record_obs(obs);
            span.finish();
            out
        },
    )
}

/// One period's DHT crawl. Fault-free crawls run the internally
/// partitioned engine ([`crawl_sharded`]) over `workers` threads — the
/// shard layout is fixed in [`CrawlConfig`], so the artifacts are
/// byte-identical at every worker count. Network faults wrap a serial
/// fabric in a [`FaultyTransport`]; scheduled crawler outages are survived
/// by checkpointing at each crash and resuming after its downtime.
#[allow(clippy::too_many_arguments)]
fn crawl_period(
    universe: &Universe,
    config: &StudyConfig,
    period_idx: usize,
    window: TimeWindow,
    plan: &AllocationPlan,
    scope: Option<&Arc<PrefixSet>>,
    faults: Option<&FaultPlan>,
    obs: &Obs,
    workers: usize,
) -> (CrawlReport, PhaseStatus) {
    let phase = format!("crawl[{period_idx}]");
    let span = obs.span(&format!("study/{phase}"));
    guard(
        "crawl",
        || CrawlReport::empty(window),
        || {
            let mut crawl_config = CrawlConfig::new(window);
            if let Some(prefixes) = scope {
                crawl_config = crawl_config.with_scope(Scope::Prefixes(Arc::clone(prefixes)));
            }
            crawl_config.disable_ping_verification = config.disable_ping_verification;
            crawl_config.ping_retry = config.ping_retry;

            let outages = faults.map_or_else(Vec::new, |fp| fp.outages_for_period(period_idx));
            let network_faults = faults.is_some_and(FaultPlan::has_network_faults);
            // Bind the plan only on the faulted path, so the fault-free
            // branch needs no plan and no panic can assert otherwise.
            let fp = match faults {
                Some(fp) if !outages.is_empty() || network_faults => fp,
                _ => {
                    // Fault-free (including zero-intensity fault specs):
                    // the partitioned crawl.
                    let report = if crawl_config.shards > 1 {
                        let fabric = ShardedSimNetwork::new(universe, plan, SimParams::default());
                        crawl_sharded(fabric.shards(crawl_config.shards), &crawl_config, workers)
                    } else {
                        let mut net = SimNetwork::new(universe, plan, SimParams::default());
                        crawl(&mut net, &crawl_config)
                    };
                    report.record_obs(obs, &phase);
                    if report.stats.ping_retries > 0 {
                        obs.event(
                            &phase,
                            EventKind::RetryFired,
                            None,
                            report.stats.ping_retries,
                            format!("{} recovered", report.stats.pings_recovered),
                        );
                    }
                    span.finish();
                    return (report, PhaseStatus::Ok);
                }
            };

            // Faulted crawls keep the serial engine: checkpoint/resume and
            // fault transports are defined over one sequential timeline.
            let mut net = SimNetwork::new(universe, plan, SimParams::default());
            let mut transport = FaultyTransport::new(&mut net, fp, |ip| universe.asn_of(ip));
            let mut survived = 0usize;
            let report = if outages.is_empty() {
                crawl(&mut transport, &crawl_config)
            } else {
                let mut ckpt = crawl_until(&mut transport, &crawl_config, outages[0].crash_at);
                ckpt.delay_resume(outages[0].downtime);
                obs.event(
                    &phase,
                    EventKind::CheckpointWritten,
                    Some(outages[0].crash_at.as_secs()),
                    1,
                    format!("crawler crashed, down {}s", outages[0].downtime.as_secs()),
                );
                obs.event(
                    &phase,
                    EventKind::CheckpointResumed,
                    Some(ckpt.resume_at.as_secs()),
                    1,
                    String::new(),
                );
                survived += 1;
                for o in &outages[1..] {
                    if o.crash_at <= ckpt.resume_at {
                        // The crawler was still down when this one hit.
                        continue;
                    }
                    ckpt = resume_until(&mut transport, &crawl_config, ckpt, o.crash_at);
                    ckpt.delay_resume(o.downtime);
                    obs.event(
                        &phase,
                        EventKind::CheckpointWritten,
                        Some(o.crash_at.as_secs()),
                        1,
                        format!("crawler crashed, down {}s", o.downtime.as_secs()),
                    );
                    obs.event(
                        &phase,
                        EventKind::CheckpointResumed,
                        Some(ckpt.resume_at.as_secs()),
                        1,
                        String::new(),
                    );
                    survived += 1;
                }
                resume(&mut transport, &crawl_config, ckpt)
            };
            let stats = transport.fault_stats;
            report.record_obs(obs, &phase);
            stats.record_obs(obs);
            obs.add("crawler.checkpoints_written", survived as u64);
            obs.add("crawler.checkpoints_resumed", survived as u64);
            if report.stats.ping_retries > 0 {
                obs.event(
                    &phase,
                    EventKind::RetryFired,
                    None,
                    report.stats.ping_retries,
                    format!("{} recovered", report.stats.pings_recovered),
                );
            }
            let mut reasons = Vec::new();
            if survived > 0 {
                reasons.push(format!(
                    "survived {survived} outage(s) via checkpoint/resume"
                ));
            }
            if stats.dropped_blackout > 0 || stats.dropped_burst > 0 {
                reasons.push(format!(
                    "{} queries lost to blackouts, {} to loss bursts",
                    stats.dropped_blackout, stats.dropped_burst
                ));
            }
            let status = if reasons.is_empty() {
                PhaseStatus::Ok
            } else {
                PhaseStatus::Degraded(reasons.join("; "))
            };
            span.finish();
            (report, status)
        },
    )
}

/// The Atlas leg: fleet simulation over the long window, gap censoring when
/// scheduled, then the detection pipeline over what was actually logged.
fn atlas_task(
    universe: &Universe,
    pipeline: &PipelineConfig,
    faults: Option<&FaultPlan>,
    obs: &Obs,
) -> (ConnectionLog, DynamicDetection, PhaseStatus) {
    let span = obs.span("study/atlas");
    let fallback = || {
        (
            ConnectionLog {
                window: ATLAS_WINDOW,
                entries: Vec::new(),
            },
            DynamicDetection {
                summaries: Vec::new(),
                knee: 0,
                all: StageSet::default(),
                same_as: StageSet::default(),
                frequent: StageSet::default(),
                daily: StageSet::default(),
                dynamic_prefixes: BTreeSet::new(),
                dynamic_addresses: BTreeSet::new(),
            },
        )
    };
    let ((log, detection), status) = guard("atlas", fallback, || {
        let fleet = obs.span("study/atlas/fleet");
        let atlas_alloc = AllocationPlan::build(universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
        let (_probes, full_log) = generate_fleet(universe, &atlas_alloc, ATLAS_WINDOW);
        fleet.finish();
        match faults {
            Some(fp) if fp.has_atlas_gaps() => {
                let (censored, dropped) = apply_atlas_gaps(&full_log, fp);
                obs.add("atlas.log_entries", censored.entries.len() as u64);
                obs.add("atlas.log_entries_dropped", dropped as u64);
                if dropped > 0 {
                    obs.event(
                        "atlas",
                        EventKind::AtlasGapCensored,
                        None,
                        dropped as u64,
                        format!("{} scheduled gap(s)", fp.atlas_gaps.len()),
                    );
                }
                let detect = obs.span("study/atlas/detect");
                let detection = detect_dynamic(&censored, pipeline, |ip| universe.asn_of(ip));
                detect.finish();
                detection.record_obs(obs);
                let status = if dropped == 0 {
                    PhaseStatus::Ok
                } else {
                    PhaseStatus::Degraded(format!(
                        "{dropped} connection-log entries lost to {} scheduled gap(s)",
                        fp.atlas_gaps.len()
                    ))
                };
                ((censored, detection), status)
            }
            _ => {
                obs.add("atlas.log_entries", full_log.entries.len() as u64);
                let detect = obs.span("study/atlas/detect");
                let detection = detect_dynamic(&full_log, pipeline, |ip| universe.asn_of(ip));
                detect.finish();
                detection.record_obs(obs);
                ((full_log, detection), PhaseStatus::Ok)
            }
        }
    });
    span.finish();
    (log, detection, status)
}

/// The census leg: AS blackouts suppress would-be ICMP replies.
fn census_task(
    universe: &Universe,
    census_window: &SurveyConfig,
    classifier: &Classifier,
    faults: Option<&FaultPlan>,
    obs: &Obs,
) -> (CensusReport, PhaseStatus) {
    let span = obs.span("study/census");
    guard(
        "census",
        || CensusReport {
            blocks: BTreeMap::new(),
            dynamic_blocks: Vec::new(),
            pings_sent: 0,
            replies: 0,
            blackout_suppressed: 0,
        },
        || {
            let report = run_census_with_faults(universe, census_window, classifier, faults);
            report.record_obs(obs);
            span.finish();
            let status = if report.blackout_suppressed == 0 {
                PhaseStatus::Ok
            } else {
                PhaseStatus::Degraded(format!(
                    "{} census replies suppressed by AS blackouts",
                    report.blackout_suppressed
                ))
            };
            (report, status)
        },
    )
}
