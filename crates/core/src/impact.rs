//! Figure 8: users behind blocklisted NATed addresses.
//!
//! "For most of these IP addresses, we detect only two active users
//! (68.5%). 97.8% of the IP addresses have fewer than ten active users …
//! At the maximum, we detect 78 active users behind an IP address." (§5)

use crate::study::Study;
use ar_simnet::stats::Ecdf;
use serde::Serialize;

/// The Figure 8 data product.
#[derive(Debug, Clone)]
pub struct ImpactAnalysis {
    /// Detected user lower bound per blocklisted NATed IP.
    pub user_bounds: Vec<u32>,
    pub cdf: Ecdf,
}

#[derive(Debug, Clone, Copy, Serialize)]
pub struct ImpactSummary {
    pub natted_blocklisted: usize,
    /// Share of IPs where exactly two users were detected (paper: 68.5%).
    pub exactly_two: f64,
    /// Share of IPs with fewer than ten users (paper: 97.8%).
    pub under_ten: f64,
    /// Largest user count detected (paper: 78).
    pub max_users: u32,
    /// Total users affected across all blocklisted NATed IPs (lower
    /// bound).
    pub total_affected_users: u64,
}

/// Compute Figure 8 from a study.
pub fn impact(study: &Study) -> ImpactAnalysis {
    let mut user_bounds: Vec<u32> = study
        .natted_blocklisted()
        .into_iter()
        .filter_map(|ip| study.nat_user_bound(ip))
        .collect();
    user_bounds.sort_unstable();
    let cdf = Ecdf::from_samples(user_bounds.iter().map(|&u| f64::from(u)).collect());
    ImpactAnalysis { user_bounds, cdf }
}

impl ImpactAnalysis {
    pub fn summary(&self) -> ImpactSummary {
        let n = self.user_bounds.len();
        let share = |pred: &dyn Fn(u32) -> bool| {
            if n == 0 {
                0.0
            } else {
                self.user_bounds.iter().filter(|&&u| pred(u)).count() as f64 / n as f64
            }
        };
        ImpactSummary {
            natted_blocklisted: n,
            exactly_two: share(&|u| u == 2),
            under_ten: share(&|u| u < 10),
            max_users: self.user_bounds.iter().copied().max().unwrap_or(0),
            total_affected_users: self.user_bounds.iter().map(|&u| u64::from(u)).sum(),
        }
    }

    /// CDF series over user counts for plotting (paper x-axis 2–78).
    pub fn series(&self) -> Vec<(u32, f64)> {
        let max = self.user_bounds.last().copied().unwrap_or(2);
        (2..=max).map(|u| (u, self.cdf.at(f64::from(u)))).collect()
    }
}
