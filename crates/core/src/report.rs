//! The published reused-address list (paper §6) and text reporting.
//!
//! "We make our crawler and scripts to determine reused addresses public …
//! we make our discovered reused addresses public" — the artifact a
//! network operator would consume to greylist instead of hard-block.
//!
//! The entry types and their text codec live in [`ar_blocklists::policy`]
//! (shared with the `ar-serve` reputation service); this module keeps the
//! study-coupled builders and the historical re-export paths.

use crate::study::Study;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

pub use ar_blocklists::policy::{
    parse_reused_list, render_reused_list, ReuseEvidence, ReusedAddressEntry,
};

/// Build the combined reused-address list from a study: every blocklisted
/// address with NAT or dynamic evidence.
pub fn reused_address_list(study: &Study) -> Vec<ReusedAddressEntry> {
    let mut out: BTreeMap<Ipv4Addr, ReusedAddressEntry> = BTreeMap::new();
    for ip in study.dynamic_blocklisted() {
        out.insert(
            ip,
            ReusedAddressEntry {
                ip,
                evidence: ReuseEvidence::DynamicPrefix,
                lists: study.blocklists.lists_containing(ip).len() as u32,
            },
        );
    }
    // NAT evidence is stronger (per-IP, user-count attached): it wins when
    // both detectors fire.
    for ip in study.natted_blocklisted() {
        let users = study.nat_user_bound(ip).unwrap_or(2);
        out.insert(
            ip,
            ReusedAddressEntry {
                ip,
                evidence: ReuseEvidence::Natted { users },
                lists: study.blocklists.lists_containing(ip).len() as u32,
            },
        );
    }
    out.into_values().collect()
}

/// Render the §4/§5 style headline summary of a study.
pub fn render_summary(study: &Study) -> String {
    let funnel = crate::funnel::funnel(study);
    let stats = study.crawl_totals();
    let nat = crate::perlist::natted_per_list(study);
    let dyn_ = crate::perlist::dynamic_per_list(study);
    let durations = crate::duration::durations(study).summary();
    let impact = crate::impact::impact(study).summary();
    let lists = study.blocklists.catalog.len();
    format!(
        "== study summary ==\n\
         blocklists monitored:        {lists}\n\
         blocklisted addresses:       {}\n\
         crawl: get_nodes sent:       {}\n\
         crawl: pings sent:           {}\n\
         crawl: response rate:        {:.1}%\n\
         BitTorrent IPs discovered:   {}\n\
         NATed IPs:                   {}\n\
         NATed + blocklisted:         {}\n\
         dynamic prefixes (RIPE):     {}\n\
         dynamic + blocklisted:       {}\n\
         NATed listings:              {} over {} lists with any ({} with none)\n\
         dynamic listings:            {} ({} with none)\n\
         mean days listed (all/NAT/dyn): {:.1} / {:.1} / {:.1}\n\
         max users behind one IP:     {}\n",
        funnel.blocklisted_total,
        stats.get_nodes_sent,
        stats.pings_sent,
        100.0 * stats.response_rate(),
        funnel.bittorrent_ips,
        funnel.natted_ips,
        funnel.natted_blocklisted,
        funnel.dynamic_prefixes,
        funnel.blocklisted_daily,
        nat.listings,
        lists - nat.lists_with_none,
        nat.lists_with_none,
        dyn_.listings,
        dyn_.lists_with_none,
        durations.mean_days_all,
        durations.mean_days_natted,
        durations.mean_days_dynamic,
        impact.max_users,
    )
}
