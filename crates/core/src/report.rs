//! The published reused-address list (paper §6) and text reporting.
//!
//! "We make our crawler and scripts to determine reused addresses public …
//! we make our discovered reused addresses public" — the artifact a
//! network operator would consume to greylist instead of hard-block.

use crate::study::Study;
use ar_simnet::ip::Prefix24;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Why an entry is on the reused-address list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReuseEvidence {
    /// ≥ `users` simultaneous BitTorrent users observed behind the IP.
    Natted { users: u32 },
    /// Covering /24 detected as dynamically allocated via RIPE probes.
    DynamicPrefix,
}

/// One entry of the published list.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ReusedAddressEntry {
    pub ip: Ipv4Addr,
    pub evidence: ReuseEvidence,
    /// Currently blocklisted by this many lists.
    pub lists: u32,
}

/// Build the combined reused-address list from a study: every blocklisted
/// address with NAT or dynamic evidence.
pub fn reused_address_list(study: &Study) -> Vec<ReusedAddressEntry> {
    let mut out: BTreeMap<Ipv4Addr, ReusedAddressEntry> = BTreeMap::new();
    for ip in study.dynamic_blocklisted() {
        out.insert(
            ip,
            ReusedAddressEntry {
                ip,
                evidence: ReuseEvidence::DynamicPrefix,
                lists: study.blocklists.lists_containing(ip).len() as u32,
            },
        );
    }
    // NAT evidence is stronger (per-IP, user-count attached): it wins when
    // both detectors fire.
    for ip in study.natted_blocklisted() {
        let users = study.nat_user_bound(ip).unwrap_or(2);
        out.insert(
            ip,
            ReusedAddressEntry {
                ip,
                evidence: ReuseEvidence::Natted { users },
                lists: study.blocklists.lists_containing(ip).len() as u32,
            },
        );
    }
    out.into_values().collect()
}

/// Render the list in the published plain-text layout.
pub fn render_reused_list(entries: &[ReusedAddressEntry]) -> String {
    let mut s = String::from("# reused blocklisted addresses\n# ip\tevidence\tlists\n");
    for e in entries {
        let evidence = match e.evidence {
            ReuseEvidence::Natted { users } => format!("nat:{users}"),
            ReuseEvidence::DynamicPrefix => format!("dynamic:{}", Prefix24::of(e.ip)),
        };
        let _ = writeln!(s, "{}\t{evidence}\t{}", e.ip, e.lists);
    }
    s
}

/// Parse the published format back (round-trip for consumers).
pub fn parse_reused_list(input: &str) -> Result<Vec<ReusedAddressEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let err = |m: String| format!("line {}: {m}", i + 1);
        let ip: Ipv4Addr = fields
            .next()
            .ok_or_else(|| err("missing ip".into()))?
            .parse()
            .map_err(|e| err(format!("bad ip: {e}")))?;
        let evidence_raw = fields
            .next()
            .ok_or_else(|| err("missing evidence".into()))?;
        let evidence = if let Some(users) = evidence_raw.strip_prefix("nat:") {
            ReuseEvidence::Natted {
                users: users.parse().map_err(|e| err(format!("bad users: {e}")))?,
            }
        } else if evidence_raw.starts_with("dynamic:") {
            ReuseEvidence::DynamicPrefix
        } else {
            return Err(err(format!("unknown evidence {evidence_raw:?}")));
        };
        let lists: u32 = fields
            .next()
            .ok_or_else(|| err("missing list count".into()))?
            .parse()
            .map_err(|e| err(format!("bad list count: {e}")))?;
        out.push(ReusedAddressEntry {
            ip,
            evidence,
            lists,
        });
    }
    Ok(out)
}

/// Render the §4/§5 style headline summary of a study.
pub fn render_summary(study: &Study) -> String {
    let funnel = crate::funnel::funnel(study);
    let stats = study.crawl_totals();
    let nat = crate::perlist::natted_per_list(study);
    let dyn_ = crate::perlist::dynamic_per_list(study);
    let durations = crate::duration::durations(study).summary();
    let impact = crate::impact::impact(study).summary();
    let lists = study.blocklists.catalog.len();
    format!(
        "== study summary ==\n\
         blocklists monitored:        {lists}\n\
         blocklisted addresses:       {}\n\
         crawl: get_nodes sent:       {}\n\
         crawl: pings sent:           {}\n\
         crawl: response rate:        {:.1}%\n\
         BitTorrent IPs discovered:   {}\n\
         NATed IPs:                   {}\n\
         NATed + blocklisted:         {}\n\
         dynamic prefixes (RIPE):     {}\n\
         dynamic + blocklisted:       {}\n\
         NATed listings:              {} over {} lists with any ({} with none)\n\
         dynamic listings:            {} ({} with none)\n\
         mean days listed (all/NAT/dyn): {:.1} / {:.1} / {:.1}\n\
         max users behind one IP:     {}\n",
        funnel.blocklisted_total,
        stats.get_nodes_sent,
        stats.pings_sent,
        100.0 * stats.response_rate(),
        funnel.bittorrent_ips,
        funnel.natted_ips,
        funnel.natted_blocklisted,
        funnel.dynamic_prefixes,
        funnel.blocklisted_daily,
        nat.listings,
        lists - nat.lists_with_none,
        nat.lists_with_none,
        dyn_.listings,
        dyn_.lists_with_none,
        durations.mean_days_all,
        durations.mean_days_natted,
        durations.mean_days_dynamic,
        impact.max_users,
    )
}
