//! Figure 3: AS-level coverage of the detection techniques.
//!
//! "The ASes … are arranged in increasing order of the number of
//! blocklisted addresses present in them" and each curve shows the
//! cumulative share of a category (all blocklisted / blocklisted
//! BitTorrent / blocklisted RIPE-prefix addresses) across that AS order.

use crate::study::Study;
use ar_simnet::asn::Asn;
use ar_simnet::ip::Prefix24;
use serde::Serialize;
use std::collections::BTreeMap;

/// One AS's contribution to each category.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AsCounts {
    pub blocklisted: u32,
    pub blocklisted_bt: u32,
    pub blocklisted_ripe: u32,
}

/// The Figure 3 data product.
#[derive(Debug, Clone, Serialize)]
pub struct Coverage {
    /// ASes in increasing order of blocklisted addresses, with counts.
    pub per_as: Vec<(Asn, AsCounts)>,
    /// Cumulative CDF series per category (aligned with `per_as`).
    pub cdf_blocklisted: Vec<f64>,
    pub cdf_bt: Vec<f64>,
    pub cdf_ripe: Vec<f64>,
    /// Summary: ASes with any blocklisted / BT-overlap / RIPE-overlap
    /// addresses (paper: 26K / 7.7K (29.6%) / 1.9K (17.1%)).
    pub ases_blocklisted: usize,
    pub ases_bt: usize,
    pub ases_ripe: usize,
    /// Share of all blocklisted addresses in the ten most-blocklisted ASes
    /// (paper: 27.7%).
    pub top10_share: f64,
    /// The most-blocklisted AS and its share (paper: AS4134 at 9%).
    pub top_as: Option<(Asn, f64)>,
}

/// Compute Figure 3 from a finished study.
pub fn coverage(study: &Study) -> Coverage {
    let blocklisted = study.blocklists.all_ips();
    let bt = study.bittorrent_ips();
    let ripe_prefixes = &study.atlas.all.prefixes;

    let mut per_as: BTreeMap<Asn, AsCounts> = BTreeMap::new();
    for ip in blocklisted {
        let Some(asn) = study.universe.asn_of(ip) else {
            continue;
        };
        let entry = per_as.entry(asn).or_default();
        entry.blocklisted += 1;
        if bt.contains(ip) {
            entry.blocklisted_bt += 1;
        }
        if ripe_prefixes.contains(&Prefix24::of(ip)) {
            entry.blocklisted_ripe += 1;
        }
    }

    let mut per_as: Vec<(Asn, AsCounts)> = per_as.into_iter().collect();
    per_as.sort_by_key(|(asn, c)| (c.blocklisted, asn.0));

    let totals = per_as.iter().fold(AsCounts::default(), |mut acc, (_, c)| {
        acc.blocklisted += c.blocklisted;
        acc.blocklisted_bt += c.blocklisted_bt;
        acc.blocklisted_ripe += c.blocklisted_ripe;
        acc
    });

    let cdf = |select: &dyn Fn(&AsCounts) -> u32, total: u32| -> Vec<f64> {
        let mut acc = 0u64;
        per_as
            .iter()
            .map(|(_, c)| {
                acc += u64::from(select(c));
                if total == 0 {
                    0.0
                } else {
                    acc as f64 / f64::from(total)
                }
            })
            .collect()
    };

    let top10: u64 = per_as
        .iter()
        .rev()
        .take(10)
        .map(|(_, c)| u64::from(c.blocklisted))
        .sum();
    let top_as = per_as.last().map(|(asn, c)| {
        (
            *asn,
            if totals.blocklisted == 0 {
                0.0
            } else {
                f64::from(c.blocklisted) / f64::from(totals.blocklisted)
            },
        )
    });

    Coverage {
        ases_blocklisted: per_as.len(),
        ases_bt: per_as.iter().filter(|(_, c)| c.blocklisted_bt > 0).count(),
        ases_ripe: per_as
            .iter()
            .filter(|(_, c)| c.blocklisted_ripe > 0)
            .count(),
        top10_share: if totals.blocklisted == 0 {
            0.0
        } else {
            top10 as f64 / f64::from(totals.blocklisted)
        },
        top_as,
        cdf_blocklisted: cdf(&|c| c.blocklisted, totals.blocklisted),
        cdf_bt: cdf(&|c| c.blocklisted_bt, totals.blocklisted_bt),
        cdf_ripe: cdf(&|c| c.blocklisted_ripe, totals.blocklisted_ripe),
        per_as,
    }
}
