//! # address-reuse — quantifying the impact of blocklisting reused addresses
//!
//! The top-level library of this workspace: a full reproduction of
//! *"Quantifying the Impact of Blocklisting in the Age of Address Reuse"*
//! (Ramanathan, Hossain, Mirkovic, Yu, Afroz — ACM IMC 2020).
//!
//! A [`Study`] runs the paper's whole measurement campaign against a
//! seeded synthetic Internet ([`ar_simnet`]):
//!
//! * a BitTorrent-DHT crawl detecting **NATed addresses** and lower bounds
//!   on the users behind them (§3.1, via [`ar_crawler`] over [`ar_dht`]);
//! * the RIPE-Atlas pipeline detecting **dynamically allocated /24s**
//!   (§3.2, via [`ar_atlas`]);
//! * 151 public blocklists collected over the paper's two measurement
//!   periods (§4, via [`ar_blocklists`]);
//! * the Cai-et-al. ICMP census baseline (§5, via [`ar_census`]).
//!
//! The analysis modules then compute every exhibit of the paper's
//! evaluation: [`mod@funnel`] (Fig 4), [`mod@coverage`] (Fig 3),
//! [`perlist`] (Figs 5–6), [`duration`] (Fig 7), [`mod@impact`] (Fig 8),
//! and [`report`] (the §6 public reused-address list). The operator survey
//! (Table 1, Fig 9) lives in [`ar_survey`].
//!
//! ```no_run
//! use address_reuse::{Study, StudyConfig};
//! use ar_simnet::Seed;
//!
//! let study = Study::run(StudyConfig::quick_test(Seed(1)));
//! println!("{}", address_reuse::report::render_summary(&study));
//! ```

pub mod churn;
pub mod coverage;
pub mod duration;
pub mod funnel;
pub mod greylist;
pub mod impact;
pub mod periods;
pub mod perlist;
pub mod preassign;
pub mod quality;
pub mod render_md;
pub mod report;
pub mod serving;
pub mod study;

pub use ar_obs::{Event, EventKind, Obs, RunReport};
pub use churn::{churn, ChurnDay, ChurnSeries};
pub use coverage::{coverage, AsCounts, Coverage};
pub use duration::{durations, DurationAnalysis, DurationSummary};
pub use funnel::{funnel, Funnel};
pub use greylist::{action_for, split_feed, Action, GreylistPolicy, SplitFeed};
pub use impact::{impact, ImpactAnalysis, ImpactSummary};
pub use periods::{compare_periods, PeriodComparison, PeriodSlice};
pub use perlist::{census_per_list, dynamic_per_list, natted_per_list, PerListCounts, ReuseKind};
pub use preassign::{assess_pool, clean_addresses, AddressAssessment};
pub use quality::{render_scorecard, scorecard, ListScore};
pub use render_md::{render_experiments_md, render_observability_md};
pub use report::{
    parse_reused_list, render_reused_list, render_summary, reused_address_list, ReuseEvidence,
    ReusedAddressEntry,
};
pub use serving::{reputation_snapshot, snapshot_input};
pub use study::{PhaseStatus, Study, StudyConfig, StudyHealth, StudyTimings, FEED_GAP_BRIDGE_DAYS};

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::rng::Seed;
    use std::sync::OnceLock;

    /// One shared quick study: Study::run is the expensive part, the
    /// metric computations are cheap.
    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::run(StudyConfig::quick_test(Seed(2026))))
    }

    #[test]
    fn funnel_is_monotone_and_populated() {
        let f = funnel(study());
        assert!(f.is_monotone(), "{f:?}");
        assert!(f.bittorrent_ips > 0);
        assert!(f.natted_ips > 0);
        assert!(f.blocklisted_total > 0);
        assert!(f.blocklisted_in_ripe >= f.blocklisted_daily);
    }

    #[test]
    fn nat_detections_match_ground_truth() {
        let s = study();
        for ip in s.natted_ips() {
            assert!(s.universe.is_truly_natted(ip), "false NAT: {ip}");
        }
        for ip in s.natted_blocklisted() {
            let bound = s.nat_user_bound(ip).unwrap();
            let truth = s.universe.true_nat_user_count(ip).unwrap() as u32;
            assert!(bound >= 2 && bound <= truth);
        }
    }

    #[test]
    fn dynamic_detections_match_ground_truth() {
        let s = study();
        for p in &s.atlas.dynamic_prefixes {
            assert!(
                s.universe.true_dynamic_prefixes(false).contains(p),
                "false dynamic prefix {p}"
            );
        }
    }

    #[test]
    fn coverage_shapes() {
        let c = coverage(study());
        assert!(c.ases_blocklisted > 0);
        assert!(c.ases_bt <= c.ases_blocklisted);
        assert!(c.ases_ripe <= c.ases_blocklisted);
        // CDFs end at 1 (or 0 when a category is empty).
        for cdf in [&c.cdf_blocklisted, &c.cdf_bt, &c.cdf_ripe] {
            if let Some(last) = cdf.last() {
                assert!(*last == 0.0 || (*last - 1.0).abs() < 1e-9);
            }
        }
        // Concentration: the top-10 ASes hold a sizable share (paper 27.7%).
        assert!(c.top10_share > 0.1);
        let (_, top_share) = c.top_as.unwrap();
        assert!(top_share > 0.01);
    }

    #[test]
    fn perlist_counts_are_consistent() {
        let s = study();
        let nat = natted_per_list(s);
        let dyn_ = dynamic_per_list(s);
        assert_eq!(nat.counts.len(), s.blocklists.catalog.len());
        // Listings ≥ addresses (an address can sit on several lists).
        assert!(nat.listings as usize >= nat.addresses);
        assert!(dyn_.listings as usize >= dyn_.addresses);
        // Counts sorted descending.
        for w in nat.counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Some lists carry no reused addresses (paper: 40% / 47%).
        assert!(nat.lists_with_none > 0);
        assert!(dyn_.lists_with_none > 0);
    }

    #[test]
    fn durations_are_bounded_and_computable() {
        // Distribution *shapes* are asserted in tests/end_to_end.rs on a
        // `shape_test` study; tiny universes only support sanity bounds.
        let s = study();
        let d = durations(s).summary();
        assert!(d.mean_days_all > 0.0);
        assert!(d.max_days <= s.config.periods.iter().map(|p| p.days()).max().unwrap() as f64);
        assert!(d.within2_all >= 0.0 && d.within2_all <= 1.0);
    }

    #[test]
    fn impact_bounds_are_sane() {
        let s = study();
        let i = impact(s);
        let summary = i.summary();
        if summary.natted_blocklisted > 0 {
            assert!(summary.max_users >= 2);
            assert!(summary.under_ten >= summary.exactly_two);
        }
        // Series is monotone nondecreasing.
        let series = i.series();
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn reused_list_roundtrip() {
        let s = study();
        let entries = reused_address_list(s);
        assert!(!entries.is_empty());
        let text = render_reused_list(&entries);
        let back = parse_reused_list(&text).unwrap();
        assert_eq!(back.len(), entries.len());
        for (a, b) in entries.iter().zip(&back) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.lists, b.lists);
            match (a.evidence, b.evidence) {
                (ReuseEvidence::Natted { users: x }, ReuseEvidence::Natted { users: y }) => {
                    assert_eq!(x, y)
                }
                (ReuseEvidence::DynamicPrefix, ReuseEvidence::DynamicPrefix) => {}
                other => panic!("evidence mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn parse_reused_list_rejects_garbage() {
        assert!(parse_reused_list("1.2.3.4\tnat:x\t3\n").is_err());
        assert!(parse_reused_list("1.2.3.4\twat:1\t3\n").is_err());
        assert!(parse_reused_list("nope\tnat:2\t3\n").is_err());
        assert!(parse_reused_list("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn summary_renders() {
        let text = render_summary(study());
        assert!(text.contains("NATed + blocklisted"));
        assert!(text.contains("blocklists monitored:        151"));
    }

    #[test]
    fn census_comparison_is_computable() {
        let s = study();
        let census = census_per_list(s);
        // The census has broader (block-level) coverage; it should find a
        // comparable-or-larger set of blocklisted "dynamic" addresses
        // (paper: 29.8K vs 30.6K listings — same ballpark).
        assert!(census.listings > 0);
    }
}
