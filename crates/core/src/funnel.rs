//! Figure 4: the detection funnels.
//!
//! Left (NAT) funnel: BitTorrent IPs → NATed IPs → NATed ∩ blocklisted
//! (paper: 48.7M → 2M → 29.7K). Right (dynamic) funnel: blocklisted
//! addresses in RIPE prefixes, narrowed by each pipeline stage
//! (53.7K → 34.4K → 33.1K → 22.7K).

use crate::study::Study;
use serde::Serialize;

/// All Figure 4 numbers, plus the §4 context counts.
#[derive(Debug, Clone, Serialize)]
pub struct Funnel {
    // NAT side.
    pub bittorrent_ips: usize,
    pub natted_ips: usize,
    pub natted_blocklisted: usize,
    // Dynamic side (blocklisted addresses within stage prefix sets).
    pub blocklisted_in_ripe: usize,
    pub blocklisted_same_as: usize,
    pub blocklisted_frequent: usize,
    pub blocklisted_daily: usize,
    // §4 context.
    pub blocklisted_total: usize,
    pub ripe_prefixes: usize,
    pub dynamic_prefixes: usize,
    pub crawl_scope_prefixes: usize,
    pub knee: u32,
}

/// Compute the funnel from a study.
pub fn funnel(study: &Study) -> Funnel {
    let stage = study.atlas_funnel_blocklisted();
    let blocklisted = study.blocklists.all_ips();
    Funnel {
        bittorrent_ips: study.bittorrent_ips().len(),
        natted_ips: study.natted_ips().len(),
        natted_blocklisted: study.natted_blocklisted().len(),
        blocklisted_in_ripe: stage["0 all RIPE prefixes"],
        blocklisted_same_as: stage["1 same-AS"],
        blocklisted_frequent: stage["2 frequent"],
        blocklisted_daily: stage["3 daily"],
        blocklisted_total: blocklisted.len(),
        ripe_prefixes: study.atlas.all.prefixes.len(),
        dynamic_prefixes: study.atlas.dynamic_prefixes.len(),
        crawl_scope_prefixes: blocklisted.prefixes().len(),
        knee: study.atlas.knee,
    }
}

impl Funnel {
    /// Sanity: every funnel narrows monotonically.
    pub fn is_monotone(&self) -> bool {
        self.bittorrent_ips >= self.natted_ips
            && self.natted_ips >= self.natted_blocklisted
            && self.blocklisted_in_ripe >= self.blocklisted_same_as
            && self.blocklisted_same_as >= self.blocklisted_frequent
            && self.blocklisted_frequent >= self.blocklisted_daily
    }
}
