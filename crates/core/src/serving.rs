//! Bridge from a completed [`Study`] to the `ar-serve` query service:
//! compile the join artifacts into a [`ReputationSnapshot`].
//!
//! The serving crate deliberately knows nothing about the measurement
//! pipeline — it consumes neutral [`SnapshotInput`] sets — so this adapter
//! is the one place the two meet. Building twice from the same study
//! yields byte-identical snapshots (the inputs are sorted sets), which is
//! what lets a hot swap to a rebuilt snapshot leave verdict streams
//! unchanged.

use crate::study::Study;
use ar_blocklists::policy::GreylistPolicy;
use ar_index::{IpSet, PrefixSet};
use ar_serve::{ReputationSnapshot, SnapshotInput};

/// Extract the serving inputs from a study's joined views.
pub fn snapshot_input(study: &Study) -> SnapshotInput {
    let memberships = study
        .blocklists
        .listings
        .iter()
        .map(|l| (u32::from(l.ip), l.list))
        .collect();
    let nat_evidence = study
        .natted_ips()
        .iter()
        .map(|ip| (u32::from(ip), study.nat_user_bound(ip).unwrap_or(2)))
        .collect();
    let dynamic_prefixes = PrefixSet::from_sorted(&study.atlas.dynamic_prefixes);
    let dynamic_addresses: IpSet = study.atlas.dynamic_addresses.iter().copied().collect();
    SnapshotInput {
        memberships,
        nat_evidence,
        dynamic_prefixes,
        dynamic_addresses,
    }
}

/// Compile `study` into a versioned snapshot under `policy`.
pub fn reputation_snapshot(
    study: &Study,
    generation: u64,
    policy: GreylistPolicy,
) -> ReputationSnapshot {
    ReputationSnapshot::build(
        generation,
        study.blocklists.catalog.clone(),
        policy,
        snapshot_input(study),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use ar_serve::{checksum_verdicts, VerdictClass};
    use ar_simnet::rng::Seed;
    use std::sync::OnceLock;

    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::run(StudyConfig::quick_test(Seed(2026))))
    }

    #[test]
    fn snapshot_agrees_with_study_joins() {
        let s = study();
        let snapshot = reputation_snapshot(s, 1, GreylistPolicy::default());
        assert_eq!(
            snapshot.listed_addresses().len(),
            s.blocklists.all_ips().len()
        );
        // Every blocklisted address resolves to a listed verdict naming at
        // least one list; every unlisted probe comes back unlisted.
        for ip in s.blocklists.all_ips().iter().take(50) {
            let v = snapshot.verdict(u32::from(ip));
            assert_ne!(v.class, VerdictClass::Unlisted, "{ip} should be listed");
            assert!(!v.lists.is_empty());
            assert_eq!(
                v.lists.len(),
                s.blocklists.lists_containing(ip).len(),
                "posting list disagrees for {ip}"
            );
        }
        let unlisted = snapshot.verdict(u32::MAX);
        assert_eq!(unlisted.class, VerdictClass::Unlisted);
    }

    #[test]
    fn rebuild_is_reproducible() {
        let s = study();
        let a = reputation_snapshot(s, 9, GreylistPolicy::default());
        let b = reputation_snapshot(s, 9, GreylistPolicy::default());
        let probe: Vec<u32> = s
            .blocklists
            .all_ips()
            .iter()
            .take(200)
            .map(u32::from)
            .collect();
        let va: Vec<_> = probe.iter().map(|&ip| a.verdict(ip)).collect();
        let vb: Vec<_> = probe.iter().map(|&ip| b.verdict(ip)).collect();
        assert_eq!(checksum_verdicts(&va), checksum_verdicts(&vb));
    }

    #[test]
    fn nat_evidence_carries_user_bounds() {
        let s = study();
        let snapshot = reputation_snapshot(s, 1, GreylistPolicy::default());
        for ip in s.natted_blocklisted().iter().take(20) {
            let v = snapshot.verdict(u32::from(ip));
            match v.evidence {
                Some(ar_blocklists::policy::ReuseEvidence::Natted { users }) => {
                    assert_eq!(users, s.nat_user_bound(ip).unwrap_or(2));
                }
                other => panic!("expected NAT evidence for {ip}, got {other:?}"),
            }
        }
    }
}
