//! Pre-assignment hygiene check (paper §6).
//!
//! "One of the surveyed network operators checks its own addresses on
//! blocklists before assigning them to new customers, to avoid unjust
//! blocking." This module is that workflow: given the collected blocklist
//! dataset and a pool of candidate addresses, report which are tainted at
//! assignment time — and when each taint expires, so the allocator can
//! prefer clean addresses or park tainted ones.

use ar_blocklists::{BlocklistDataset, ListId};
use ar_simnet::time::SimTime;
use serde::Serialize;
use std::net::Ipv4Addr;

/// Assessment of one candidate address at a point in time.
#[derive(Debug, Clone, Serialize)]
pub struct AddressAssessment {
    pub ip: Ipv4Addr,
    /// Lists with an active listing at assessment time.
    pub active_listings: Vec<ListId>,
    /// When the last active listing expires (None when clean).
    pub tainted_until: Option<SimTime>,
}

impl AddressAssessment {
    pub fn is_clean(&self) -> bool {
        self.active_listings.is_empty()
    }
}

/// Assess a pool of candidate addresses against the dataset at time `t`.
pub fn assess_pool(
    dataset: &BlocklistDataset,
    candidates: impl IntoIterator<Item = Ipv4Addr>,
    t: SimTime,
) -> Vec<AddressAssessment> {
    let index = dataset.index_by_ip();
    candidates
        .into_iter()
        .map(|ip| {
            let mut active_listings = Vec::new();
            let mut tainted_until = None;
            if let Some(listings) = index.get(&ip) {
                for l in listings {
                    if l.active_at(t) {
                        active_listings.push(l.list);
                        tainted_until = Some(match tainted_until {
                            Some(prev) if prev > l.end => prev,
                            _ => l.end,
                        });
                    }
                }
            }
            active_listings.sort();
            active_listings.dedup();
            AddressAssessment {
                ip,
                active_listings,
                tainted_until,
            }
        })
        .collect()
}

/// Partition candidates into assignable and parked sets — the operator's
/// allocator-facing API.
pub fn clean_addresses(
    dataset: &BlocklistDataset,
    candidates: impl IntoIterator<Item = Ipv4Addr>,
    t: SimTime,
) -> (Vec<Ipv4Addr>, Vec<AddressAssessment>) {
    let mut clean = Vec::new();
    let mut parked = Vec::new();
    for a in assess_pool(dataset, candidates, t) {
        if a.is_clean() {
            clean.push(a.ip);
        } else {
            parked.push(a);
        }
    }
    (clean, parked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_blocklists::{build_catalog, Listing};
    use ar_simnet::time::TimeWindow;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, o)
    }

    fn dataset() -> BlocklistDataset {
        let day = 86_400;
        BlocklistDataset::new(
            build_catalog(),
            vec![TimeWindow::new(SimTime(0), SimTime(40 * day))],
            vec![
                Listing {
                    list: ListId(0),
                    ip: ip(1),
                    start: SimTime(0),
                    end: SimTime(10 * day),
                },
                Listing {
                    list: ListId(3),
                    ip: ip(1),
                    start: SimTime(2 * day),
                    end: SimTime(20 * day),
                },
                Listing {
                    list: ListId(5),
                    ip: ip(2),
                    start: SimTime(30 * day),
                    end: SimTime(35 * day),
                },
            ],
        )
    }

    #[test]
    fn tainted_addresses_report_all_active_lists() {
        let d = dataset();
        let t = SimTime(5 * 86_400);
        let a = assess_pool(&d, [ip(1), ip(2), ip(3)], t);
        assert_eq!(a[0].active_listings, vec![ListId(0), ListId(3)]);
        assert_eq!(a[0].tainted_until, Some(SimTime(20 * 86_400)));
        assert!(a[1].is_clean(), "ip2's listing starts later");
        assert!(a[2].is_clean());
    }

    #[test]
    fn clean_partition() {
        let d = dataset();
        let (clean, parked) = clean_addresses(&d, [ip(1), ip(2), ip(3)], SimTime(32 * 86_400));
        assert_eq!(
            clean,
            vec![ip(1), ip(3)],
            "ip1's listings expired by day 32"
        );
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].ip, ip(2));
    }

    #[test]
    fn expired_listings_do_not_taint() {
        let d = dataset();
        let a = assess_pool(&d, [ip(1)], SimTime(25 * 86_400));
        assert!(a[0].is_clean());
        assert_eq!(a[0].tainted_until, None);
    }
}
