//! Figures 5 & 6: reused addresses per blocklist.
//!
//! "There are 61 blocklists (40%) that do not list any NATed addresses and
//! 72 blocklists (47%) that do not list any dynamic address. We discover
//! 45.1K listings that include 29.7K IP addresses that are NATed … 30.6K
//! listings that include 22.7K IP addresses that are dynamic. On average,
//! a blocklist lists 501 NATed IP addresses and 387 dynamic addresses."
//! (§5). A *listing* is a (list, address) pair.

use crate::study::Study;
use ar_blocklists::ListId;
use ar_index::IpSet;
use serde::Serialize;

/// Which reused-address detector a per-list tally is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReuseKind {
    Natted,
    Dynamic,
    /// Cai-et-al. census dynamic blocks (Figure 6's comparison line).
    CensusDynamic,
}

/// Per-list reused-address tally, sorted descending (the figures' x-axis).
#[derive(Debug, Clone, Serialize)]
pub struct PerListCounts {
    pub kind: ReuseKind,
    /// (list, #reused addresses listed), descending by count.
    pub counts: Vec<(ListId, u32)>,
    /// Total listings (Σ per-list counts).
    pub listings: u64,
    /// Distinct reused addresses across all lists.
    pub addresses: usize,
    /// Lists with zero reused addresses.
    pub lists_with_none: usize,
    /// Mean reused addresses per list (over all lists).
    pub mean_per_list: f64,
    /// Share of listings carried by the ten largest lists.
    pub top10_share: f64,
    /// Share of ALL blocklisted addresses held by those same top-10 lists
    /// (§5: "this is expected, as the top 10 blocklists … contribute to
    /// 53.4% and 70.3% of all blocklisted addresses").
    pub top10_share_of_all_blocklisted: f64,
}

fn tally(study: &Study, reused: &IpSet, kind: ReuseKind) -> PerListCounts {
    let total_lists = study.blocklists.catalog.len();
    let mut counts: Vec<(ListId, u32)> = study
        .blocklists
        .catalog
        .iter()
        .map(|meta| {
            let n = study
                .blocklists
                .ips_of_list(meta.id)
                .intersection_count(reused) as u32;
            (meta.id, n)
        })
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let listings: u64 = counts.iter().map(|(_, n)| u64::from(*n)).sum();
    let top10: u64 = counts.iter().take(10).map(|(_, n)| u64::from(*n)).sum();
    // How much of the *whole* blocklisted population the same top-10 lists
    // hold: the paper's explanation for why they dominate reused listings.
    let all_blocklisted = study.blocklists.all_ips();
    let top10_all: usize = counts
        .iter()
        .take(10)
        .map(|(list, _)| study.blocklists.ips_of_list(*list).len())
        .sum();
    PerListCounts {
        kind,
        listings,
        addresses: reused.len(),
        lists_with_none: counts.iter().filter(|(_, n)| *n == 0).count(),
        mean_per_list: listings as f64 / total_lists as f64,
        top10_share: if listings == 0 {
            0.0
        } else {
            top10 as f64 / listings as f64
        },
        top10_share_of_all_blocklisted: if all_blocklisted.is_empty() {
            0.0
        } else {
            // Listings overlap across lists, so this can exceed 1; clamp
            // like the paper's address-share framing.
            (top10_all as f64 / all_blocklisted.len() as f64).min(1.0)
        },
        counts,
    }
}

/// Figure 5: NATed addresses per list.
pub fn natted_per_list(study: &Study) -> PerListCounts {
    tally(study, &study.natted_blocklisted(), ReuseKind::Natted)
}

/// Figure 6 (colored line): RIPE-detected dynamic addresses per list.
pub fn dynamic_per_list(study: &Study) -> PerListCounts {
    tally(study, &study.dynamic_blocklisted(), ReuseKind::Dynamic)
}

/// Figure 6 (black line): census-detected dynamic addresses per list.
pub fn census_per_list(study: &Study) -> PerListCounts {
    tally(study, &study.census_blocklisted(), ReuseKind::CensusDynamic)
}
