//! `address-reuse` — command-line front end to the reproduction.
//!
//! ```text
//! address-reuse study [--seed N] [--scale N] [--out DIR]
//!                     [--metrics-out FILE] [--quick]
//!     run the full measurement campaign; write the reused-address list,
//!     the summary, and the per-list exposure table into DIR (default .).
//!     --metrics-out dumps the RunReport (counters, phase spans, events)
//!     as JSON; --quick uses the small test configuration (CI smoke)
//!
//! address-reuse greylist --feed FILE --reused FILE [--category CAT]
//!     split a plain-format feed into FILE.block / FILE.grey using a
//!     published reused-address list (§6 policy)
//!
//! address-reuse check --feed FILE ADDRESS...
//!     pre-assignment hygiene: is ADDRESS on the feed right now?
//!
//! address-reuse serve [--seed N] [--scale N] [--quick] [--addr HOST:PORT]
//!                     [--shards N] [--selftest] [--chaos INTENSITY]
//!     run a study, compile it into a reputation snapshot and serve
//!     verdicts over the length-prefixed TCP protocol. --selftest binds an
//!     ephemeral port, replays a fixed seeded 1000-query batch through a
//!     TCP client, checks the verdict checksum against the in-process
//!     batch API, prints the serve health report, and exits (the CI smoke
//!     path). --chaos arms the seeded serving-path fault plan at the given
//!     intensity (worker panics, stalls, latency spikes) — the supervisor
//!     and retry policy must ride it out
//!
//! address-reuse stats --addr HOST:PORT [--watch SECS]
//!     scrape a running server's live telemetry plane over the wire
//!     (`OP_STATS`): logical tick, per-shard queue depths, windowed
//!     rates, SLO state, trace digest. --watch re-scrapes every SECS
//!     seconds until killed (the tick is a logical query-ordinal clock,
//!     so an idle server's scrape is unchanged between polls)
//!
//! address-reuse catalog | questionnaire
//!     print the Table 2 catalogue / the Appendix C survey instrument
//! ```

use address_reuse::{
    parse_reused_list, render_reused_list, render_summary, reused_address_list, split_feed,
    GreylistPolicy, Study, StudyConfig,
};
use ar_blocklists::{build_catalog, parse_plain_tolerant, render_plain};
use ar_simnet::config::UniverseConfig;
use ar_simnet::malice::MaliceCategory;
use ar_simnet::rng::Seed;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: address-reuse <study|greylist|check|serve|stats|catalog|questionnaire> [options]"
        );
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "study" => cmd_study(rest),
        "greylist" => cmd_greylist(rest),
        "check" => cmd_check(rest),
        "serve" => cmd_serve(rest),
        "stats" => cmd_stats(rest),
        "catalog" => cmd_catalog(),
        "questionnaire" => {
            println!("{}", ar_survey::render_questionnaire());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_study(args: &[String]) -> Result<(), String> {
    let seed = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(2020u64);
    let scale = flag_value(args, "--scale")
        .map(|v| v.parse().map_err(|e| format!("bad --scale: {e}")))
        .transpose()?
        .unwrap_or(2000u32);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| ".".into()));
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    let quick = args.iter().any(|a| a == "--quick");

    let config = if quick {
        eprintln!("running quick study (seed {seed})…");
        StudyConfig::quick_test(Seed(seed))
    } else {
        eprintln!("running study (seed {seed}, scale 1:{scale})…");
        StudyConfig::paper(Seed(seed), UniverseConfig::at_scale(scale))
    };
    let study = Study::run(config);

    if let Some(path) = &metrics_out {
        let report = study
            .run_report
            .as_ref()
            .expect("metrics collection is on by default");
        let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "wrote {} ({} events, {} counters)",
            path.display(),
            report.total_events(),
            report.counters.len()
        );
    }

    let summary = render_summary(&study);
    print!("{summary}");
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    std::fs::write(out.join("summary.txt"), &summary).map_err(|e| e.to_string())?;

    let list = reused_address_list(&study);
    std::fs::write(out.join("reused_addresses.txt"), render_reused_list(&list))
        .map_err(|e| e.to_string())?;
    let inventory =
        serde_json::to_string_pretty(&study.universe.summary()).map_err(|e| e.to_string())?;
    std::fs::write(out.join("universe.json"), inventory).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} and {} ({} reused addresses)",
        out.join("summary.txt").display(),
        out.join("reused_addresses.txt").display(),
        list.len()
    );
    Ok(())
}

fn parse_category(name: &str) -> Result<MaliceCategory, String> {
    MaliceCategory::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown category {name:?}; one of: {}",
                MaliceCategory::ALL.map(|c| c.name()).join(", ")
            )
        })
}

/// Parse a feed damage-tolerantly: a corrupt row costs that row, not the
/// command. Damage is counted through the ar-obs feed-damage channel and
/// summarised on stderr.
fn read_feed_tolerant(feed_path: &str, feed_text: &str) -> Vec<Ipv4Addr> {
    let parsed = parse_plain_tolerant(feed_text);
    if !parsed.is_clean() {
        let obs = ar_obs::Obs::new();
        parsed.record_obs(&obs, feed_path);
        for event in &obs.report().events {
            eprintln!("warning: {}", event.detail);
        }
    }
    parsed.addrs
}

fn cmd_greylist(args: &[String]) -> Result<(), String> {
    let feed_path = flag_value(args, "--feed").ok_or("--feed FILE required")?;
    let reused_path = flag_value(args, "--reused").ok_or("--reused FILE required")?;
    let category = flag_value(args, "--category")
        .map(|c| parse_category(&c))
        .transpose()?
        .unwrap_or(MaliceCategory::Spam);

    let feed_text = std::fs::read_to_string(&feed_path).map_err(|e| format!("{feed_path}: {e}"))?;
    let members = read_feed_tolerant(&feed_path, &feed_text);
    let reused_text =
        std::fs::read_to_string(&reused_path).map_err(|e| format!("{reused_path}: {e}"))?;
    let reused = parse_reused_list(&reused_text)?;

    // A synthetic meta of the requested category carries the policy role.
    let meta = build_catalog()
        .into_iter()
        .find(|m| m.category == category)
        .ok_or("catalogue has no list of that category")?;

    let split = split_feed(&GreylistPolicy::default(), &meta, members, &reused);
    let block_path = format!("{feed_path}.block");
    let grey_path = format!("{feed_path}.grey");
    std::fs::write(&block_path, render_plain("hard-block", &split.block))
        .map_err(|e| e.to_string())?;
    std::fs::write(&grey_path, render_plain("greylist", &split.greylist))
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} block, {} greylist ({:.1}% of the feed is reused space)",
        feed_path,
        split.block.len(),
        split.greylist.len(),
        100.0 * split.greylist_share()
    );
    println!("wrote {block_path} and {grey_path}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let feed_path = flag_value(args, "--feed").ok_or("--feed FILE required")?;
    let feed_text = std::fs::read_to_string(&feed_path).map_err(|e| format!("{feed_path}: {e}"))?;
    let members: std::collections::BTreeSet<Ipv4Addr> = read_feed_tolerant(&feed_path, &feed_text)
        .into_iter()
        .collect();

    let addresses: Vec<&String> = args.iter().skip_while(|a| *a != "--feed").skip(2).collect();
    if addresses.is_empty() {
        return Err("no addresses to check".into());
    }
    let mut tainted = 0;
    for raw in addresses {
        let ip: Ipv4Addr = raw
            .parse()
            .map_err(|e| format!("bad address {raw:?}: {e}"))?;
        if members.contains(&ip) {
            println!("{ip}\tTAINTED — do not assign");
            tainted += 1;
        } else {
            println!("{ip}\tclean");
        }
    }
    if tainted > 0 {
        Err(format!("{tainted} candidate address(es) are listed"))
    } else {
        Ok(())
    }
}

/// The fixed seeded query mix the selftest (and the CI smoke job) replay:
/// alternating draws from the snapshot's own listed addresses and a
/// uniform u32 scan, deterministic in `seed`.
fn selftest_queries(seed: Seed, listed: &[u32], n: usize) -> Vec<u32> {
    let mut queries = Vec::with_capacity(n);
    let mut state = seed.fork("serve-selftest").0;
    for i in 0..n {
        // splitmix64 step: the query log depends only on the seed.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if i % 2 == 0 && !listed.is_empty() {
            queries.push(listed[(z as usize) % listed.len()]);
        } else {
            queries.push(z as u32);
        }
    }
    queries
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let seed = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(2020u64);
    let scale = flag_value(args, "--scale")
        .map(|v| v.parse().map_err(|e| format!("bad --scale: {e}")))
        .transpose()?
        .unwrap_or(2000u32);
    let shards = flag_value(args, "--shards")
        .map(|v| v.parse().map_err(|e| format!("bad --shards: {e}")))
        .transpose()?
        .unwrap_or(4usize);
    let chaos = flag_value(args, "--chaos")
        .map(|v| v.parse::<f64>().map_err(|e| format!("bad --chaos: {e}")))
        .transpose()?;
    let selftest = args.iter().any(|a| a == "--selftest");
    let quick = selftest || args.iter().any(|a| a == "--quick");
    let addr = flag_value(args, "--addr").unwrap_or_else(|| {
        if selftest {
            "127.0.0.1:0".into()
        } else {
            "127.0.0.1:4780".into()
        }
    });

    let config = if quick {
        eprintln!("building snapshot from quick study (seed {seed})…");
        StudyConfig::quick_test(Seed(seed))
    } else {
        eprintln!("building snapshot from study (seed {seed}, scale 1:{scale})…");
        StudyConfig::paper(Seed(seed), UniverseConfig::at_scale(scale))
    };
    let study = Study::run(config);
    let snapshot = address_reuse::reputation_snapshot(&study, 1, GreylistPolicy::default());
    let listed: Vec<u32> = snapshot.listed_addresses().as_raw().to_vec();
    eprintln!(
        "snapshot generation 1: {} addresses, {} postings",
        listed.len(),
        snapshot.posting_count()
    );

    let obs = ar_obs::Obs::new();
    let mut options = ar_serve::ServeOptions::default();
    if let Some(intensity) = chaos {
        eprintln!("chaos fault plan armed: seed {seed}, intensity {intensity}");
        options.faults = Some(ar_faults::ServeFaultPlan::new(
            Seed(seed).fork("serve-chaos"),
            intensity,
        ));
    }
    let server = ar_serve::ReputationServer::with_options(snapshot, shards, obs, options);
    let listener = std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let handle = server.serve(listener).map_err(|e| e.to_string())?;
    eprintln!("serving on {} with {shards} shard(s)", handle.addr());

    if selftest {
        let queries = selftest_queries(Seed(seed), &listed, 1000);
        // Under an armed chaos plan workers may panic mid-connection;
        // the seeded retry policy rides out the supervisor restarts.
        let policy = if chaos.is_some() {
            ar_serve::RetryPolicy::resilient(Seed(seed).fork("selftest-retry"))
        } else {
            ar_serve::RetryPolicy::off()
        };
        let mut client = ar_serve::Client::connect_with(handle.addr(), policy)
            .map_err(|e| format!("connect: {e}"))?;
        let over_tcp = client.query(&queries).map_err(|e| format!("query: {e}"))?;
        let tcp_sum = ar_serve::checksum_verdicts(&over_tcp);
        let in_process = server.verdict_batch(&queries);
        let local_sum = ar_serve::checksum_verdicts(&in_process);
        let summary =
            ar_serve::LatencySummary::from_report(&server.obs().report(), "serve.frame_micros");
        println!(
            "serve selftest: {} queries, latency {}",
            queries.len(),
            summary.render()
        );
        println!("verdict checksum (tcp):        {tcp_sum:#018x}");
        println!("verdict checksum (in-process): {local_sum:#018x}");
        // Live telemetry scrape over the wire: the logical tick must
        // have advanced past both query batches, and the cumulative
        // stats counters must agree with the server's own registry.
        let stats = client.stats().map_err(|e| format!("stats scrape: {e}"))?;
        println!("stats: {}", stats.render());
        if stats.tick < queries.len() as u64 {
            return Err(format!(
                "stats tick {} below the {} queries already answered",
                stats.tick,
                queries.len()
            ));
        }
        if chaos.is_none()
            && stats.counter("serve.queries") != server.obs().report().counters["serve.queries"]
        {
            return Err("OP_STATS counters disagree with the run report".into());
        }
        // Capture health before shutdown flips the state to Draining.
        let report = server.health_report();
        handle.shutdown();
        println!("{}", report.render());
        if !report.is_clean() && chaos.is_none() {
            return Err("serve health report is not clean after selftest".into());
        }
        if tcp_sum == local_sum {
            println!("selftest ok");
            Ok(())
        } else {
            Err("verdict checksum mismatch between TCP and in-process paths".into())
        }
    } else {
        // Serve until killed; the acceptor and shard workers do the work.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:4780".into());
    let watch = flag_value(args, "--watch")
        .map(|v| v.parse::<u64>().map_err(|e| format!("bad --watch: {e}")))
        .transpose()?;
    let mut client =
        ar_serve::Client::connect(addr.parse().map_err(|e| format!("bad --addr: {e}"))?)
            .map_err(|e| format!("connect {addr}: {e}"))?;
    loop {
        let frame = client.stats().map_err(|e| format!("stats scrape: {e}"))?;
        println!("{}", frame.render());
        match watch {
            // A logical-clock poll: an idle server prints the same line.
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return Ok(()),
        }
    }
}

fn cmd_catalog() -> Result<(), String> {
    let catalog = build_catalog();
    println!(
        "{:<40} {:<18} {:<16} survey-used",
        "list", "maintainer", "category"
    );
    for meta in &catalog {
        println!(
            "{:<40} {:<18} {:<16} {}",
            meta.name,
            meta.maintainer,
            meta.category.name(),
            if meta.survey_used { "*" } else { "" }
        );
    }
    println!("total: {} lists", catalog.len());
    Ok(())
}
