//! Executable §6 policy — re-exported from [`ar_blocklists::policy`].
//!
//! The policy types moved next to the catalogue they act on so that the
//! `ar-serve` reputation service can apply them without depending on the
//! whole measurement pipeline. This module keeps the historical
//! `address_reuse::greylist::*` paths alive.

pub use ar_blocklists::policy::{action_for, split_feed, Action, GreylistPolicy, SplitFeed};
