//! Executable §6 policy: split a blocklist feed into hard-block and
//! greylist components using the published reused-address list.
//!
//! "Operators that use DDoS blocklists … should block all traffic listed …
//! even if there is collateral damage due to reused addresses. On the
//! other hand, network operators using application-specific blocklists
//! (such as spam blocklists) that require more accuracy, can use our list
//! to implement greylisting" (paper §6).

use crate::report::{ReuseEvidence, ReusedAddressEntry};
use ar_blocklists::{BlocklistMeta, ListId};
use ar_simnet::malice::MaliceCategory;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// What an operator should do with one feed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Action {
    /// Drop traffic outright.
    Block,
    /// Greylist: delay/challenge instead of dropping (SMTP tempfail,
    /// CAPTCHA, rate-limit) so legitimate co-holders of the address
    /// retain service.
    Greylist,
}

/// Operator policy knobs.
#[derive(Debug, Clone)]
pub struct GreylistPolicy {
    /// Categories whose feeds are volumetric-defence lists: collateral
    /// damage is accepted and reused entries stay blocked (paper: DDoS).
    pub always_block: Vec<MaliceCategory>,
    /// Minimum detected users behind a NAT before an entry is considered
    /// too costly to hard-block (1 = any confirmed NAT).
    pub min_nat_users: u32,
    /// Whether dynamic-prefix evidence downgrades to greylist.
    pub greylist_dynamic: bool,
}

impl Default for GreylistPolicy {
    fn default() -> Self {
        GreylistPolicy {
            always_block: vec![MaliceCategory::Ddos],
            min_nat_users: 2,
            greylist_dynamic: true,
        }
    }
}

/// The split feed for one blocklist.
#[derive(Debug, Clone, Serialize)]
pub struct SplitFeed {
    pub list: ListId,
    pub block: Vec<Ipv4Addr>,
    pub greylist: Vec<Ipv4Addr>,
}

impl SplitFeed {
    pub fn greylist_share(&self) -> f64 {
        let total = self.block.len() + self.greylist.len();
        if total == 0 {
            0.0
        } else {
            self.greylist.len() as f64 / total as f64
        }
    }
}

/// Decide the action for one feed entry of `meta` given reuse `evidence`.
pub fn action_for(
    policy: &GreylistPolicy,
    meta: &BlocklistMeta,
    evidence: Option<&ReusedAddressEntry>,
) -> Action {
    if policy.always_block.contains(&meta.category) {
        return Action::Block;
    }
    match evidence.map(|e| e.evidence) {
        Some(ReuseEvidence::Natted { users }) if users >= policy.min_nat_users => Action::Greylist,
        Some(ReuseEvidence::DynamicPrefix) if policy.greylist_dynamic => Action::Greylist,
        _ => Action::Block,
    }
}

/// Split one list's membership into block/greylist sets.
pub fn split_feed(
    policy: &GreylistPolicy,
    meta: &BlocklistMeta,
    members: impl IntoIterator<Item = Ipv4Addr>,
    reused: &[ReusedAddressEntry],
) -> SplitFeed {
    let by_ip: BTreeMap<Ipv4Addr, &ReusedAddressEntry> = reused.iter().map(|e| (e.ip, e)).collect();
    let mut block = Vec::new();
    let mut greylist = Vec::new();
    for ip in members {
        match action_for(policy, meta, by_ip.get(&ip).copied()) {
            Action::Block => block.push(ip),
            Action::Greylist => greylist.push(ip),
        }
    }
    block.sort();
    greylist.sort();
    SplitFeed {
        list: meta.id,
        block,
        greylist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_blocklists::build_catalog;

    fn entry(ip: &str, evidence: ReuseEvidence) -> ReusedAddressEntry {
        ReusedAddressEntry {
            ip: ip.parse().unwrap(),
            evidence,
            lists: 1,
        }
    }

    fn meta_of(category: MaliceCategory) -> BlocklistMeta {
        build_catalog()
            .into_iter()
            .find(|m| m.category == category)
            .expect("catalogue covers category")
    }

    #[test]
    fn spam_feeds_greylist_reused_entries() {
        let policy = GreylistPolicy::default();
        let spam = meta_of(MaliceCategory::Spam);
        let reused = vec![
            entry("192.0.2.1", ReuseEvidence::Natted { users: 5 }),
            entry("192.0.2.2", ReuseEvidence::DynamicPrefix),
        ];
        let members: Vec<Ipv4Addr> = vec![
            "192.0.2.1".parse().unwrap(),
            "192.0.2.2".parse().unwrap(),
            "192.0.2.3".parse().unwrap(),
        ];
        let split = split_feed(&policy, &spam, members, &reused);
        assert_eq!(split.greylist.len(), 2);
        assert_eq!(split.block.len(), 1);
        assert!((split.greylist_share() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ddos_feeds_always_block() {
        let policy = GreylistPolicy::default();
        let ddos = meta_of(MaliceCategory::Ddos);
        let reused = vec![entry("192.0.2.1", ReuseEvidence::Natted { users: 50 })];
        let split = split_feed(&policy, &ddos, vec!["192.0.2.1".parse().unwrap()], &reused);
        assert!(split.greylist.is_empty(), "DDoS accepts collateral damage");
        assert_eq!(split.block.len(), 1);
    }

    #[test]
    fn thresholds_respected() {
        let policy = GreylistPolicy {
            min_nat_users: 10,
            ..GreylistPolicy::default()
        };
        let spam = meta_of(MaliceCategory::Spam);
        assert_eq!(
            action_for(
                &policy,
                &spam,
                Some(&entry("192.0.2.1", ReuseEvidence::Natted { users: 5 }))
            ),
            Action::Block,
            "below threshold stays blocked"
        );
        assert_eq!(
            action_for(
                &policy,
                &spam,
                Some(&entry("192.0.2.1", ReuseEvidence::Natted { users: 10 }))
            ),
            Action::Greylist
        );
        let no_dynamic = GreylistPolicy {
            greylist_dynamic: false,
            ..GreylistPolicy::default()
        };
        assert_eq!(
            action_for(
                &no_dynamic,
                &spam,
                Some(&entry("192.0.2.2", ReuseEvidence::DynamicPrefix))
            ),
            Action::Block
        );
    }

    #[test]
    fn unlisted_addresses_block() {
        let policy = GreylistPolicy::default();
        let spam = meta_of(MaliceCategory::Spam);
        assert_eq!(action_for(&policy, &spam, None), Action::Block);
    }
}
