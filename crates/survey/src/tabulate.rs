//! Aggregation: Table 1 and Figure 9 from respondent records.

use crate::schema::{BlocklistType, Respondent};
use serde::Serialize;

/// Table 1: "Summary of survey responses on usage of blocklists."
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    pub respondents: usize,
    /// % using external blocklists.
    pub external_pct: f64,
    /// % maintaining internal blocklists (§6 text).
    pub internal_pct: f64,
    pub paid_avg: f64,
    pub paid_max: u32,
    pub public_avg: f64,
    pub public_max: u32,
    /// % directly blocking on blocklists.
    pub direct_block_pct: f64,
    /// % feeding a threat-intelligence system.
    pub threat_intel_pct: f64,
    /// Reuse questions: answered by this many respondents…
    pub reuse_answerers: usize,
    /// …% of whom see dynamic addressing hurting accuracy.
    pub dynamic_issue_pct: f64,
    /// …% of whom see carrier-grade NAT hurting accuracy.
    pub cgn_issue_pct: f64,
}

/// One Figure 9 bar: % of reuse-affected operators using a list type.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig9Bar {
    pub list_type: BlocklistType,
    pub pct: f64,
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Compute Table 1 from the pool.
pub fn table1(pool: &[Respondent]) -> Table1 {
    let n = pool.len();
    let external: Vec<&Respondent> = pool.iter().filter(|r| r.uses_external).collect();
    let answerers: Vec<&Respondent> = pool.iter().filter(|r| r.answered_reuse).collect();
    let mean = |it: &mut dyn Iterator<Item = u32>| -> f64 {
        let v: Vec<u32> = it.collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64
        }
    };
    Table1 {
        respondents: n,
        external_pct: pct(external.len(), n),
        internal_pct: pct(pool.iter().filter(|r| r.maintains_internal).count(), n),
        paid_avg: mean(&mut external.iter().map(|r| r.paid_lists)),
        paid_max: external.iter().map(|r| r.paid_lists).max().unwrap_or(0),
        public_avg: mean(&mut external.iter().map(|r| r.public_lists)),
        public_max: external.iter().map(|r| r.public_lists).max().unwrap_or(0),
        direct_block_pct: pct(pool.iter().filter(|r| r.direct_block).count(), n),
        threat_intel_pct: pct(pool.iter().filter(|r| r.threat_intel).count(), n),
        reuse_answerers: answerers.len(),
        dynamic_issue_pct: pct(
            answerers
                .iter()
                .filter(|r| r.dynamic_inaccurate == Some(true))
                .count(),
            answerers.len(),
        ),
        cgn_issue_pct: pct(
            answerers
                .iter()
                .filter(|r| r.cgn_inaccurate == Some(true))
                .count(),
            answerers.len(),
        ),
    }
}

/// Compute Figure 9: blocklist types used by operators that faced
/// reuse-related accuracy issues, sorted descending by usage.
pub fn figure9(pool: &[Respondent]) -> Vec<Fig9Bar> {
    let affected: Vec<&Respondent> = pool.iter().filter(|r| r.faced_reuse_issues()).collect();
    let mut bars: Vec<Fig9Bar> = BlocklistType::ALL
        .iter()
        .map(|&t| Fig9Bar {
            list_type: t,
            pct: pct(
                affected
                    .iter()
                    .filter(|r| r.list_types.contains(&t))
                    .count(),
                affected.len(),
            ),
        })
        .collect();
    bars.sort_by(|a, b| b.pct.partial_cmp(&a.pct).expect("pcts are finite"));
    bars
}

/// Render Table 1 in the paper's layout.
pub fn render_table1(t: &Table1) -> String {
    format!(
        "Question                     Response\n\
         --------------------------------------------\n\
         Blocklist  External blocklists   {:.0}%\n\
         usage      Paid-for blocklists   Avg:{:.0} Max:{}\n\
         .          Public blocklists     Avg:{:.0} Max:{}\n\
         Active     Directly block IPs    {:.0}%\n\
         defense    Threat intelligence   {:.0}%\n\
         Issues     Dynamic addressing*   {:.0}%\n\
         .          Carrier-grade NATs*   {:.0}%\n\
         (*) answered by {} of {} respondents\n",
        t.external_pct,
        t.paid_avg,
        t.paid_max,
        t.public_avg,
        t.public_max,
        t.direct_block_pct,
        t.threat_intel_pct,
        t.dynamic_issue_pct,
        t.cgn_issue_pct,
        t.reuse_answerers,
        t.respondents,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_respondents, SurveyTargets};
    use ar_simnet::rng::Seed;

    fn pool() -> Vec<Respondent> {
        generate_respondents(Seed(7), &SurveyTargets::default())
    }

    #[test]
    fn table1_matches_paper_aggregates() {
        let t = table1(&pool());
        assert_eq!(t.respondents, 65);
        assert!((t.external_pct - 85.0).abs() < 1.5, "{}", t.external_pct);
        assert_eq!(t.paid_max, 39);
        assert_eq!(t.public_max, 68);
        assert_eq!(t.reuse_answerers, 34);
        // 26/34 ≈ 76%, 19/34 ≈ 56%.
        assert!((t.dynamic_issue_pct - 76.0).abs() < 1.0);
        assert!((t.cgn_issue_pct - 56.0).abs() < 1.0);
        // Averages are sampled, not pinned: generous tolerance.
        assert!((t.paid_avg - 2.0).abs() < 2.0, "paid_avg={}", t.paid_avg);
        assert!(
            (t.public_avg - 10.0).abs() < 6.0,
            "public_avg={}",
            t.public_avg
        );
    }

    #[test]
    fn figure9_is_sorted_and_spam_led() {
        let bars = figure9(&pool());
        assert_eq!(bars.len(), BlocklistType::ALL.len());
        for w in bars.windows(2) {
            assert!(w[0].pct >= w[1].pct);
        }
        // With ~30 affected respondents the 96% vs 85% gap between spam and
        // reputation can flip by sampling noise; demand spam in the top two
        // and heavily used.
        assert!(
            bars[..2].iter().any(|b| b.list_type == BlocklistType::Spam),
            "spam should lead: {bars:?}"
        );
        let spam = bars
            .iter()
            .find(|b| b.list_type == BlocklistType::Spam)
            .unwrap();
        assert!(spam.pct > 70.0);
        let voip = bars
            .iter()
            .find(|b| b.list_type == BlocklistType::Voip)
            .unwrap();
        assert!(voip.pct < 30.0);
    }

    #[test]
    fn render_contains_key_rows() {
        let text = render_table1(&table1(&pool()));
        assert!(text.contains("External blocklists"));
        assert!(text.contains("Max:39"));
        assert!(text.contains("Max:68"));
        assert!(text.contains("34 of 65"));
    }

    #[test]
    fn empty_pool_is_safe() {
        let t = table1(&[]);
        assert_eq!(t.respondents, 0);
        assert_eq!(t.external_pct, 0.0);
        let bars = figure9(&[]);
        assert!(bars.iter().all(|b| b.pct == 0.0));
    }
}
