//! # ar-survey — the network-operator survey (paper §6, Appendix A/C)
//!
//! Models the paper's 65-respondent operator survey: a typed questionnaire
//! schema, quota-based respondent generation matched to every published
//! aggregate, and the tabulations behind Table 1 ("Summary of survey
//! responses on usage of blocklists") and Figure 9 (blocklist types used
//! by operators that faced reuse-related inaccuracies).
//!
//! ```
//! use ar_survey::{generate_respondents, table1, SurveyTargets};
//! use ar_simnet::Seed;
//!
//! let pool = generate_respondents(Seed(1), &SurveyTargets::default());
//! let t = table1(&pool);
//! assert_eq!(t.respondents, 65);
//! assert_eq!(t.reuse_answerers, 34);
//! ```

pub mod generate;
pub mod questionnaire;
pub mod schema;
pub mod tabulate;

pub use generate::{generate_respondents, SurveyTargets, FIG9_USAGE};
pub use questionnaire::{render_questionnaire, AnswerKind, Question, QUESTIONNAIRE};
pub use schema::{BlocklistType, NetworkType, Region, Respondent};
pub use tabulate::{figure9, render_table1, table1, Fig9Bar, Table1};
