//! The full questionnaire (paper Appendix C).
//!
//! Typed representation of the 26 survey items so tooling can render the
//! instrument, validate response records against it, and distinguish
//! open-ended items (marked with `*` in the paper) from closed ones.

use serde::Serialize;

/// How a question is answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AnswerKind {
    /// Free-text (asterisked in Appendix C).
    OpenEnded,
    /// Yes/no.
    YesNo,
    /// One option from a fixed set.
    SingleChoice,
    /// Any number of options from a fixed set.
    MultiChoice,
    /// A numeric quantity (counts of lists, subscribers, …).
    Numeric,
}

/// One questionnaire item.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Question {
    /// 1-based number, as in Appendix C.
    pub number: u8,
    pub text: &'static str,
    pub kind: AnswerKind,
}

/// The Appendix C instrument, in order.
pub const QUESTIONNAIRE: [Question; 26] = [
    Question { number: 1, text: "What is your company's name and AS number if available?", kind: AnswerKind::OpenEnded },
    Question { number: 2, text: "What is your position / your role in network management?", kind: AnswerKind::OpenEnded },
    Question { number: 3, text: "What is your email address?", kind: AnswerKind::OpenEnded },
    Question { number: 4, text: "May we reach out to you via email: to inform you once the results of this survey are publicly available", kind: AnswerKind::YesNo },
    Question { number: 5, text: "May we reach out to you via email: with further questions", kind: AnswerKind::YesNo },
    Question { number: 6, text: "What type of network do you run? (more than one choice possible)", kind: AnswerKind::MultiChoice },
    Question { number: 7, text: "How many subscribers do you connect to the Internet?", kind: AnswerKind::Numeric },
    Question { number: 8, text: "In what geographic region(s) do you operate?", kind: AnswerKind::MultiChoice },
    Question { number: 9, text: "Do you maintain internal blocklists?", kind: AnswerKind::YesNo },
    Question { number: 10, text: "How and why did you develop internal blocklists? How do they compare to third-party blocklists?", kind: AnswerKind::OpenEnded },
    Question { number: 11, text: "How many third-party blocklists do you use?", kind: AnswerKind::Numeric },
    Question { number: 12, text: "Which of the following types of third-party blocklists do you use? (Please select all that apply)", kind: AnswerKind::MultiChoice },
    Question { number: 13, text: "What factors determine which third-party blocklists you use?", kind: AnswerKind::OpenEnded },
    Question { number: 14, text: "Do you use third-party blocklists to directly block malicious activity?", kind: AnswerKind::YesNo },
    Question { number: 15, text: "Do you use third-party blocklists as an input to a threat intelligence system?", kind: AnswerKind::YesNo },
    Question { number: 16, text: "In your experience, do third-party blocklists provide accurate information on threats?", kind: AnswerKind::YesNo },
    Question { number: 17, text: "What are the shortcomings of any third-party blocklists you are familiar with?", kind: AnswerKind::OpenEnded },
    Question { number: 18, text: "What are the strengths of any third-party blocklists you are familiar with?", kind: AnswerKind::OpenEnded },
    Question { number: 19, text: "How do your filtering practices vary according to type of attack or blocklist?", kind: AnswerKind::OpenEnded },
    Question { number: 20, text: "To help us map your responses to the blocklists we are monitoring, please list the third-party blocklists you use.", kind: AnswerKind::OpenEnded },
    Question { number: 21, text: "Do you see the quality of blocklists being affected by: Dynamic addressing", kind: AnswerKind::YesNo },
    Question { number: 22, text: "Do you see the quality of blocklists being affected by: Carrier grade NATs", kind: AnswerKind::YesNo },
    Question { number: 23, text: "Do you see the quality of blocklists being affected by: Other", kind: AnswerKind::OpenEnded },
    Question { number: 24, text: "How could blocklists be improved?", kind: AnswerKind::OpenEnded },
    Question { number: 25, text: "Do you donate data from your network to community blocklist sources (such as Project Honeypot or DShield)?", kind: AnswerKind::YesNo },
    Question { number: 26, text: "Is there anything else you would like to share with us?", kind: AnswerKind::OpenEnded },
];

/// Questions a [`crate::schema::Respondent`] record materialises. Items not
/// listed are either identity/consent fields the paper never aggregates or
/// open-ended text.
pub const MATERIALISED: [u8; 9] = [6, 7, 8, 9, 11, 14, 15, 21, 22];

/// Render the instrument as the paper's appendix lays it out.
pub fn render_questionnaire() -> String {
    let mut out = String::from("Questionnaire on perceptions of blocklists\n\n");
    for q in QUESTIONNAIRE {
        let star = if q.kind == AnswerKind::OpenEnded {
            "*"
        } else {
            ""
        };
        out.push_str(&format!("({}) {}{}\n", q.number, q.text, star));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_is_dense_and_ordered() {
        for (i, q) in QUESTIONNAIRE.iter().enumerate() {
            assert_eq!(usize::from(q.number), i + 1);
        }
    }

    #[test]
    fn open_ended_matches_paper_asterisks() {
        // Appendix C stars: 1,2,3,10,13,17,18,19,20,23,24,26.
        let starred: Vec<u8> = QUESTIONNAIRE
            .iter()
            .filter(|q| q.kind == AnswerKind::OpenEnded)
            .map(|q| q.number)
            .collect();
        assert_eq!(starred, vec![1, 2, 3, 10, 13, 17, 18, 19, 20, 23, 24, 26]);
    }

    #[test]
    fn materialised_questions_exist_and_are_closed() {
        for n in MATERIALISED {
            let q = &QUESTIONNAIRE[usize::from(n) - 1];
            assert_ne!(q.kind, AnswerKind::OpenEnded, "Q{n} must be closed-form");
        }
    }

    #[test]
    fn render_contains_all_items() {
        let text = render_questionnaire();
        let items = text.lines().filter(|l| l.starts_with('(')).count();
        assert_eq!(items, 26);
        assert!(text.contains("Carrier grade NATs"));
    }
}
