//! Survey data model (paper §6 and Appendices A/C).
//!
//! The original survey ran on operator mailing lists (65 complete
//! responses); its anonymised micro-data was never published, only the
//! aggregates in Table 1 and Figure 9. The reproduction models individual
//! [`Respondent`] records whose *aggregates match the published numbers*,
//! so the tabulation code is exercised end to end.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Kind of network the respondent operates (survey Q6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkType {
    EndUserIsp,
    EnterpriseIsp,
    ContentProvider,
    Enterprise,
    Education,
}

impl NetworkType {
    pub const ALL: [NetworkType; 5] = [
        NetworkType::EndUserIsp,
        NetworkType::EnterpriseIsp,
        NetworkType::ContentProvider,
        NetworkType::Enterprise,
        NetworkType::Education,
    ];
}

/// Operating region (survey Q8; "five continents").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Africa,
}

impl Region {
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::SouthAmerica,
        Region::Africa,
    ];
}

/// Blocklist types a respondent subscribes to (Figure 9's y-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BlocklistType {
    Spam,
    Reputation,
    Ddos,
    Bruteforce,
    Ransomware,
    Ssh,
    Http,
    Backdoor,
    Ftp,
    Banking,
    Voip,
}

impl BlocklistType {
    pub const ALL: [BlocklistType; 11] = [
        BlocklistType::Spam,
        BlocklistType::Reputation,
        BlocklistType::Ddos,
        BlocklistType::Bruteforce,
        BlocklistType::Ransomware,
        BlocklistType::Ssh,
        BlocklistType::Http,
        BlocklistType::Backdoor,
        BlocklistType::Ftp,
        BlocklistType::Banking,
        BlocklistType::Voip,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BlocklistType::Spam => "Spam",
            BlocklistType::Reputation => "Reputation",
            BlocklistType::Ddos => "DDoS",
            BlocklistType::Bruteforce => "Bruteforce",
            BlocklistType::Ransomware => "Ransomware",
            BlocklistType::Ssh => "SSH",
            BlocklistType::Http => "HTTP",
            BlocklistType::Backdoor => "Backdoor",
            BlocklistType::Ftp => "FTP",
            BlocklistType::Banking => "Banking",
            BlocklistType::Voip => "VOIP",
        }
    }
}

/// One completed survey response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Respondent {
    pub id: u32,
    pub network_type: NetworkType,
    pub region: Region,
    /// Subscribers connected (Q7; "from 100 to over 10 million").
    pub subscribers: u64,
    /// Maintains operator-curated internal blocklists (≈70%).
    pub maintains_internal: bool,
    /// Uses external (paid or public) blocklists (85%).
    pub uses_external: bool,
    /// Number of paid-for lists (avg 2, max 39).
    pub paid_lists: u32,
    /// Number of public lists (avg 10, max 68).
    pub public_lists: u32,
    /// Uses blocklists to directly block traffic (59%).
    pub direct_block: bool,
    /// Feeds blocklists into a threat-intelligence system (35%).
    pub threat_intel: bool,
    /// Answered the reused-address questions (34 of 65).
    pub answered_reuse: bool,
    /// Believes CGN hurts blocklist accuracy (19 of the 34).
    pub cgn_inaccurate: Option<bool>,
    /// Believes dynamic addressing hurts accuracy (26 of the 34).
    pub dynamic_inaccurate: Option<bool>,
    /// External blocklist types used (Figure 9 input).
    pub list_types: BTreeSet<BlocklistType>,
}

impl Respondent {
    /// Respondent reported accuracy issues from either form of reuse.
    pub fn faced_reuse_issues(&self) -> bool {
        self.cgn_inaccurate == Some(true) || self.dynamic_inaccurate == Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BlocklistType::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), BlocklistType::ALL.len());
    }

    #[test]
    fn reuse_issue_logic() {
        let mut r = Respondent {
            id: 0,
            network_type: NetworkType::EndUserIsp,
            region: Region::Europe,
            subscribers: 1000,
            maintains_internal: true,
            uses_external: true,
            paid_lists: 2,
            public_lists: 10,
            direct_block: true,
            threat_intel: false,
            answered_reuse: true,
            cgn_inaccurate: Some(false),
            dynamic_inaccurate: Some(false),
            list_types: BTreeSet::new(),
        };
        assert!(!r.faced_reuse_issues());
        r.dynamic_inaccurate = Some(true);
        assert!(r.faced_reuse_issues());
        r.dynamic_inaccurate = None;
        r.cgn_inaccurate = Some(true);
        assert!(r.faced_reuse_issues());
    }
}
