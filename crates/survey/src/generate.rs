//! Respondent generation matched to the published aggregates.
//!
//! Quota sampling: the paper states exact counts for every headline
//! aggregate (65 respondents; 85% external-list users; 59% direct
//! blockers; 35% threat-intel; 34 reuse-question answerers of whom 19 see
//! CGN problems and 26 see dynamic-addressing problems). Those quotas are
//! assigned to randomly shuffled respondents, so the aggregates are exact
//! while the joint distribution stays randomised.

use crate::schema::{BlocklistType, NetworkType, Region, Respondent};
use ar_simnet::rng::Seed;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Paper aggregates (Table 1 / §6 / Appendix A).
pub struct SurveyTargets {
    pub respondents: u32,
    pub external_share: f64,
    pub internal_share: f64,
    pub direct_block_share: f64,
    pub threat_intel_share: f64,
    pub reuse_answerers: u32,
    pub cgn_concerned: u32,
    pub dynamic_concerned: u32,
    pub paid_avg: f64,
    pub paid_max: u32,
    pub public_avg: f64,
    pub public_max: u32,
}

impl Default for SurveyTargets {
    fn default() -> Self {
        SurveyTargets {
            respondents: 65,
            external_share: 0.85,
            internal_share: 0.70,
            direct_block_share: 0.59,
            threat_intel_share: 0.35,
            reuse_answerers: 34,
            cgn_concerned: 19,
            dynamic_concerned: 26,
            paid_avg: 2.0,
            paid_max: 39,
            public_avg: 10.0,
            public_max: 68,
        }
    }
}

/// Figure 9: share of reuse-affected operators using each blocklist type
/// (read off the published bar chart).
pub const FIG9_USAGE: [(BlocklistType, f64); 11] = [
    (BlocklistType::Spam, 0.96),
    (BlocklistType::Reputation, 0.85),
    (BlocklistType::Ddos, 0.77),
    (BlocklistType::Bruteforce, 0.65),
    (BlocklistType::Ransomware, 0.58),
    (BlocklistType::Ssh, 0.50),
    (BlocklistType::Http, 0.42),
    (BlocklistType::Backdoor, 0.35),
    (BlocklistType::Ftp, 0.27),
    (BlocklistType::Banking, 0.19),
    (BlocklistType::Voip, 0.08),
];

/// Deterministically generate the respondent pool.
pub fn generate_respondents(seed: Seed, targets: &SurveyTargets) -> Vec<Respondent> {
    let n = targets.respondents as usize;
    let mut rng = seed.fork("survey").rng();

    // Quota assignment helper: a shuffled index list per attribute keeps
    // attributes independent.
    let quota = |count: usize, rng: &mut rand::rngs::SmallRng| -> Vec<bool> {
        let mut v = vec![false; n];
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        for &i in idx.iter().take(count) {
            v[i] = true;
        }
        v
    };

    let external = quota(
        (targets.external_share * n as f64).round() as usize,
        &mut rng,
    );
    let internal = quota(
        (targets.internal_share * n as f64).round() as usize,
        &mut rng,
    );
    let answered = quota(targets.reuse_answerers as usize, &mut rng);

    // Direct-blocking and threat-intel shares are fractions of *all*
    // respondents, but only external-list users can do either: draw those
    // quotas from the external subset so the headline percentages match.
    let external_ids: Vec<usize> = (0..n).filter(|&i| external[i]).collect();
    let quota_among = |count: usize, rng: &mut rand::rngs::SmallRng| -> Vec<bool> {
        let mut v = vec![false; n];
        let mut ids = external_ids.clone();
        ids.shuffle(rng);
        for &i in ids.iter().take(count.min(ids.len())) {
            v[i] = true;
        }
        v
    };
    let direct = quota_among(
        (targets.direct_block_share * n as f64).round() as usize,
        &mut rng,
    );
    let intel = quota_among(
        (targets.threat_intel_share * n as f64).round() as usize,
        &mut rng,
    );

    // CGN / dynamic concerns only among answerers.
    let answerer_ids: Vec<usize> = (0..n).filter(|&i| answered[i]).collect();
    let pick_among = |count: usize, rng: &mut rand::rngs::SmallRng| -> BTreeSet<usize> {
        let mut ids = answerer_ids.clone();
        ids.shuffle(rng);
        ids.into_iter().take(count).collect()
    };
    let cgn_yes = pick_among(targets.cgn_concerned as usize, &mut rng);
    let dyn_yes = pick_among(targets.dynamic_concerned as usize, &mut rng);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let uses_external = external[i];
        // List counts: heavy-tailed with the published max; the average is
        // matched approximately and verified in tests with tolerance.
        let paid_lists = if uses_external {
            sample_count(&mut rng, targets.paid_avg, targets.paid_max)
        } else {
            0
        };
        let public_lists = if uses_external {
            sample_count(&mut rng, targets.public_avg, targets.public_max)
        } else {
            0
        };
        let list_types = if uses_external {
            FIG9_USAGE
                .iter()
                .filter(|(_, p)| rng.gen_bool(*p))
                .map(|(t, _)| *t)
                .collect()
        } else {
            BTreeSet::new()
        };
        out.push(Respondent {
            id: i as u32,
            network_type: NetworkType::ALL[rng.gen_range(0..NetworkType::ALL.len())],
            region: Region::ALL[weighted_region(&mut rng)],
            subscribers: 10u64.pow(rng.gen_range(2..8)),
            maintains_internal: internal[i],
            uses_external,
            paid_lists,
            public_lists,
            direct_block: direct[i] && uses_external,
            threat_intel: intel[i] && uses_external,
            answered_reuse: answered[i],
            cgn_inaccurate: answered[i].then(|| cgn_yes.contains(&i)),
            dynamic_inaccurate: answered[i].then(|| dyn_yes.contains(&i)),
            list_types,
        });
    }
    // Pin the published maxima exactly onto the externally-subscribed
    // respondents with the largest draws.
    if let Some(idx) = out
        .iter()
        .enumerate()
        .filter(|(_, r)| r.uses_external)
        .max_by_key(|(_, r)| r.paid_lists)
        .map(|(i, _)| i)
    {
        out[idx].paid_lists = targets.paid_max;
    }
    if let Some(idx) = out
        .iter()
        .enumerate()
        .filter(|(_, r)| r.uses_external)
        .max_by_key(|(_, r)| r.public_lists)
        .map(|(i, _)| i)
    {
        out[idx].public_lists = targets.public_max;
    }
    out
}

/// Geometric-ish count with the given mean, capped below the published max
/// (the max itself is pinned afterwards).
fn sample_count(rng: &mut rand::rngs::SmallRng, mean: f64, max: u32) -> u32 {
    let p = 1.0 / (mean + 1.0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let k = (u.ln() / (1.0 - p).ln()).floor() as u32;
    k.min(max / 2)
}

/// Europe/North America dominate operator-list membership.
fn weighted_region(rng: &mut rand::rngs::SmallRng) -> usize {
    let roll: f64 = rng.gen();
    match roll {
        r if r < 0.38 => 1, // Europe
        r if r < 0.70 => 0, // North America
        r if r < 0.85 => 2, // Asia
        r if r < 0.95 => 3, // South America
        _ => 4,             // Africa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<Respondent> {
        generate_respondents(Seed(42), &SurveyTargets::default())
    }

    #[test]
    fn exact_headline_quotas() {
        let r = pool();
        assert_eq!(r.len(), 65);
        assert_eq!(r.iter().filter(|x| x.uses_external).count(), 55); // 85%
        assert_eq!(r.iter().filter(|x| x.answered_reuse).count(), 34);
        assert_eq!(
            r.iter().filter(|x| x.cgn_inaccurate == Some(true)).count(),
            19
        );
        assert_eq!(
            r.iter()
                .filter(|x| x.dynamic_inaccurate == Some(true))
                .count(),
            26
        );
    }

    #[test]
    fn maxima_are_pinned() {
        let r = pool();
        assert_eq!(r.iter().map(|x| x.paid_lists).max(), Some(39));
        assert_eq!(r.iter().map(|x| x.public_lists).max(), Some(68));
    }

    #[test]
    fn non_answerers_have_no_reuse_opinions() {
        for r in pool() {
            if !r.answered_reuse {
                assert_eq!(r.cgn_inaccurate, None);
                assert_eq!(r.dynamic_inaccurate, None);
            }
        }
    }

    #[test]
    fn non_external_users_have_no_lists() {
        for r in pool() {
            if !r.uses_external {
                assert_eq!(r.paid_lists, 0);
                assert_eq!(r.public_lists, 0);
                assert!(r.list_types.is_empty());
                assert!(!r.direct_block);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = pool();
        let b = pool();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.paid_lists, y.paid_lists);
            assert_eq!(x.list_types, y.list_types);
        }
    }

    #[test]
    fn spam_is_the_most_used_type() {
        let r = pool();
        let usage = |t: BlocklistType| r.iter().filter(|x| x.list_types.contains(&t)).count();
        assert!(usage(BlocklistType::Spam) > usage(BlocklistType::Voip));
        assert!(usage(BlocklistType::Spam) >= usage(BlocklistType::Banking));
    }
}
