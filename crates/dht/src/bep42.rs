//! BEP-42: DHT security extension (IP-bound node IDs).
//!
//! Mainline's answer to node-ID spoofing: a node's ID must be derived from
//! its external IP, so an attacker cannot freely position itself in the ID
//! space. The first 21 bits of the node ID must equal the CRC32-C of the
//! masked IP (with a 3-bit random `r` folded in), and the last byte echoes
//! `r`.
//!
//! Relevant to the paper's crawler in two ways: (1) the node_id really is
//! a function of the (possibly private) IP — §3.1's description — and (2)
//! a NAT's users, all deriving IDs from RFC1918 space or from the shared
//! public IP, are *expected* to collide in prefix but differ in the random
//! bits, which is why the crawler keys on `(port, node_id)` pairs rather
//! than ID structure.

use crate::node_id::NodeId;
use std::net::Ipv4Addr;

/// CRC32-C (Castagnoli), bitwise implementation — small and dependency
/// free; throughput is irrelevant at one hash per ID check.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reversed Castagnoli polynomial
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// The BEP-42 IPv4 mask.
const V4_MASK: [u8; 4] = [0x03, 0x0f, 0x3f, 0xff];

/// Compute the 21-bit BEP-42 prefix source for `ip` and random nibble `r`
/// (only the low 3 bits of `r` are used).
fn crc_input(ip: Ipv4Addr, r: u8) -> [u8; 4] {
    let octets = ip.octets();
    let mut masked = [0u8; 4];
    for i in 0..4 {
        masked[i] = octets[i] & V4_MASK[i];
    }
    masked[0] |= (r & 0x7) << 5;
    masked
}

/// Generate a BEP-42-compliant node ID for `ip`.
///
/// `rand21` supplies the non-constrained bits (bits 21..152) and `r` the
/// random nibble; both may come from any RNG.
pub fn node_id_for_ip(ip: Ipv4Addr, rand21: &[u8; 20], r: u8) -> NodeId {
    let crc = crc32c(&crc_input(ip, r));
    let mut id = *rand21;
    // First 21 bits from the CRC.
    id[0] = (crc >> 24) as u8;
    id[1] = (crc >> 16) as u8;
    id[2] = (id[2] & 0x1f) | (((crc >> 8) as u8) & 0xe0);
    // Last byte echoes r.
    id[19] = r & 0x7;
    NodeId(id)
}

/// Check whether `id` is valid for `ip` under BEP-42.
pub fn is_valid(id: &NodeId, ip: Ipv4Addr) -> bool {
    // Private/local addresses are exempt in BEP-42 (NATed peers cannot
    // know their external IP reliably).
    if is_exempt(ip) {
        return true;
    }
    let r = id.0[19] & 0x7;
    let crc = crc32c(&crc_input(ip, r));
    id.0[0] == (crc >> 24) as u8
        && id.0[1] == (crc >> 16) as u8
        && (id.0[2] & 0xe0) == (((crc >> 8) as u8) & 0xe0)
}

/// BEP-42 exempts loopback and RFC1918/link-local space.
pub fn is_exempt(ip: Ipv4Addr) -> bool {
    ip.is_loopback() || ip.is_private() || ip.is_link_local()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / common test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn bep42_reference_prefixes() {
        // BEP-42's published examples: IP, r → first 21 bits of the ID.
        // (rand bits don't matter for validity.)
        let cases: [(&str, u8, [u8; 3]); 5] = [
            ("124.31.75.21", 1, [0x5f, 0xbf, 0xbf]),
            ("21.75.31.124", 86, [0x5a, 0x3c, 0xe9]),
            ("65.23.51.170", 22, [0xa5, 0xd4, 0x32]),
            ("84.124.73.14", 65, [0x1b, 0x03, 0x21]),
            ("43.213.53.83", 90, [0xe5, 0x6f, 0x6c]),
        ];
        for (ip, r, expect) in cases {
            let ip: Ipv4Addr = ip.parse().unwrap();
            let id = node_id_for_ip(ip, &[0u8; 20], r);
            assert_eq!(id.0[0], expect[0], "{ip} byte 0");
            assert_eq!(id.0[1], expect[1], "{ip} byte 1");
            assert_eq!(id.0[2] & 0xe0, expect[2] & 0xe0, "{ip} byte 2 top bits");
            assert!(is_valid(&id, ip), "{ip} generated id must validate");
        }
    }

    #[test]
    fn generated_ids_validate_and_foreign_ids_fail() {
        let ip: Ipv4Addr = "203.0.113.7".parse().unwrap();
        let other: Ipv4Addr = "198.51.100.22".parse().unwrap();
        let mut rand = [0xABu8; 20];
        for r in 0..8u8 {
            rand[5] = r;
            let id = node_id_for_ip(ip, &rand, r);
            assert!(is_valid(&id, ip));
            assert!(
                !is_valid(&id, other),
                "id for {ip} must not validate for {other}"
            );
        }
    }

    #[test]
    fn private_space_is_exempt() {
        let id = NodeId([0x77; 20]);
        assert!(is_valid(&id, "192.168.1.10".parse().unwrap()));
        assert!(is_valid(&id, "10.0.0.1".parse().unwrap()));
        assert!(is_valid(&id, "127.0.0.1".parse().unwrap()));
        assert!(!is_valid(&id, "8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn random_bits_are_free() {
        // Two IDs for the same ip/r with different random bits both pass.
        let ip: Ipv4Addr = "93.184.216.34".parse().unwrap();
        let a = node_id_for_ip(ip, &[0x00; 20], 3);
        let b = node_id_for_ip(ip, &[0xFF; 20], 3);
        assert_ne!(a, b);
        assert!(is_valid(&a, ip));
        assert!(is_valid(&b, ip));
    }
}
