//! A managed DHT client: routing table + iterative lookups.
//!
//! [`DhtClient`] is the piece a conforming participant runs (the crawler
//! intentionally does not — it wants breadth, not proximity): bootstrap by
//! looking up your own ID, keep the table fresh by looking up random IDs
//! inside stale buckets, answer queries from the table.

use crate::lookup::{iterative_find_node, FindNodeTransport, LookupConfig};
use crate::node_id::NodeId;
use crate::routing::{Contact, RoutingTable};
use crate::wire::NodeInfo;
use rand::Rng;
use std::net::SocketAddrV4;

/// Client-side node state.
pub struct DhtClient {
    table: RoutingTable,
    config: LookupConfig,
}

impl DhtClient {
    pub fn new(id: NodeId) -> Self {
        DhtClient {
            table: RoutingTable::new(id),
            config: LookupConfig::default(),
        }
    }

    pub fn id(&self) -> NodeId {
        self.table.own_id()
    }

    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Join the network: iterative lookup of our own ID from the seed
    /// endpoints, inserting everything we learn. Returns contacts learned.
    pub fn bootstrap(
        &mut self,
        transport: &mut impl FindNodeTransport,
        seeds: &[SocketAddrV4],
    ) -> usize {
        self.lookup_and_absorb(transport, seeds, self.id())
    }

    /// Refresh bucket `index` (0..160) by looking up a random ID inside it.
    /// Kademlia prescribes this for buckets unused for an hour.
    pub fn refresh_bucket<R: Rng + ?Sized>(
        &mut self,
        transport: &mut impl FindNodeTransport,
        index: usize,
        rng: &mut R,
    ) -> usize {
        let target = random_id_in_bucket(self.id(), index, rng);
        let seeds: Vec<SocketAddrV4> = self
            .table
            .closest(&target, self.config.alpha)
            .into_iter()
            .map(|c| c.addr)
            .collect();
        self.lookup_and_absorb(transport, &seeds, target)
    }

    /// Run a lookup seeded from our table and absorb every contact seen.
    fn lookup_and_absorb(
        &mut self,
        transport: &mut impl FindNodeTransport,
        seeds: &[SocketAddrV4],
        target: NodeId,
    ) -> usize {
        let result = iterative_find_node(transport, seeds, target, self.config);
        let mut learned = 0;
        for info in &result.closest {
            if matches!(
                self.table.insert(Contact::new(info.id, info.addr)),
                crate::routing::InsertOutcome::Added | crate::routing::InsertOutcome::ReplacedBad
            ) {
                learned += 1;
            }
        }
        learned
    }

    /// Serve a find_node request from the local table.
    pub fn closest_nodes(&self, target: &NodeId, n: usize) -> Vec<NodeInfo> {
        self.table.closest_nodes(target, n)
    }
}

/// A random ID whose XOR distance from `own` has its most significant set
/// bit exactly at `bucket` — i.e. an ID that lands in that bucket.
pub fn random_id_in_bucket<R: Rng + ?Sized>(own: NodeId, bucket: usize, rng: &mut R) -> NodeId {
    assert!(bucket < NodeId::BITS, "bucket index out of range");
    let mut id = own.0;
    // Bit positions count from the LSB of the whole 160-bit number; byte 0
    // holds bits 159..152.
    let byte = 19 - bucket / 8;
    let bit_in_byte = bucket % 8;
    // Flip the defining bit.
    id[byte] ^= 1 << bit_in_byte;
    // Randomise everything strictly below it.
    for below in id.iter_mut().skip(byte + 1) {
        *below = rng.gen();
    }
    let below_mask: u8 = if bit_in_byte == 0 {
        0
    } else {
        (1 << bit_in_byte) - 1
    };
    id[byte] = (id[byte] & !below_mask) | (rng.gen::<u8>() & below_mask);
    NodeId(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::DhtNode;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn random_id_lands_in_requested_bucket() {
        let mut rng = SmallRng::seed_from_u64(17);
        let own = NodeId::random(&mut rng);
        for bucket in [0usize, 1, 7, 8, 63, 100, 159] {
            for _ in 0..20 {
                let id = random_id_in_bucket(own, bucket, &mut rng);
                assert_eq!(
                    own.bucket_index(&id),
                    Some(bucket),
                    "bucket {bucket} violated"
                );
            }
        }
    }

    #[test]
    fn client_bootstraps_over_real_udp() {
        let mut rng = SmallRng::seed_from_u64(23);
        // A ring of servers, each knowing its two successors.
        let servers: Vec<DhtNode> = (0..10)
            .map(|_| DhtNode::spawn(NodeId::random(&mut rng), "127.0.0.1:0".parse().unwrap()))
            .collect::<Result<_, _>>()
            .unwrap();
        for i in 0..servers.len() {
            for step in 1..=2 {
                let peer = &servers[(i + step) % servers.len()];
                servers[i].add_contact(peer.id(), peer.addr());
            }
        }

        let mut client = DhtClient::new(NodeId::random(&mut rng));
        let mut transport = crate::lookup::UdpFindNode {
            self_id: client.id(),
            timeout: Duration::from_millis(500),
        };
        let learned = client.bootstrap(&mut transport, &[servers[0].addr()]);
        assert!(learned >= 4, "bootstrap learned only {learned} contacts");

        // Refresh the top bucket: should keep or grow the table, not shrink.
        let before = client.table().len();
        client.refresh_bucket(&mut transport, 159, &mut rng);
        assert!(client.table().len() >= before);

        // The client can now answer find_node itself.
        let target = servers[3].id();
        let answer = client.closest_nodes(&target, 8);
        assert!(!answer.is_empty());
        for s in servers {
            s.shutdown();
        }
    }
}
