//! 160-bit DHT node identifiers (BEP-5).
//!
//! Every BitTorrent user "generates its own unique 160-bit node_id that is
//! obtained by hashing the (possibly private) IP address of the user and a
//! random number" (paper §3.1). Crucially for the crawler, a user "can
//! regenerate a new node_id every time their machine reboots" — which is
//! why the paper's NAT rule keys on *(port, node_id)* pairs observed
//! simultaneously rather than on node IDs alone.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A 160-bit node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub [u8; 20]);

impl NodeId {
    pub const BITS: usize = 160;

    /// Random node ID.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> NodeId {
        let mut id = [0u8; 20];
        rng.fill(&mut id);
        NodeId(id)
    }

    /// Node ID derived from an IP address and a nonce, mirroring how real
    /// clients seed their IDs (paper §3.1). Not a cryptographic hash — a
    /// well-mixed deterministic digest is all the simulation needs.
    pub fn from_ip_and_nonce(ip: Ipv4Addr, nonce: u64) -> NodeId {
        let mut state = u64::from(u32::from(ip)) ^ nonce.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
        let mut id = [0u8; 20];
        for chunk in id.chunks_mut(8) {
            state = mix64(state);
            let bytes = state.to_be_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        NodeId(id)
    }

    /// XOR distance metric (BEP-5).
    pub fn distance(&self, other: &NodeId) -> Distance {
        let mut d = [0u8; 20];
        for (i, byte) in d.iter_mut().enumerate() {
            *byte = self.0[i] ^ other.0[i];
        }
        Distance(d)
    }

    /// Index of the k-bucket `other` falls into relative to `self`:
    /// `159 - leading_zero_bits(distance)`, or `None` for equal IDs.
    pub fn bucket_index(&self, other: &NodeId) -> Option<usize> {
        let d = self.distance(other);
        let lz = d.leading_zeros();
        if lz == 160 {
            None
        } else {
            Some(159 - lz)
        }
    }

    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    pub fn from_bytes(b: &[u8]) -> Option<NodeId> {
        let arr: [u8; 20] = b.try_into().ok()?;
        Some(NodeId(arr))
    }
}

/// An XOR distance between two node IDs; ordered big-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Distance(pub [u8; 20]);

impl Distance {
    pub fn leading_zeros(&self) -> usize {
        let mut total = 0;
        for byte in self.0 {
            if byte == 0 {
                total += 8;
            } else {
                total += byte.leading_zeros() as usize;
                break;
            }
        }
        total
    }

    pub const ZERO: Distance = Distance([0u8; 20]);
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_metric_like() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = NodeId::random(&mut rng);
        let b = NodeId::random(&mut rng);
        assert_eq!(a.distance(&a), Distance::ZERO);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_ne!(a.distance(&b), Distance::ZERO);
    }

    #[test]
    fn bucket_index_extremes() {
        let zero = NodeId([0u8; 20]);
        assert_eq!(zero.bucket_index(&zero), None);
        let mut top = [0u8; 20];
        top[0] = 0x80;
        assert_eq!(zero.bucket_index(&NodeId(top)), Some(159));
        let mut bottom = [0u8; 20];
        bottom[19] = 0x01;
        assert_eq!(zero.bucket_index(&NodeId(bottom)), Some(0));
    }

    #[test]
    fn from_ip_is_deterministic_and_nonce_sensitive() {
        let ip: Ipv4Addr = "203.0.113.9".parse().unwrap();
        let a = NodeId::from_ip_and_nonce(ip, 1);
        let b = NodeId::from_ip_and_nonce(ip, 1);
        let c = NodeId::from_ip_and_nonce(ip, 2);
        assert_eq!(a, b);
        assert_ne!(a, c, "reboot (new nonce) regenerates the node_id");
    }

    #[test]
    fn ids_are_well_spread() {
        // IDs from consecutive nonces should not share long prefixes.
        let ip: Ipv4Addr = "198.51.100.1".parse().unwrap();
        let ids: Vec<NodeId> = (0..100).map(|n| NodeId::from_ip_and_nonce(ip, n)).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let lz = ids[i].distance(&ids[j]).leading_zeros();
                assert!(lz < 40, "suspiciously close ids at ({i},{j}): {lz} bits");
            }
        }
    }

    #[test]
    fn roundtrip_bytes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let id = NodeId::random(&mut rng);
        assert_eq!(NodeId::from_bytes(id.as_bytes()).unwrap(), id);
        assert!(NodeId::from_bytes(&[0u8; 19]).is_none());
    }

    #[test]
    fn display_is_hex() {
        let id = NodeId([0xab; 20]);
        assert_eq!(id.to_string(), "ab".repeat(20));
    }
}
