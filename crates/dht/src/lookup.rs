//! Iterative node lookup (Kademlia / BEP-5).
//!
//! The crawler deliberately does *not* use this — it wants every node, not
//! the closest ones — but a conforming client needs it (bootstrap, routing
//! table refresh), and the `live_dht_demo` example walks a real swarm with
//! it. The algorithm is the classic α-parallel iterative deepening: query
//! the α closest unqueried contacts, merge their replies into a shortlist
//! sorted by XOR distance, and stop when the k closest are all queried and
//! no round brought anything closer.
//!
//! Transport is abstracted so the same code runs over the deterministic
//! simulation and over real UDP sockets.

use crate::node_id::NodeId;
use crate::wire::{Message, MessageBody, NodeInfo, Query};
use std::collections::{BTreeMap, HashSet};
use std::net::SocketAddrV4;

/// One `find_node` exchange: implementations return the nodes carried by
/// the reply, or `None` on loss/timeout.
pub trait FindNodeTransport {
    fn find_node(&mut self, dst: SocketAddrV4, target: NodeId) -> Option<Vec<NodeInfo>>;
}

/// Lookup parameters (BEP-5 defaults).
#[derive(Debug, Clone, Copy)]
pub struct LookupConfig {
    /// Shortlist width — the `k` closest to return.
    pub k: usize,
    /// Parallelism per round.
    pub alpha: usize,
    /// Safety cap on total queries.
    pub max_queries: usize,
}

impl Default for LookupConfig {
    fn default() -> Self {
        LookupConfig {
            k: 8,
            alpha: 3,
            max_queries: 128,
        }
    }
}

/// Lookup outcome.
#[derive(Debug, Clone)]
pub struct LookupResult {
    /// Up to `k` closest responsive-or-advertised contacts, ascending by
    /// distance to the target.
    pub closest: Vec<NodeInfo>,
    /// Queries actually sent.
    pub queries: usize,
    /// Rounds of α-parallel querying.
    pub rounds: usize,
    /// Whether the exact target id surfaced.
    pub found_target: bool,
}

/// Run an iterative find_node toward `target`, seeded by `bootstrap`.
pub fn iterative_find_node(
    transport: &mut impl FindNodeTransport,
    bootstrap: &[SocketAddrV4],
    target: NodeId,
    config: LookupConfig,
) -> LookupResult {
    // Shortlist keyed by distance: BTreeMap keeps it sorted and deduped.
    let mut shortlist: BTreeMap<[u8; 20], NodeInfo> = BTreeMap::new();
    let mut queried: HashSet<SocketAddrV4> = HashSet::new();
    let mut queries = 0;
    let mut rounds = 0;
    let mut found_target = false;

    // Bootstrap endpoints have unknown ids; query them straight away.
    let mut pending: Vec<SocketAddrV4> = bootstrap.to_vec();

    loop {
        rounds += 1;
        let batch: Vec<SocketAddrV4> = pending
            .drain(..)
            .filter(|a| queried.insert(*a))
            .take(config.alpha.max(1))
            .collect();
        if batch.is_empty() || queries >= config.max_queries {
            break;
        }
        let mut improved = false;
        for dst in batch {
            if queries >= config.max_queries {
                break;
            }
            queries += 1;
            let Some(nodes) = transport.find_node(dst, target) else {
                continue;
            };
            for info in nodes {
                if info.id == target {
                    found_target = true;
                }
                let d = info.id.distance(&target).0;
                if !shortlist.contains_key(&d) {
                    // Strictly closer than the current k-th? Then the
                    // frontier moved.
                    if shortlist.len() < config.k
                        || d < *shortlist.keys().nth(config.k - 1).expect("len >= k")
                    {
                        improved = true;
                    }
                    shortlist.insert(d, info);
                }
            }
        }
        // Next batch: closest unqueried contacts.
        pending = shortlist
            .values()
            .filter(|n| !queried.contains(&n.addr))
            .take(config.k)
            .map(|n| n.addr)
            .collect();
        if pending.is_empty()
            || (!improved && rounds > 1 && all_k_queried(&shortlist, &queried, config.k))
        {
            break;
        }
    }

    LookupResult {
        closest: shortlist.into_values().take(config.k).collect(),
        queries,
        rounds,
        found_target,
    }
}

fn all_k_queried(
    shortlist: &BTreeMap<[u8; 20], NodeInfo>,
    queried: &HashSet<SocketAddrV4>,
    k: usize,
) -> bool {
    shortlist
        .values()
        .take(k)
        .all(|n| queried.contains(&n.addr))
}

/// Blocking-UDP transport for real swarms.
pub struct UdpFindNode {
    pub self_id: NodeId,
    pub timeout: std::time::Duration,
}

impl FindNodeTransport for UdpFindNode {
    fn find_node(&mut self, dst: SocketAddrV4, target: NodeId) -> Option<Vec<NodeInfo>> {
        let msg = Message::query(
            b"lk",
            Query::FindNode {
                id: self.self_id,
                target,
            },
        );
        let reply = crate::udp::query_once(dst, &msg, self.timeout).ok()?;
        match reply.body {
            MessageBody::Response(r) => r.nodes,
            _ => None,
        }
    }
}

/// Simulation transport: runs the lookup at a fixed virtual instant.
pub struct SimFindNode<'a, 'u> {
    pub net: &'a mut crate::sim::SimNetwork<'u>,
    pub now: ar_simnet::time::SimTime,
    pub self_id: NodeId,
}

impl FindNodeTransport for SimFindNode<'_, '_> {
    fn find_node(&mut self, dst: SocketAddrV4, target: NodeId) -> Option<Vec<NodeInfo>> {
        let msg = Message::query(
            b"lk",
            Query::FindNode {
                id: self.self_id,
                target,
            },
        );
        let delivered = self.net.query(self.now, dst, &msg)?;
        match delivered.message.body {
            MessageBody::Response(r) => r.nodes,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// In-memory ideal network: every node knows its k closest peers.
    struct IdealNet {
        nodes: HashMap<SocketAddrV4, NodeId>,
        by_id: Vec<NodeInfo>,
        loss_every: Option<usize>,
        calls: usize,
    }

    impl IdealNet {
        fn new(n: usize, loss_every: Option<usize>) -> Self {
            let mut rng_state = 0x1234_5678_9abc_def0u64;
            let mut next = || {
                rng_state = rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng_state
            };
            let mut nodes = HashMap::new();
            let mut by_id = Vec::new();
            for i in 0..n {
                let mut id = [0u8; 20];
                for chunk in id.chunks_mut(8) {
                    let b = next().to_be_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
                let id = NodeId(id);
                let addr: SocketAddrV4 = format!("10.0.{}.{}:7000", i / 250, i % 250 + 1)
                    .parse()
                    .unwrap();
                nodes.insert(addr, id);
                by_id.push(NodeInfo { id, addr });
            }
            IdealNet {
                nodes,
                by_id,
                loss_every,
                calls: 0,
            }
        }
        fn closest_global(&self, target: NodeId, k: usize) -> Vec<NodeId> {
            let mut v = self.by_id.clone();
            v.sort_by_key(|n| n.id.distance(&target));
            v.into_iter().take(k).map(|n| n.id).collect()
        }
    }

    impl FindNodeTransport for IdealNet {
        fn find_node(&mut self, dst: SocketAddrV4, target: NodeId) -> Option<Vec<NodeInfo>> {
            self.calls += 1;
            if let Some(every) = self.loss_every {
                if self.calls % every == 0 {
                    return None;
                }
            }
            self.nodes.get(&dst)?;
            let mut v = self.by_id.clone();
            v.sort_by_key(|n| n.id.distance(&target));
            Some(v.into_iter().take(8).collect())
        }
    }

    #[test]
    fn lookup_converges_to_global_closest() {
        let mut net = IdealNet::new(500, None);
        let target = NodeId([0xAB; 20]);
        let bootstrap = [net.by_id[0].addr];
        let result = iterative_find_node(&mut net, &bootstrap, target, LookupConfig::default());
        let got: Vec<NodeId> = result.closest.iter().map(|n| n.id).collect();
        let want = net.closest_global(target, 8);
        assert_eq!(got, want, "lookup must find the true k closest");
        assert!(result.queries <= 128);
        assert!(result.rounds >= 2);
    }

    #[test]
    fn lookup_survives_packet_loss() {
        let mut net = IdealNet::new(300, Some(3)); // every 3rd query lost
        let target = NodeId([0x5C; 20]);
        let bootstrap = [net.by_id[7].addr, net.by_id[100].addr];
        let result = iterative_find_node(&mut net, &bootstrap, target, LookupConfig::default());
        let want = net.closest_global(target, 8);
        let got: Vec<NodeId> = result.closest.iter().map(|n| n.id).collect();
        // With loss, allow missing at most a couple of the true closest.
        let hit = got.iter().filter(|id| want.contains(id)).count();
        assert!(hit >= 6, "found {hit}/8 of the true closest under loss");
    }

    #[test]
    fn lookup_respects_query_cap() {
        let mut net = IdealNet::new(500, None);
        let target = NodeId([0x01; 20]);
        let bootstrap = [net.by_id[0].addr];
        let config = LookupConfig {
            max_queries: 5,
            ..LookupConfig::default()
        };
        let result = iterative_find_node(&mut net, &bootstrap, target, config);
        assert!(result.queries <= 5);
        assert!(!result.closest.is_empty());
    }

    #[test]
    fn empty_bootstrap_is_safe() {
        let mut net = IdealNet::new(10, None);
        let result = iterative_find_node(&mut net, &[], NodeId([9; 20]), LookupConfig::default());
        assert_eq!(result.queries, 0);
        assert!(result.closest.is_empty());
    }
}
