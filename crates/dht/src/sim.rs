//! The simulated UDP fabric the crawler talks to.
//!
//! [`SimNetwork`] plays the role of "the Internet + the live DHT": the
//! crawler hands it a KRPC query addressed to an endpoint at a virtual
//! time, and receives either a reply (with latency) or nothing — because
//! the datagram was lost (the paper observed a 48.6% overall response
//! rate), the endpoint's host is offline, or the port binding is stale.
//!
//! Fault injection is explicit and configurable ([`SimParams`]), in the
//! spirit of smoltcp's `--drop-chance`-style knobs.

use crate::population::{DhtPopulation, PopulationParams};
use crate::wire::{KrpcError, Message, MessageBody, Query, Response};
use ar_simnet::alloc::AllocationPlan;
use ar_simnet::rng::Seed;
use ar_simnet::time::{SimDuration, SimTime};
use ar_simnet::universe::Universe;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::Serialize;
use std::net::SocketAddrV4;

/// Fault-injection and behaviour parameters of the fabric.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Probability a query datagram is lost on the way out.
    pub query_loss: f64,
    /// Probability a reply datagram is lost on the way back.
    pub reply_loss: f64,
    /// Mean one-way latency.
    pub mean_latency_ms: u64,
    /// Mean age of neighbour-table entries returned by find_node.
    pub neighbor_staleness: SimDuration,
    /// Probability an online client actually answers (some clients drop
    /// unsolicited queries).
    pub respond_prob: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            query_loss: 0.12,
            reply_loss: 0.12,
            mean_latency_ms: 140,
            neighbor_staleness: SimDuration::from_hours(3),
            respond_prob: 0.92,
        }
    }
}

/// Counters mirroring the paper's §4 reporting (1.6B pings sent, 779M
/// responses, 48.6% response rate).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct NetStats {
    pub queries_sent: u64,
    pub queries_lost: u64,
    pub no_listener: u64,
    pub not_responding: u64,
    pub replies_lost: u64,
    pub replies_delivered: u64,
}

impl NetStats {
    /// Fraction of sent queries that produced a delivered reply.
    pub fn response_rate(&self) -> f64 {
        if self.queries_sent == 0 {
            return 0.0;
        }
        self.replies_delivered as f64 / self.queries_sent as f64
    }
}

/// A reply as delivered to the querier.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// When the reply arrives at the querier.
    pub at: SimTime,
    /// Source endpoint the datagram appears to come from.
    pub from: SocketAddrV4,
    pub message: Message,
}

/// What the §3.1 crawler needs from a network: a bootstrap source and a
/// fire-one-query primitive. [`SimNetwork`] implements it for the
/// deterministic fabric; `udp::UdpKrpc` implements it over real sockets,
/// making the crawler binary deployable against a live DHT.
pub trait KrpcTransport {
    /// Endpoints to seed a crawl with.
    fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4>;
    /// Send a query; `None` on loss/timeout/no-listener.
    fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered>;
}

// Decorators (e.g. `FaultyTransport`) take the inner transport by value;
// this lets callers hand them a borrow instead and keep the network.
impl<T: KrpcTransport + ?Sized> KrpcTransport for &mut T {
    fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4> {
        (**self).bootstrap(now, n)
    }
    fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered> {
        (**self).query(now, dst, msg)
    }
}

/// One-way latency draw shared by every fabric flavour.
fn sample_latency(rng: &mut SmallRng, params: &SimParams) -> SimDuration {
    let ms = ar_simnet::stats::sample_exponential(rng, params.mean_latency_ms as f64).max(5.0);
    SimDuration::from_secs((ms / 1000.0).ceil() as u64)
}

/// The fabric's query path, parameterised over whose RNG stream and stats
/// it consumes. [`SimNetwork`] and [`SimNetShard`] both delegate here, so
/// the loss/latency/neighbour-sampling behaviour is defined exactly once.
fn fabric_query(
    pop: &DhtPopulation<'_>,
    params: &SimParams,
    rng: &mut SmallRng,
    stats: &mut NetStats,
    now: SimTime,
    dst: SocketAddrV4,
    msg: &Message,
) -> Option<Delivered> {
    stats.queries_sent += 1;
    let MessageBody::Query(ref query) = msg.body else {
        // The fabric only routes queries; responses/errors from the
        // crawler have no meaning here.
        return None;
    };
    if rng.gen_bool(params.query_loss) {
        stats.queries_lost += 1;
        return None;
    }
    let arrive = now + sample_latency(rng, params);
    let Some(responder) = pop.resolve(dst, arrive) else {
        stats.no_listener += 1;
        return None;
    };
    if !rng.gen_bool(params.respond_prob) {
        stats.not_responding += 1;
        return None;
    }
    let session = pop
        .session(responder, arrive)
        .expect("resolved hosts are online");
    let response = match query {
        Query::Ping { .. } => Response::pong(session.node_id),
        Query::FindNode { .. } => {
            let neighbors = pop.sample_neighbors(rng, arrive, 8, params.neighbor_staleness);
            Response::found_nodes(session.node_id, neighbors)
        }
        Query::GetPeers { .. } => {
            // Peer storage is out of scope for the reproduction: answer
            // with closest nodes, as a node with no matching peers does.
            let neighbors = pop.sample_neighbors(rng, arrive, 8, params.neighbor_staleness);
            Response {
                id: Some(session.node_id),
                nodes: Some(neighbors),
                token: Some(bytes::Bytes::from_static(b"sim-token")),
                values: None,
            }
        }
        Query::AnnouncePeer { .. } => Response::pong(session.node_id),
    };
    if rng.gen_bool(params.reply_loss) {
        stats.replies_lost += 1;
        return None;
    }
    stats.replies_delivered += 1;
    let reply = Message::response(&msg.transaction[..], response).with_version(session.version);
    Some(Delivered {
        at: arrive + sample_latency(rng, params),
        from: dst,
        message: reply,
    })
}

/// The fabric's bootstrap draw (stand-in for `router.bittorrent.com`).
fn fabric_bootstrap(
    pop: &DhtPopulation<'_>,
    rng: &mut SmallRng,
    now: SimTime,
    n: usize,
) -> Vec<SocketAddrV4> {
    let mut out = Vec::with_capacity(n);
    let hosts = pop.bt_hosts();
    if hosts.is_empty() {
        return out;
    }
    for _ in 0..(n * 4) {
        if out.len() >= n {
            break;
        }
        let host = hosts[rng.gen_range(0..hosts.len())];
        if let Some(ep) = pop.endpoint(host, now) {
            out.push(ep);
        }
    }
    out
}

/// The simulated network fabric.
pub struct SimNetwork<'u> {
    pop: DhtPopulation<'u>,
    params: SimParams,
    rng: SmallRng,
    pub stats: NetStats,
}

impl<'u> SimNetwork<'u> {
    pub fn new(universe: &'u Universe, alloc: &'u AllocationPlan, params: SimParams) -> Self {
        let pop = DhtPopulation::new(universe, alloc, PopulationParams::default());
        let rng = universe.seed.fork("simnet").rng();
        SimNetwork {
            pop,
            params,
            rng,
            stats: NetStats::default(),
        }
    }

    pub fn with_population(pop: DhtPopulation<'u>, seed: Seed, params: SimParams) -> Self {
        SimNetwork {
            pop,
            params,
            rng: seed.fork("simnet").rng(),
            stats: NetStats::default(),
        }
    }

    pub fn population(&self) -> &DhtPopulation<'u> {
        &self.pop
    }

    /// Send `query` to `dst` at `now`; returns the delivered reply, if the
    /// stars align.
    pub fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered> {
        fabric_query(
            &self.pop,
            &self.params,
            &mut self.rng,
            &mut self.stats,
            now,
            dst,
            msg,
        )
    }

    /// Endpoints a bootstrap node would hand a fresh crawler at `now`
    /// (stand-in for `router.bittorrent.com`).
    pub fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4> {
        fabric_bootstrap(&self.pop, &mut self.rng, now, n)
    }

    /// Reference error reply for a malformed datagram (used by protocol
    /// tests; the simulated peers themselves never receive malformed input).
    pub fn protocol_error(transaction: &[u8]) -> Message {
        Message {
            transaction: bytes::Bytes::copy_from_slice(transaction),
            version: None,
            body: MessageBody::Error(KrpcError {
                code: KrpcError::PROTOCOL,
                message: "Protocol Error".into(),
            }),
        }
    }
}

impl KrpcTransport for SimNetwork<'_> {
    fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4> {
        SimNetwork::bootstrap(self, now, n)
    }
    fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered> {
        SimNetwork::query(self, now, dst, msg)
    }
}

/// A shard-splittable fabric for the partitioned crawler: one shared
/// [`DhtPopulation`] (pure `(seed, host, time)` functions, so sharing is
/// safe), with an independent seeded RNG stream per shard.
///
/// Per-shard streams are the determinism keystone: shard `i` always draws
/// from `seed.fork_idx("simnet-shard", i)`, so its loss rolls, latencies
/// and neighbour samples do not depend on which worker thread runs it or
/// on how many threads exist.
pub struct ShardedSimNetwork<'u> {
    pop: DhtPopulation<'u>,
    params: SimParams,
    seed: Seed,
}

impl<'u> ShardedSimNetwork<'u> {
    pub fn new(universe: &'u Universe, alloc: &'u AllocationPlan, params: SimParams) -> Self {
        let pop = DhtPopulation::new(universe, alloc, PopulationParams::default());
        ShardedSimNetwork {
            pop,
            params,
            seed: universe.seed,
        }
    }

    pub fn population(&self) -> &DhtPopulation<'u> {
        &self.pop
    }

    /// The transport for shard `idx` — its RNG stream is a pure function
    /// of `(universe seed, idx)`.
    pub fn shard(&self, idx: u64) -> SimNetShard<'_, 'u> {
        SimNetShard {
            pop: &self.pop,
            params: &self.params,
            rng: self.seed.fork_idx("simnet-shard", idx).rng(),
            stats: NetStats::default(),
        }
    }

    /// All `n` shard transports, in shard order.
    pub fn shards(&self, n: usize) -> Vec<SimNetShard<'_, 'u>> {
        (0..n as u64).map(|i| self.shard(i)).collect()
    }
}

/// One shard's view of the fabric: shared population, private RNG stream
/// and counters. `Send`, so the partitioned crawler can move each shard
/// onto a worker thread.
pub struct SimNetShard<'n, 'u> {
    pop: &'n DhtPopulation<'u>,
    params: &'n SimParams,
    rng: SmallRng,
    pub stats: NetStats,
}

impl KrpcTransport for SimNetShard<'_, '_> {
    fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4> {
        fabric_bootstrap(self.pop, &mut self.rng, now, n)
    }
    fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered> {
        fabric_query(
            self.pop,
            self.params,
            &mut self.rng,
            &mut self.stats,
            now,
            dst,
            msg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_id::NodeId;
    use ar_simnet::alloc::InterestSet;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::time::PERIOD_1;

    struct Fx {
        universe: Universe,
        alloc: AllocationPlan,
    }

    impl Fx {
        fn new() -> Self {
            let universe = Universe::generate(Seed(77), &UniverseConfig::tiny());
            let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
            Fx { universe, alloc }
        }
        fn net(&self) -> SimNetwork<'_> {
            SimNetwork::new(&self.universe, &self.alloc, SimParams::default())
        }
    }

    fn t0() -> SimTime {
        PERIOD_1.start + SimDuration::from_days(3)
    }

    fn ping_msg(rng: &mut SmallRng) -> Message {
        Message::query(
            b"t1",
            Query::Ping {
                id: NodeId::random(rng),
            },
        )
    }

    #[test]
    fn pings_to_live_endpoints_get_pongs() {
        let fx = Fx::new();
        let mut net = fx.net();
        let mut rng = Seed(1).rng();
        let mut pongs = 0;
        let mut sent = 0;
        let eps = net.bootstrap(t0(), 50);
        assert!(!eps.is_empty());
        for ep in eps {
            sent += 1;
            if let Some(d) = net.query(t0(), ep, &ping_msg(&mut rng)) {
                assert!(d.at > t0());
                assert_eq!(d.from, ep);
                match d.message.body {
                    MessageBody::Response(r) => assert!(r.id.is_some()),
                    ref other => panic!("expected response, got {other:?}"),
                }
                pongs += 1;
            }
        }
        assert!(pongs > sent / 3, "response rate too low: {pongs}/{sent}");
        assert!(pongs < sent, "losses should eat some replies");
    }

    #[test]
    fn find_node_returns_neighbors() {
        let fx = Fx::new();
        let mut net = fx.net();
        let mut rng = Seed(2).rng();
        let eps = net.bootstrap(t0(), 30);
        let mut found = 0;
        for ep in eps {
            let q = Message::query(
                b"fn",
                Query::FindNode {
                    id: NodeId::random(&mut rng),
                    target: NodeId::random(&mut rng),
                },
            );
            if let Some(d) = net.query(t0(), ep, &q) {
                if let MessageBody::Response(r) = d.message.body {
                    let nodes = r.nodes.expect("find_node reply carries nodes");
                    assert!(nodes.len() <= 8);
                    found += nodes.len();
                    assert!(d.message.version.is_some(), "peers advertise a version");
                }
            }
        }
        assert!(found > 20, "crawl discovery must progress: {found}");
    }

    #[test]
    fn stats_track_outcomes() {
        let fx = Fx::new();
        let mut net = fx.net();
        let mut rng = Seed(3).rng();
        for ep in net.bootstrap(t0(), 100) {
            let _ = net.query(t0(), ep, &ping_msg(&mut rng));
        }
        // Dead endpoint: unannounced space.
        let dead: SocketAddrV4 = "250.1.2.3:5555".parse().unwrap();
        for _ in 0..20 {
            assert!(net.query(t0(), dead, &ping_msg(&mut rng)).is_none());
        }
        let s = net.stats;
        assert_eq!(
            s.queries_sent,
            s.queries_lost
                + s.no_listener
                + s.not_responding
                + s.replies_lost
                + s.replies_delivered
        );
        assert!(s.no_listener >= 14, "dead endpoints mostly counted: {s:?}");
        assert!(s.replies_delivered > 0);
        assert!(s.response_rate() > 0.0 && s.response_rate() < 1.0);
    }

    #[test]
    fn response_rate_is_zero_not_nan_when_idle() {
        // Regression: a fabric that never carried a query reports 0.0.
        let s = NetStats::default();
        assert_eq!(s.response_rate(), 0.0);
    }

    #[test]
    fn non_query_messages_are_dropped() {
        let fx = Fx::new();
        let mut net = fx.net();
        let resp = Message::response(b"zz", Response::pong(NodeId([1; 20])));
        let ep = net.bootstrap(t0(), 1)[0];
        assert!(net.query(t0(), ep, &resp).is_none());
    }
}
