//! KRPC message codec (BEP-5).
//!
//! KRPC is a trivial RPC over single UDP datagrams: each message is one
//! bencoded dictionary with a transaction id `t`, a type `y` (`q`uery,
//! `r`esponse, `e`rror), and type-specific payload. The paper's `get_nodes`
//! is KRPC `find_node`; its `bt_ping` is KRPC `ping`.
//!
//! Responses do not carry the method name — the sender matches them to
//! queries by transaction id — so [`Response`] is a union of the possible
//! reply fields, as in real implementations.

use crate::node_id::NodeId;
use ar_bencode::{DecodeError, Value};
use bytes::Bytes;
use std::fmt;
use std::net::{Ipv4Addr, SocketAddrV4};

/// Compact node info: 20-byte id + 4-byte IPv4 + 2-byte port (26 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    pub id: NodeId,
    pub addr: SocketAddrV4,
}

impl NodeInfo {
    pub const WIRE_LEN: usize = 26;

    pub fn write_compact(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.id.as_bytes());
        out.extend_from_slice(&self.addr.ip().octets());
        out.extend_from_slice(&self.addr.port().to_be_bytes());
    }

    pub fn parse_compact(raw: &[u8]) -> Option<NodeInfo> {
        if raw.len() != Self::WIRE_LEN {
            return None;
        }
        let id = NodeId::from_bytes(&raw[..20])?;
        let ip = Ipv4Addr::new(raw[20], raw[21], raw[22], raw[23]);
        let port = u16::from_be_bytes([raw[24], raw[25]]);
        Some(NodeInfo {
            id,
            addr: SocketAddrV4::new(ip, port),
        })
    }

    /// Encode a list of nodes into the concatenated compact form used by
    /// the `nodes` response key.
    pub fn encode_list(nodes: &[NodeInfo]) -> Vec<u8> {
        let mut out = Vec::with_capacity(nodes.len() * Self::WIRE_LEN);
        for n in nodes {
            n.write_compact(&mut out);
        }
        out
    }

    /// Decode a concatenated compact node list.
    pub fn decode_list(raw: &[u8]) -> Option<Vec<NodeInfo>> {
        if raw.len() % Self::WIRE_LEN != 0 {
            return None;
        }
        raw.chunks(Self::WIRE_LEN)
            .map(Self::parse_compact)
            .collect()
    }
}

/// A query (the `q`/`a` side of KRPC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// The paper's `bt_ping`.
    Ping {
        id: NodeId,
    },
    /// The paper's `get_nodes`.
    FindNode {
        id: NodeId,
        target: NodeId,
    },
    GetPeers {
        id: NodeId,
        info_hash: [u8; 20],
    },
    AnnouncePeer {
        id: NodeId,
        info_hash: [u8; 20],
        port: u16,
        token: Bytes,
        implied_port: bool,
    },
}

impl Query {
    pub fn method(&self) -> &'static str {
        match self {
            Query::Ping { .. } => "ping",
            Query::FindNode { .. } => "find_node",
            Query::GetPeers { .. } => "get_peers",
            Query::AnnouncePeer { .. } => "announce_peer",
        }
    }

    pub fn sender_id(&self) -> NodeId {
        match self {
            Query::Ping { id }
            | Query::FindNode { id, .. }
            | Query::GetPeers { id, .. }
            | Query::AnnouncePeer { id, .. } => *id,
        }
    }
}

/// A response (`r` side). Field presence depends on the query answered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    /// Responder's node id (always present).
    pub id: Option<NodeId>,
    /// Compact nodes (find_node, get_peers fallback).
    pub nodes: Option<Vec<NodeInfo>>,
    /// Write token (get_peers).
    pub token: Option<Bytes>,
    /// Peer addresses (get_peers hit).
    pub values: Option<Vec<SocketAddrV4>>,
}

impl Response {
    pub fn pong(id: NodeId) -> Response {
        Response {
            id: Some(id),
            ..Default::default()
        }
    }

    pub fn found_nodes(id: NodeId, nodes: Vec<NodeInfo>) -> Response {
        Response {
            id: Some(id),
            nodes: Some(nodes),
            ..Default::default()
        }
    }
}

/// KRPC error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KrpcError {
    pub code: i64,
    pub message: String,
}

impl KrpcError {
    pub const GENERIC: i64 = 201;
    pub const SERVER: i64 = 202;
    pub const PROTOCOL: i64 = 203;
    pub const METHOD_UNKNOWN: i64 = 204;
}

/// Message payload by type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBody {
    Query(Query),
    Response(Response),
    Error(KrpcError),
}

/// A full KRPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id chosen by the querier and echoed by the responder.
    pub transaction: Bytes,
    /// Optional client version (`v`), e.g. `"LT\x01\x02"` — the
    /// "BitTorrent version" field the paper's crawler logs.
    pub version: Option<Bytes>,
    pub body: MessageBody,
}

/// Failures turning a bencode value into a KRPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Bencode(DecodeError),
    /// Structurally valid bencode that is not a valid KRPC message.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Bencode(e) => write!(f, "{e}"),
            WireError::Invalid(what) => write!(f, "invalid KRPC message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Bencode(e)
    }
}

impl Message {
    pub fn query(transaction: impl AsRef<[u8]>, q: Query) -> Message {
        Message {
            transaction: Bytes::copy_from_slice(transaction.as_ref()),
            version: None,
            body: MessageBody::Query(q),
        }
    }

    pub fn response(transaction: impl AsRef<[u8]>, r: Response) -> Message {
        Message {
            transaction: Bytes::copy_from_slice(transaction.as_ref()),
            version: None,
            body: MessageBody::Response(r),
        }
    }

    pub fn with_version(mut self, v: impl AsRef<[u8]>) -> Message {
        self.version = Some(Bytes::copy_from_slice(v.as_ref()));
        self
    }

    /// Serialise to the wire (one UDP datagram payload).
    pub fn encode(&self) -> Vec<u8> {
        self.to_value().encode()
    }

    /// Parse from the wire.
    pub fn decode(raw: &[u8]) -> Result<Message, WireError> {
        Self::from_value(&Value::decode(raw)?)
    }

    pub fn to_value(&self) -> Value {
        let mut root = Value::empty_dict();
        root.insert(b"t", Value::Bytes(self.transaction.clone()));
        if let Some(v) = &self.version {
            root.insert(b"v", Value::Bytes(v.clone()));
        }
        match &self.body {
            MessageBody::Query(q) => {
                root.insert(b"y", Value::bytes(b"q"));
                root.insert(b"q", Value::bytes(q.method().as_bytes()));
                let mut a = Value::empty_dict();
                match q {
                    Query::Ping { id } => {
                        a.insert(b"id", Value::bytes(id.as_bytes()));
                    }
                    Query::FindNode { id, target } => {
                        a.insert(b"id", Value::bytes(id.as_bytes()));
                        a.insert(b"target", Value::bytes(target.as_bytes()));
                    }
                    Query::GetPeers { id, info_hash } => {
                        a.insert(b"id", Value::bytes(id.as_bytes()));
                        a.insert(b"info_hash", Value::bytes(info_hash));
                    }
                    Query::AnnouncePeer {
                        id,
                        info_hash,
                        port,
                        token,
                        implied_port,
                    } => {
                        a.insert(b"id", Value::bytes(id.as_bytes()));
                        a.insert(b"info_hash", Value::bytes(info_hash));
                        a.insert(b"port", Value::int(i64::from(*port)));
                        a.insert(b"token", Value::Bytes(token.clone()));
                        if *implied_port {
                            a.insert(b"implied_port", Value::int(1));
                        }
                    }
                }
                root.insert(b"a", a);
            }
            MessageBody::Response(r) => {
                root.insert(b"y", Value::bytes(b"r"));
                let mut body = Value::empty_dict();
                if let Some(id) = r.id {
                    body.insert(b"id", Value::bytes(id.as_bytes()));
                }
                if let Some(nodes) = &r.nodes {
                    body.insert(b"nodes", Value::bytes(NodeInfo::encode_list(nodes)));
                }
                if let Some(token) = &r.token {
                    body.insert(b"token", Value::Bytes(token.clone()));
                }
                if let Some(values) = &r.values {
                    let list = values
                        .iter()
                        .map(|addr| {
                            let mut raw = Vec::with_capacity(6);
                            raw.extend_from_slice(&addr.ip().octets());
                            raw.extend_from_slice(&addr.port().to_be_bytes());
                            Value::bytes(&raw)
                        })
                        .collect::<Vec<_>>();
                    body.insert(b"values", Value::List(list));
                }
                root.insert(b"r", body);
            }
            MessageBody::Error(e) => {
                root.insert(b"y", Value::bytes(b"e"));
                root.insert(
                    b"e",
                    Value::list([Value::int(e.code), Value::bytes(e.message.as_bytes())]),
                );
            }
        }
        root
    }

    pub fn from_value(v: &Value) -> Result<Message, WireError> {
        let t = v
            .get(b"t")
            .and_then(Value::as_bytes)
            .ok_or(WireError::Invalid("missing transaction id"))?;
        let version = v
            .get(b"v")
            .and_then(Value::as_bytes)
            .map(Bytes::copy_from_slice);
        let y = v
            .get(b"y")
            .and_then(Value::as_bytes)
            .ok_or(WireError::Invalid("missing message type"))?;
        let body = match y {
            b"q" => MessageBody::Query(Self::parse_query(v)?),
            b"r" => MessageBody::Response(Self::parse_response(v)?),
            b"e" => MessageBody::Error(Self::parse_error(v)?),
            _ => return Err(WireError::Invalid("unknown message type")),
        };
        Ok(Message {
            transaction: Bytes::copy_from_slice(t),
            version,
            body,
        })
    }

    fn parse_query(v: &Value) -> Result<Query, WireError> {
        let method = v
            .get(b"q")
            .and_then(Value::as_bytes)
            .ok_or(WireError::Invalid("query without method"))?;
        let a = v
            .get(b"a")
            .and_then(Value::as_dict)
            .ok_or(WireError::Invalid("query without arguments"))?;
        let id = a
            .get(&b"id"[..])
            .and_then(Value::as_bytes)
            .and_then(NodeId::from_bytes)
            .ok_or(WireError::Invalid("query without valid sender id"))?;
        match method {
            b"ping" => Ok(Query::Ping { id }),
            b"find_node" => {
                let target = a
                    .get(&b"target"[..])
                    .and_then(Value::as_bytes)
                    .and_then(NodeId::from_bytes)
                    .ok_or(WireError::Invalid("find_node without target"))?;
                Ok(Query::FindNode { id, target })
            }
            b"get_peers" => {
                let info_hash: [u8; 20] = a
                    .get(&b"info_hash"[..])
                    .and_then(Value::as_bytes)
                    .and_then(|b| b.try_into().ok())
                    .ok_or(WireError::Invalid("get_peers without info_hash"))?;
                Ok(Query::GetPeers { id, info_hash })
            }
            b"announce_peer" => {
                let info_hash: [u8; 20] = a
                    .get(&b"info_hash"[..])
                    .and_then(Value::as_bytes)
                    .and_then(|b| b.try_into().ok())
                    .ok_or(WireError::Invalid("announce_peer without info_hash"))?;
                let port = a
                    .get(&b"port"[..])
                    .and_then(Value::as_int)
                    .and_then(|p| u16::try_from(p).ok())
                    .ok_or(WireError::Invalid("announce_peer without port"))?;
                let token = a
                    .get(&b"token"[..])
                    .and_then(Value::as_bytes)
                    .map(Bytes::copy_from_slice)
                    .ok_or(WireError::Invalid("announce_peer without token"))?;
                let implied_port = a
                    .get(&b"implied_port"[..])
                    .and_then(Value::as_int)
                    .is_some_and(|x| x != 0);
                Ok(Query::AnnouncePeer {
                    id,
                    info_hash,
                    port,
                    token,
                    implied_port,
                })
            }
            _ => Err(WireError::Invalid("unknown query method")),
        }
    }

    fn parse_response(v: &Value) -> Result<Response, WireError> {
        let r = v
            .get(b"r")
            .and_then(Value::as_dict)
            .ok_or(WireError::Invalid("response without body"))?;
        let id = r
            .get(&b"id"[..])
            .and_then(Value::as_bytes)
            .and_then(NodeId::from_bytes);
        let nodes = match r.get(&b"nodes"[..]).and_then(Value::as_bytes) {
            Some(raw) => Some(
                NodeInfo::decode_list(raw).ok_or(WireError::Invalid("malformed compact nodes"))?,
            ),
            None => None,
        };
        let token = r
            .get(&b"token"[..])
            .and_then(Value::as_bytes)
            .map(Bytes::copy_from_slice);
        let values = match r.get(&b"values"[..]).and_then(Value::as_list) {
            Some(list) => {
                let mut peers = Vec::with_capacity(list.len());
                for item in list {
                    let raw = item
                        .as_bytes()
                        .filter(|b| b.len() == 6)
                        .ok_or(WireError::Invalid("malformed compact peer"))?;
                    let ip = Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3]);
                    let port = u16::from_be_bytes([raw[4], raw[5]]);
                    peers.push(SocketAddrV4::new(ip, port));
                }
                Some(peers)
            }
            None => None,
        };
        Ok(Response {
            id,
            nodes,
            token,
            values,
        })
    }

    fn parse_error(v: &Value) -> Result<KrpcError, WireError> {
        let e = v
            .get(b"e")
            .and_then(Value::as_list)
            .ok_or(WireError::Invalid("error without payload"))?;
        let code = e
            .first()
            .and_then(Value::as_int)
            .ok_or(WireError::Invalid("error without code"))?;
        let message = e.get(1).and_then(Value::as_str).unwrap_or("").to_string();
        Ok(KrpcError { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ids() -> (NodeId, NodeId) {
        let mut rng = SmallRng::seed_from_u64(5);
        (NodeId::random(&mut rng), NodeId::random(&mut rng))
    }

    #[test]
    fn ping_golden_bytes() {
        // BEP-5's ping example, adapted: known id "abcdefghij0123456789".
        let id = NodeId::from_bytes(b"abcdefghij0123456789").unwrap();
        let msg = Message::query(b"aa", Query::Ping { id });
        assert_eq!(
            msg.encode(),
            b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe".to_vec()
        );
    }

    #[test]
    fn pong_golden_bytes() {
        let id = NodeId::from_bytes(b"mnopqrstuvwxyz123456").unwrap();
        let msg = Message::response(b"aa", Response::pong(id));
        assert_eq!(
            msg.encode(),
            b"d1:rd2:id20:mnopqrstuvwxyz123456e1:t2:aa1:y1:re".to_vec()
        );
    }

    #[test]
    fn find_node_roundtrip() {
        let (id, target) = ids();
        let msg = Message::query(b"xy", Query::FindNode { id, target }).with_version(b"LT01");
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn find_node_response_roundtrip() {
        let (id, other) = ids();
        let nodes = vec![
            NodeInfo {
                id: other,
                addr: "198.51.100.7:6881".parse().unwrap(),
            },
            NodeInfo {
                id,
                addr: "203.0.113.250:12281".parse().unwrap(),
            },
        ];
        let msg = Message::response(b"01", Response::found_nodes(id, nodes.clone()));
        let back = Message::decode(&msg.encode()).unwrap();
        match back.body {
            MessageBody::Response(r) => assert_eq!(r.nodes.unwrap(), nodes),
            other => panic!("not a response: {other:?}"),
        }
    }

    #[test]
    fn get_peers_and_announce_roundtrip() {
        let (id, _) = ids();
        let info_hash = [7u8; 20];
        let q = Message::query(b"gp", Query::GetPeers { id, info_hash });
        assert_eq!(Message::decode(&q.encode()).unwrap(), q);

        let ann = Message::query(
            b"an",
            Query::AnnouncePeer {
                id,
                info_hash,
                port: 6881,
                token: Bytes::from_static(b"tok"),
                implied_port: true,
            },
        );
        assert_eq!(Message::decode(&ann.encode()).unwrap(), ann);
    }

    #[test]
    fn get_peers_values_response_roundtrip() {
        let (id, _) = ids();
        let msg = Message::response(
            b"vv",
            Response {
                id: Some(id),
                token: Some(Bytes::from_static(b"tk")),
                values: Some(vec![
                    "192.0.2.1:51413".parse().unwrap(),
                    "198.51.100.2:6881".parse().unwrap(),
                ]),
                nodes: None,
            },
        );
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn error_roundtrip() {
        let msg = Message {
            transaction: Bytes::from_static(b"ee"),
            version: None,
            body: MessageBody::Error(KrpcError {
                code: KrpcError::PROTOCOL,
                message: "Protocol Error".into(),
            }),
        };
        assert_eq!(
            msg.encode(),
            b"d1:eli203e14:Protocol Errore1:t2:ee1:y1:ee".to_vec()
        );
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn rejects_malformed() {
        for raw in [
            &b"de"[..],                                // no fields
            b"d1:t2:aa1:y1:qe",                        // query without method
            b"d1:q4:ping1:t2:aa1:y1:qe",               // query without args
            b"d1:ad2:id3:shoe1:q4:ping1:t2:aa1:y1:qe", // bad id length
            b"d1:rd5:nodes3:abce1:t2:aa1:y1:re",       // nodes not 26-aligned
            b"d1:t2:aa1:y1:ze",                        // unknown type
        ] {
            assert!(Message::decode(raw).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn compact_node_list_roundtrip() {
        let (a, b) = ids();
        let nodes = vec![
            NodeInfo {
                id: a,
                addr: "10.1.2.3:80".parse().unwrap(),
            },
            NodeInfo {
                id: b,
                addr: "10.9.9.9:65535".parse().unwrap(),
            },
        ];
        let raw = NodeInfo::encode_list(&nodes);
        assert_eq!(raw.len(), 52);
        assert_eq!(NodeInfo::decode_list(&raw).unwrap(), nodes);
        assert!(NodeInfo::decode_list(&raw[..51]).is_none());
    }
}
