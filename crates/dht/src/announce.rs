//! Client-side `get_peers` / `announce_peer` flow (BEP-5).
//!
//! The full publish/subscribe cycle a BitTorrent client performs per
//! torrent: iteratively search the info-hash's neighbourhood with
//! `get_peers`, collecting write tokens and any peers already announced,
//! then `announce_peer` (with each node's token) to the closest nodes.
//!
//! In the paper's ecosystem this is the traffic that makes BitTorrent
//! users *discoverable* — the crawler's `get_nodes` sweep rides on the
//! routing state this machinery maintains.

use crate::node_id::NodeId;
use crate::wire::{Message, MessageBody, NodeInfo, Query};
use bytes::Bytes;
use std::collections::HashSet;
use std::net::SocketAddrV4;
use std::time::Duration;

/// One `get_peers` exchange's useful content.
#[derive(Debug, Clone)]
pub struct GetPeersReply {
    pub from: SocketAddrV4,
    pub responder: Option<NodeId>,
    pub token: Option<Bytes>,
    pub nodes: Vec<NodeInfo>,
    pub peers: Vec<SocketAddrV4>,
}

/// Transport for the announce cycle.
pub trait AnnounceTransport {
    fn get_peers(&mut self, dst: SocketAddrV4, info_hash: [u8; 20]) -> Option<GetPeersReply>;
    /// Returns true when the announce was accepted.
    fn announce(&mut self, dst: SocketAddrV4, info_hash: [u8; 20], port: u16, token: Bytes)
        -> bool;
}

/// Outcome of a full publish cycle.
#[derive(Debug, Clone)]
pub struct AnnounceResult {
    /// Peers already in the swarm (from get_peers hits).
    pub peers: Vec<SocketAddrV4>,
    /// Nodes we successfully announced to.
    pub announced_to: Vec<SocketAddrV4>,
    pub queries: usize,
}

/// Search the info-hash neighbourhood and announce our `port` to the `k`
/// closest token-holding nodes.
pub fn announce_to_swarm(
    transport: &mut impl AnnounceTransport,
    bootstrap: &[SocketAddrV4],
    info_hash: [u8; 20],
    port: u16,
    k: usize,
) -> AnnounceResult {
    let target = NodeId(info_hash);
    let mut queried: HashSet<SocketAddrV4> = HashSet::new();
    let mut pending: Vec<SocketAddrV4> = bootstrap.to_vec();
    // (distance, addr, token) of token-holders.
    let mut holders: Vec<([u8; 20], SocketAddrV4, Bytes)> = Vec::new();
    let mut peers: HashSet<SocketAddrV4> = HashSet::new();
    let mut queries = 0;

    while let Some(dst) = pending.pop() {
        if !queried.insert(dst) {
            continue;
        }
        if queries >= 64 {
            break;
        }
        queries += 1;
        let Some(reply) = transport.get_peers(dst, info_hash) else {
            continue;
        };
        peers.extend(reply.peers.iter().copied());
        if let (Some(id), Some(token)) = (reply.responder, reply.token) {
            holders.push((id.distance(&target).0, dst, token));
        }
        for info in reply.nodes {
            if !queried.contains(&info.addr) {
                pending.push(info.addr);
            }
        }
        // Keep exploring until the closest known holders stabilise; a
        // simple breadth cap suffices for swarm sizes in this workspace.
    }

    holders.sort_by_key(|h| h.0);
    let mut announced_to = Vec::new();
    for (_, addr, token) in holders.into_iter().take(k) {
        if transport.announce(addr, info_hash, port, token) {
            announced_to.push(addr);
        }
    }

    let mut peers: Vec<SocketAddrV4> = peers.into_iter().collect();
    peers.sort();
    AnnounceResult {
        peers,
        announced_to,
        queries,
    }
}

/// Blocking-UDP announce transport.
pub struct UdpAnnounce {
    pub self_id: NodeId,
    pub timeout: Duration,
}

impl AnnounceTransport for UdpAnnounce {
    fn get_peers(&mut self, dst: SocketAddrV4, info_hash: [u8; 20]) -> Option<GetPeersReply> {
        let msg = Message::query(
            b"gp",
            Query::GetPeers {
                id: self.self_id,
                info_hash,
            },
        );
        let reply = crate::udp::query_once(dst, &msg, self.timeout).ok()?;
        let MessageBody::Response(r) = reply.body else {
            return None;
        };
        Some(GetPeersReply {
            from: dst,
            responder: r.id,
            token: r.token,
            nodes: r.nodes.unwrap_or_default(),
            peers: r.values.unwrap_or_default(),
        })
    }

    fn announce(
        &mut self,
        dst: SocketAddrV4,
        info_hash: [u8; 20],
        port: u16,
        token: Bytes,
    ) -> bool {
        let msg = Message::query(
            b"an",
            Query::AnnouncePeer {
                id: self.self_id,
                info_hash,
                port,
                token,
                implied_port: false,
            },
        );
        matches!(
            crate::udp::query_once(dst, &msg, self.timeout).map(|m| m.body),
            Ok(MessageBody::Response(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::DhtNode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn publish_and_rediscover_over_real_udp() {
        let mut rng = SmallRng::seed_from_u64(77);
        let servers: Vec<DhtNode> = (0..8)
            .map(|_| DhtNode::spawn(NodeId::random(&mut rng), "127.0.0.1:0".parse().unwrap()))
            .collect::<Result<_, _>>()
            .unwrap();
        for i in 0..servers.len() {
            for step in 1..=2 {
                let peer = &servers[(i + step) % servers.len()];
                servers[i].add_contact(peer.id(), peer.addr());
            }
        }
        let info_hash: [u8; 20] = rng.gen();

        // First client publishes.
        let mut t1 = UdpAnnounce {
            self_id: NodeId::random(&mut rng),
            timeout: Duration::from_millis(500),
        };
        let pub_result = announce_to_swarm(&mut t1, &[servers[0].addr()], info_hash, 51413, 3);
        assert!(
            !pub_result.announced_to.is_empty(),
            "announce must reach token holders ({} queries)",
            pub_result.queries
        );
        assert!(pub_result.peers.is_empty(), "swarm was empty before us");

        // Second client searches and finds the first.
        let mut t2 = UdpAnnounce {
            self_id: NodeId::random(&mut rng),
            timeout: Duration::from_millis(500),
        };
        let found = announce_to_swarm(&mut t2, &[servers[3].addr()], info_hash, 6881, 3);
        assert!(
            found.peers.iter().any(|p| p.port() == 51413),
            "second client must discover the first's announce: {:?}",
            found.peers
        );
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn forged_tokens_are_rejected_end_to_end() {
        let mut rng = SmallRng::seed_from_u64(78);
        let node =
            DhtNode::spawn(NodeId::random(&mut rng), "127.0.0.1:0".parse().unwrap()).unwrap();
        let info_hash: [u8; 20] = rng.gen();

        struct Forger(UdpAnnounce);
        impl AnnounceTransport for Forger {
            fn get_peers(
                &mut self,
                dst: SocketAddrV4,
                info_hash: [u8; 20],
            ) -> Option<GetPeersReply> {
                let mut reply = self.0.get_peers(dst, info_hash)?;
                reply.token = Some(Bytes::from_static(b"forged!!"));
                Some(reply)
            }
            fn announce(
                &mut self,
                dst: SocketAddrV4,
                info_hash: [u8; 20],
                port: u16,
                token: Bytes,
            ) -> bool {
                self.0.announce(dst, info_hash, port, token)
            }
        }

        let mut forger = Forger(UdpAnnounce {
            self_id: NodeId::random(&mut rng),
            timeout: Duration::from_millis(500),
        });
        let result = announce_to_swarm(&mut forger, &[node.addr()], info_hash, 9999, 3);
        assert!(
            result.announced_to.is_empty(),
            "forged tokens must be rejected"
        );
        node.shutdown();
    }
}
