//! Fault-aware transport: wraps any [`KrpcTransport`] and drops packets
//! according to a [`FaultPlan`] — AS-wide blackouts and bursty elevated
//! loss — before the inner fabric ever sees them.
//!
//! Determinism contract: the wrapper holds no RNG. Blackout membership is
//! a pure schedule lookup, and burst drops use the stateless
//! [`ar_faults::coin`] keyed by `(plan seed, time, endpoint, send counter)`.
//! When the plan schedules no network faults the wrapper is pass-through:
//! the inner transport receives the exact same call sequence it would have
//! seen unwrapped, so a zero-intensity plan cannot change a crawl.

use crate::sim::{Delivered, KrpcTransport};
use crate::wire::Message;
use ar_faults::{coin, FaultPlan};
use ar_simnet::asn::Asn;
use ar_simnet::time::SimTime;
use std::net::{Ipv4Addr, SocketAddrV4};

/// Counters for the faults the wrapper itself injected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Queries swallowed because the destination AS was blacked out.
    pub dropped_blackout: u64,
    /// Queries swallowed by a scheduled loss burst.
    pub dropped_burst: u64,
}

impl FaultStats {
    /// Publish the drop counters by fault class under `dht.*`.
    pub fn record_obs(&self, obs: &ar_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.add("dht.dropped_blackout", self.dropped_blackout);
        obs.add("dht.dropped_burst", self.dropped_burst);
        obs.add(
            "dht.dropped_total",
            self.dropped_blackout + self.dropped_burst,
        );
    }
}

/// A [`KrpcTransport`] decorator injecting scheduled network faults.
pub struct FaultyTransport<'p, N, F> {
    inner: N,
    plan: &'p FaultPlan,
    asn_of: F,
    sent: u64,
    pub fault_stats: FaultStats,
}

impl<'p, N, F> FaultyTransport<'p, N, F>
where
    N: KrpcTransport,
    F: Fn(Ipv4Addr) -> Option<Asn>,
{
    pub fn new(inner: N, plan: &'p FaultPlan, asn_of: F) -> Self {
        FaultyTransport {
            inner,
            plan,
            asn_of,
            sent: 0,
            fault_stats: FaultStats::default(),
        }
    }

    pub fn inner(&self) -> &N {
        &self.inner
    }

    pub fn into_inner(self) -> N {
        self.inner
    }
}

impl<N, F> KrpcTransport for FaultyTransport<'_, N, F>
where
    N: KrpcTransport,
    F: Fn(Ipv4Addr) -> Option<Asn>,
{
    fn bootstrap(&mut self, now: SimTime, n: usize) -> Vec<SocketAddrV4> {
        // Bootstrap nodes are long-lived infrastructure outside the
        // simulated edge ASes; the plan does not black them out.
        self.inner.bootstrap(now, n)
    }

    fn query(&mut self, now: SimTime, dst: SocketAddrV4, msg: &Message) -> Option<Delivered> {
        self.sent += 1;
        if self.plan.blackout_at((self.asn_of)(*dst.ip()), now) {
            self.fault_stats.dropped_blackout += 1;
            return None;
        }
        let extra = self.plan.extra_loss_at(now);
        if extra > 0.0 {
            let key = [
                self.plan.seed.0,
                now.as_secs(),
                u64::from(u32::from(*dst.ip())),
                u64::from(dst.port()),
                self.sent,
            ];
            if coin::flip(extra, &key) {
                self.fault_stats.dropped_burst += 1;
                return None;
            }
        }
        self.inner.query(now, dst, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_id::NodeId;
    use crate::wire::Query;
    use ar_faults::{Blackout, FaultPlan, LossBurst};
    use ar_simnet::rng::Seed;
    use ar_simnet::time::{SimDuration, TimeWindow, PERIOD_1};

    /// A transport that answers nothing but remembers what it was asked.
    struct Recorder {
        queries: Vec<(SimTime, SocketAddrV4)>,
    }

    impl KrpcTransport for Recorder {
        fn bootstrap(&mut self, _now: SimTime, _n: usize) -> Vec<SocketAddrV4> {
            Vec::new()
        }
        fn query(&mut self, now: SimTime, dst: SocketAddrV4, _msg: &Message) -> Option<Delivered> {
            self.queries.push((now, dst));
            None
        }
    }

    fn ping() -> Message {
        Message::query(
            b"tt",
            Query::Ping {
                id: NodeId([7; 20]),
            },
        )
    }

    fn t0() -> SimTime {
        PERIOD_1.start + SimDuration::from_days(1)
    }

    #[test]
    fn zero_plan_is_pass_through() {
        let plan = FaultPlan::zero(Seed(1));
        let mut t = FaultyTransport::new(
            Recorder {
                queries: Vec::new(),
            },
            &plan,
            |_| Some(Asn(1)),
        );
        let ep: SocketAddrV4 = "10.0.0.1:6881".parse().unwrap();
        for _ in 0..50 {
            t.query(t0(), ep, &ping());
        }
        assert_eq!(
            t.inner().queries.len(),
            50,
            "every query must reach the fabric"
        );
        assert_eq!(t.fault_stats.dropped_blackout, 0);
        assert_eq!(t.fault_stats.dropped_burst, 0);
    }

    #[test]
    fn blackout_swallows_queries_to_that_as_only() {
        let mut plan = FaultPlan::zero(Seed(2));
        plan.blackouts.push(Blackout {
            asn: Asn(5),
            window: TimeWindow::new(PERIOD_1.start, PERIOD_1.end),
        });
        plan.rebuild_indexes();
        let dark: SocketAddrV4 = "10.0.0.1:6881".parse().unwrap();
        let lit: SocketAddrV4 = "10.0.0.2:6881".parse().unwrap();
        let asn_of = |ip: Ipv4Addr| {
            if ip.octets()[3] == 1 {
                Some(Asn(5))
            } else {
                Some(Asn(6))
            }
        };
        let mut t = FaultyTransport::new(
            Recorder {
                queries: Vec::new(),
            },
            &plan,
            asn_of,
        );
        for _ in 0..10 {
            t.query(t0(), dark, &ping());
            t.query(t0(), lit, &ping());
        }
        assert_eq!(t.fault_stats.dropped_blackout, 10);
        assert_eq!(t.inner().queries.len(), 10);
        assert!(t.inner().queries.iter().all(|(_, d)| *d == lit));
    }

    #[test]
    fn burst_loss_drops_a_plausible_fraction() {
        let mut plan = FaultPlan::zero(Seed(3));
        plan.loss_bursts.push(LossBurst {
            window: TimeWindow::new(PERIOD_1.start, PERIOD_1.end),
            extra_loss: 0.5,
        });
        plan.rebuild_indexes();
        let ep: SocketAddrV4 = "10.0.0.9:6881".parse().unwrap();
        let mut t = FaultyTransport::new(
            Recorder {
                queries: Vec::new(),
            },
            &plan,
            |_| Some(Asn(1)),
        );
        let n = 2000;
        for i in 0..n {
            t.query(t0() + SimDuration::from_secs(i), ep, &ping());
        }
        let dropped = t.fault_stats.dropped_burst;
        assert!(
            (n * 4 / 10..=n * 6 / 10).contains(&dropped),
            "burst at 0.5 should drop ~half: {dropped}/{n}"
        );
    }
}
