//! # ar-dht — BitTorrent Mainline DHT (BEP-5)
//!
//! The substrate for the paper's NAT-detection technique (§3.1): a complete
//! Mainline-DHT protocol stack plus the simulated peer population the
//! crawler measures.
//!
//! Layers, bottom-up:
//!
//! * [`node_id`] — 160-bit identifiers with the XOR metric; IDs are seeded
//!   from the (possibly private) IP plus a nonce and *regenerate on
//!   reboot*, which is why the paper's crawler cannot use them as stable
//!   user identifiers.
//! * [`wire`] — the KRPC codec over [`ar_bencode`]: `ping` (the paper's
//!   `bt_ping`), `find_node` (the paper's `get_nodes`), `get_peers`,
//!   `announce_peer`, compact node lists, errors.
//! * [`routing`] — k-bucket routing tables for conforming nodes.
//! * [`population`] — the simulated BitTorrent user population derived from
//!   an [`ar_simnet::Universe`]: sessions, reboots, NAT port bindings,
//!   stale neighbour observations.
//! * [`sim`] — the simulated UDP fabric (loss, latency, fault injection)
//!   the crawler in `ar-crawler` talks to.
//! * [`udp`] — a real blocking-UDP DHT node for loopback demos and
//!   end-to-end codec validation.
//!
//! ```
//! use ar_dht::{Message, NodeId, Query};
//!
//! // The paper's bt_ping, byte for byte (BEP-5's reference encoding):
//! let id = NodeId::from_bytes(b"abcdefghij0123456789").unwrap();
//! let ping = Message::query(b"aa", Query::Ping { id });
//! assert_eq!(
//!     ping.encode(),
//!     b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe"
//! );
//! assert_eq!(Message::decode(&ping.encode()).unwrap(), ping);
//! ```

pub mod announce;
pub mod bep42;
pub mod client;
pub mod faults;
pub mod lookup;
pub mod node_id;
pub mod population;
pub mod routing;
pub mod sim;
pub mod udp;
pub mod wire;

pub use announce::{announce_to_swarm, AnnounceResult, AnnounceTransport, GetPeersReply};
pub use bep42::{crc32c, is_valid as bep42_valid, node_id_for_ip};
pub use client::{random_id_in_bucket, DhtClient};
pub use faults::{FaultStats, FaultyTransport};
pub use lookup::{iterative_find_node, FindNodeTransport, LookupConfig, LookupResult};
pub use node_id::{Distance, NodeId};
pub use population::{DhtPopulation, NodeSession, PopulationParams};
pub use routing::{Contact, InsertOutcome, RoutingTable, K};
pub use sim::{
    Delivered, KrpcTransport, NetStats, ShardedSimNetwork, SimNetShard, SimNetwork, SimParams,
};
pub use wire::{KrpcError, Message, MessageBody, NodeInfo, Query, Response, WireError};
