//! The simulated BitTorrent population: which host is reachable at which
//! public endpoint, with which node_id, at any instant.
//!
//! Everything here is a *pure function* of `(universe seed, host, time)` —
//! no per-host mutable state — so a population over hundreds of thousands
//! of hosts costs no memory and stays deterministic no matter in which
//! order the crawler touches it.
//!
//! The model captures the behaviours §3.1 of the paper turns on:
//!
//! * hosts run in **sessions** (epochs): between epochs they may be offline;
//! * a **reboot** regenerates the node_id (the reason the paper's crawler
//!   cannot key on node_ids) and, for NAT users, re-establishes the NAT
//!   binding — i.e. a fresh public port;
//! * some clients **randomise their port** every restart even without NAT,
//!   which is exactly the false-positive case ("the BitTorrent user has
//!   changed the port number and the crawler encountered stale
//!   information") the bt_ping verification round exists to reject.

use crate::node_id::NodeId;
use crate::wire::NodeInfo;
use ar_simnet::alloc::AllocationPlan;
use ar_simnet::hosts::{Attachment, HostId};
use ar_simnet::rng::Seed;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use ar_simnet::universe::Universe;
use rand::Rng;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddrV4};

/// Tunables of the behaviour model.
#[derive(Debug, Clone)]
pub struct PopulationParams {
    /// Shortest / longest per-host epoch (session granularity).
    pub epoch_hours_min: u64,
    pub epoch_hours_max: u64,
    /// Probability that an epoch boundary is a reboot (new node_id, new NAT
    /// binding).
    pub reboot_prob: f64,
    /// Fraction of clients that randomise their listening port per reboot
    /// era even without a NAT in front.
    pub random_port_rate: f64,
}

impl Default for PopulationParams {
    fn default() -> Self {
        PopulationParams {
            epoch_hours_min: 8,
            epoch_hours_max: 72,
            reboot_prob: 0.3,
            random_port_rate: 0.25,
        }
    }
}

/// A host's DHT presence during one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSession {
    pub node_id: NodeId,
    /// Public (possibly NAT-translated) port.
    pub port: u16,
    /// Client version bytes sent in the KRPC `v` field.
    pub version: [u8; 4],
}

/// Known client version tags (two ASCII letters + two version bytes).
const VERSIONS: [[u8; 4]; 5] = [
    *b"LT\x01\x02",
    *b"UT\x03\x05",
    *b"GR\x02\x01",
    *b"TR\x02\x09",
    *b"XL\x00\x07",
];

/// The BitTorrent host population over one measurement window.
pub struct DhtPopulation<'u> {
    universe: &'u Universe,
    alloc: &'u AllocationPlan,
    params: PopulationParams,
    seed: Seed,
    /// All hosts running BitTorrent, in stable order.
    bt_hosts: Vec<HostId>,
    /// Static BT hosts by their fixed address.
    static_by_ip: HashMap<Ipv4Addr, HostId>,
    window: TimeWindow,
}

impl<'u> DhtPopulation<'u> {
    pub fn new(
        universe: &'u Universe,
        alloc: &'u AllocationPlan,
        params: PopulationParams,
    ) -> Self {
        let bt_hosts: Vec<HostId> = universe.bittorrent_hosts().map(|h| h.id).collect();
        let static_by_ip = universe
            .bittorrent_hosts()
            .filter_map(|h| match h.attachment {
                Attachment::Static { ip } => Some((ip, h.id)),
                _ => None,
            })
            .collect();
        DhtPopulation {
            universe,
            alloc,
            params,
            seed: universe.seed.fork("dht-pop"),
            bt_hosts,
            static_by_ip,
            window: alloc.window,
        }
    }

    pub fn universe(&self) -> &Universe {
        self.universe
    }

    pub fn num_bt_hosts(&self) -> usize {
        self.bt_hosts.len()
    }

    pub fn bt_hosts(&self) -> &[HostId] {
        &self.bt_hosts
    }

    // ---- pure session model -------------------------------------------------

    fn hash(&self, host: HostId, label: u64) -> u64 {
        self.seed.fork_idx("h", (u64::from(host.0) << 24) ^ label).0
    }

    fn epoch_len_secs(&self, host: HostId) -> u64 {
        let span = self.params.epoch_hours_max - self.params.epoch_hours_min + 1;
        let hours = self.params.epoch_hours_min + self.hash(host, 0xE90C) % span;
        hours * 3600
    }

    fn epoch_of(&self, host: HostId, t: SimTime) -> u64 {
        let len = self.epoch_len_secs(host);
        let offset = self.hash(host, 0x0FF5) % len;
        (t.as_secs() + offset) / len
    }

    fn online_in_epoch(&self, host: HostId, epoch: u64) -> bool {
        let frac = self.universe.host(host).behavior.online_fraction;
        let roll = self.hash(host, 0x0211_0000 ^ epoch) as f64 / u64::MAX as f64;
        roll < frac
    }

    /// Reboot-era of an epoch: the most recent epoch boundary at which the
    /// machine rebooted. Era 0 is a reboot by definition.
    fn era_of(&self, host: HostId, epoch: u64) -> u64 {
        let mut e = epoch;
        for _ in 0..64 {
            if e == 0 {
                return 0;
            }
            let roll = self.hash(host, 0x4EB0_0000 ^ e) as f64 / u64::MAX as f64;
            if roll < self.params.reboot_prob {
                return e;
            }
            e -= 1;
        }
        e
    }

    /// The private (behind-NAT) or public address whose bytes seed the
    /// node_id, as in real clients (paper §3.1: "hashing the (possibly
    /// private) IP address").
    fn id_seed_ip(&self, host: HostId, t: SimTime) -> Ipv4Addr {
        match self.universe.host(host).attachment {
            Attachment::NatUser { nat, slot } => {
                // RFC1918 address inside the NAT.
                let n = nat.0;
                Ipv4Addr::new(192, 168, (n % 250) as u8, (slot % 250) as u8 + 2)
            }
            Attachment::Static { ip } => ip,
            Attachment::DynamicSub { .. } => self
                .alloc
                .public_ip(self.universe, host, t)
                .unwrap_or(Ipv4Addr::UNSPECIFIED),
        }
    }

    /// The host's session at `t`: `None` when offline (or, for dynamic
    /// subscribers, unallocated).
    pub fn session(&self, host: HostId, t: SimTime) -> Option<NodeSession> {
        let epoch = self.epoch_of(host, t);
        if !self.online_in_epoch(host, epoch) {
            return None;
        }
        let era = self.era_of(host, epoch);
        let node_id =
            NodeId::from_ip_and_nonce(self.id_seed_ip(host, t), self.hash(host, 0x1D00 ^ era));
        let port = self.port_in_era(host, era);
        let version = VERSIONS[(self.hash(host, 0x5EC7) % VERSIONS.len() as u64) as usize];
        Some(NodeSession {
            node_id,
            port,
            version,
        })
    }

    fn port_in_era(&self, host: HostId, era: u64) -> u16 {
        let is_nat = matches!(
            self.universe.host(host).attachment,
            Attachment::NatUser { .. }
        );
        let randomises =
            (self.hash(host, 0x9087) as f64 / u64::MAX as f64) < self.params.random_port_rate;
        let label = if is_nat || randomises {
            // NAT binding / randomised listening port: fresh per era.
            0x7077_0000 ^ era
        } else {
            // Stable configured port.
            0x7077_FFFF
        };
        1025 + (self.hash(host, label) % 64_000) as u16
    }

    /// The host's public endpoint at `t` (`None` when offline/unallocated).
    pub fn endpoint(&self, host: HostId, t: SimTime) -> Option<SocketAddrV4> {
        let session = self.session(host, t)?;
        let ip = self.alloc.public_ip(self.universe, host, t)?;
        Some(SocketAddrV4::new(ip, session.port))
    }

    /// Who (if anyone) receives a datagram sent to `addr` at time `t`.
    ///
    /// This is the inverse of [`endpoint`](Self::endpoint) and encodes the
    /// NAT demultiplexing: a gateway forwards a datagram only to the user
    /// whose *current* binding matches the destination port — stale ports
    /// go nowhere, which is what the crawler's verification exploits.
    pub fn resolve(&self, addr: SocketAddrV4, t: SimTime) -> Option<HostId> {
        let ip = *addr.ip();
        if let Some(&host) = self.static_by_ip.get(&ip) {
            let s = self.session(host, t)?;
            return (s.port == addr.port()).then_some(host);
        }
        if let Some(gateway) = self.universe.nat_at(ip) {
            for &user in &gateway.users {
                if !self.universe.host(user).behavior.bittorrent {
                    continue;
                }
                if let Some(s) = self.session(user, t) {
                    if s.port == addr.port() {
                        return Some(user);
                    }
                }
            }
            return None;
        }
        // Dynamic space: only the current holder answers.
        let holder = self.alloc.holder_of(ip, t)?;
        if !self.universe.host(holder).behavior.bittorrent {
            return None;
        }
        let s = self.session(holder, t)?;
        (s.port == addr.port()).then_some(holder)
    }

    /// Sample up to `n` neighbour entries as a `find_node` response would
    /// carry them: a mix of fresh and stale observations of other peers.
    ///
    /// Staleness matters: an entry may reference a port its host no longer
    /// listens on — the source of the paper's same-IP-many-ports ambiguity.
    pub fn sample_neighbors<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t: SimTime,
        n: usize,
        staleness_mean: SimDuration,
    ) -> Vec<NodeInfo> {
        let mut out = Vec::with_capacity(n);
        if self.bt_hosts.is_empty() {
            return out;
        }
        // Each attempted entry picks a random peer and a random observation
        // age; offline-at-observation peers yield nothing (real tables also
        // return dead entries, but those add noise without changing the
        // detection problem).
        for _ in 0..(n * 3) {
            if out.len() >= n {
                break;
            }
            let host = self.bt_hosts[rng.gen_range(0..self.bt_hosts.len())];
            let age_secs =
                ar_simnet::stats::sample_exponential(rng, staleness_mean.as_secs() as f64);
            let t_obs = SimTime(
                t.as_secs()
                    .saturating_sub(age_secs as u64)
                    .max(self.window.start.as_secs()),
            );
            let (Some(session), Some(ip)) = (
                self.session(host, t_obs),
                self.alloc.public_ip(self.universe, host, t_obs),
            ) else {
                continue;
            };
            out.push(NodeInfo {
                id: session.node_id,
                addr: SocketAddrV4::new(ip, session.port),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::alloc::InterestSet;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::time::PERIOD_1;

    struct Fixture {
        universe: Universe,
        alloc: AllocationPlan,
    }

    impl Fixture {
        fn new() -> Self {
            let universe = Universe::generate(Seed(31), &UniverseConfig::tiny());
            let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
            Fixture { universe, alloc }
        }
        fn pop(&self) -> DhtPopulation<'_> {
            DhtPopulation::new(&self.universe, &self.alloc, PopulationParams::default())
        }
    }

    fn mid() -> SimTime {
        PERIOD_1.start + SimDuration::from_days(10)
    }

    #[test]
    fn sessions_are_deterministic() {
        let fx = Fixture::new();
        let pop = fx.pop();
        for &h in pop.bt_hosts().iter().take(200) {
            assert_eq!(pop.session(h, mid()), pop.session(h, mid()));
        }
    }

    #[test]
    fn endpoint_resolves_back_to_host() {
        let fx = Fixture::new();
        let pop = fx.pop();
        let mut resolved = 0;
        let mut checked = 0;
        for &h in pop.bt_hosts() {
            if let Some(ep) = pop.endpoint(h, mid()) {
                checked += 1;
                let got = pop.resolve(ep, mid());
                // NAT users may share... never a port, so resolution must be
                // exact; dynamic/static likewise.
                if got == Some(h) {
                    resolved += 1;
                }
            }
        }
        assert!(checked > 50, "too few online hosts: {checked}");
        // Port collisions behind one NAT are theoretically possible but
        // vanishingly rare; demand exactness.
        assert_eq!(resolved, checked);
    }

    #[test]
    fn reboots_change_node_id_and_nat_port() {
        let fx = Fixture::new();
        let pop = fx.pop();
        // Across the whole window, a host should show >1 node_id (reboots)
        // at least for some hosts.
        let mut id_changes = 0;
        let mut port_changes_nat = 0;
        for &h in pop.bt_hosts().iter().take(400) {
            let mut ids = std::collections::HashSet::new();
            let mut ports = std::collections::HashSet::new();
            let mut t = PERIOD_1.start;
            while t < PERIOD_1.end {
                if let Some(s) = pop.session(h, t) {
                    ids.insert(s.node_id);
                    ports.insert(s.port);
                }
                t += SimDuration::from_hours(6);
            }
            if ids.len() > 1 {
                id_changes += 1;
            }
            if ports.len() > 1
                && matches!(fx.universe.host(h).attachment, Attachment::NatUser { .. })
            {
                port_changes_nat += 1;
            }
        }
        assert!(id_changes > 50, "reboots regenerate node ids: {id_changes}");
        assert!(port_changes_nat > 0, "NAT rebinding changes public ports");
    }

    #[test]
    fn offline_hosts_have_no_endpoint() {
        let fx = Fixture::new();
        let pop = fx.pop();
        let mut offline_seen = false;
        for &h in pop.bt_hosts().iter().take(300) {
            if pop.session(h, mid()).is_none() {
                offline_seen = true;
                assert_eq!(pop.endpoint(h, mid()), None);
            }
        }
        assert!(offline_seen, "some hosts should be offline at any instant");
    }

    #[test]
    fn neighbors_are_plausible() {
        let fx = Fixture::new();
        let pop = fx.pop();
        let mut rng = Seed(99).rng();
        let neighbors = pop.sample_neighbors(&mut rng, mid(), 8, SimDuration::from_hours(2));
        assert!(!neighbors.is_empty());
        assert!(neighbors.len() <= 8);
        for n in &neighbors {
            // Every advertised IP is announced address space.
            assert!(fx.universe.asn_of(*n.addr.ip()).is_some());
            assert!(n.addr.port() >= 1025);
        }
    }

    #[test]
    fn stale_neighbors_can_reference_dead_ports() {
        let fx = Fixture::new();
        let pop = fx.pop();
        let mut rng = Seed(7).rng();
        let t = PERIOD_1.start + SimDuration::from_days(30);
        let mut stale = 0;
        let mut total = 0;
        for _ in 0..200 {
            for n in pop.sample_neighbors(&mut rng, t, 8, SimDuration::from_days(4)) {
                total += 1;
                if pop.resolve(n.addr, t).is_none() {
                    stale += 1;
                }
            }
        }
        assert!(total > 500);
        assert!(
            stale > total / 20,
            "heavily aged observations should often be stale: {stale}/{total}"
        );
    }
}
