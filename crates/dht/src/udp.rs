//! A real (blocking std-UDP) Mainline DHT node.
//!
//! The simulation is the substrate for the paper's experiments, but the
//! protocol stack is real: this module runs an actual KRPC node on a UDP
//! socket — enough to bootstrap small private swarms on loopback, which the
//! `live_dht_demo` example and the cross-crate integration tests use to
//! prove the codec and crawler logic work over genuine datagrams.
//!
//! Threads + blocking sockets are deliberate: the node serves one datagram
//! at a time, state fits in one mutex, and determinism matters more than
//! concurrency here (see DESIGN.md on why no async runtime).

use crate::node_id::NodeId;
use crate::routing::{Contact, RoutingTable};
use crate::wire::{KrpcError, Message, MessageBody, Query, Response};
use parking_lot::Mutex;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum KRPC datagram we accept (BEP-5 practice keeps them well below
/// typical MTUs).
pub const MAX_DATAGRAM: usize = 2048;

/// Shared state of a running node.
struct NodeState {
    table: Mutex<RoutingTable>,
    /// info_hash → announced peers (BEP-5 peer storage).
    peers: Mutex<std::collections::HashMap<[u8; 20], Vec<SocketAddrV4>>>,
    queries_served: AtomicU64,
    running: AtomicBool,
}

/// Opaque write token: a keyed digest of the requester's IP, as BEP-5
/// prescribes ("the token … is the SHA1 hash of the IP address concatenated
/// onto a secret"; the digest here is non-cryptographic, the *protocol
/// flow* is what matters for the reproduction).
fn token_for(ip: &Ipv4Addr, secret: u64) -> [u8; 8] {
    let mut x = u64::from(u32::from(*ip)) ^ secret ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)).to_be_bytes()
}

/// Per-process token secret (stable for a node's lifetime).
const TOKEN_SECRET: u64 = 0xA17C_E5EC_0DE5_EED5;

/// Handle to a spawned DHT node.
pub struct DhtNode {
    id: NodeId,
    addr: SocketAddrV4,
    state: Arc<NodeState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl DhtNode {
    /// Bind and start serving on `bind_addr` (use port 0 for an ephemeral
    /// port). Returns once the service thread is running.
    pub fn spawn(id: NodeId, bind_addr: SocketAddrV4) -> io::Result<DhtNode> {
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let local = match socket.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => {
                return Err(io::Error::other("IPv4 only"));
            }
        };
        let state = Arc::new(NodeState {
            table: Mutex::new(RoutingTable::new(id)),
            peers: Mutex::new(std::collections::HashMap::new()),
            queries_served: AtomicU64::new(0),
            running: AtomicBool::new(true),
        });
        let thread_state = Arc::clone(&state);
        let thread = std::thread::Builder::new()
            .name(format!("dht-{local}"))
            .spawn(move || serve(socket, id, thread_state))?;
        Ok(DhtNode {
            id,
            addr: local,
            state,
            thread: Some(thread),
        })
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn addr(&self) -> SocketAddrV4 {
        self.addr
    }

    pub fn queries_served(&self) -> u64 {
        self.state.queries_served.load(Ordering::Relaxed)
    }

    /// Seed the node's routing table.
    pub fn add_contact(&self, id: NodeId, addr: SocketAddrV4) {
        self.state.table.lock().insert(Contact::new(id, addr));
    }

    pub fn routing_len(&self) -> usize {
        self.state.table.lock().len()
    }

    /// Stop the service thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.running.store(false, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DhtNode {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(socket: UdpSocket, own_id: NodeId, state: Arc<NodeState>) {
    let mut buf = [0u8; MAX_DATAGRAM];
    while state.running.load(Ordering::SeqCst) {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let SocketAddr::V4(peer) = peer else { continue };
        let reply = match Message::decode(&buf[..len]) {
            Ok(msg) => handle(&msg, peer, own_id, &state),
            Err(_) => Some(Message {
                transaction: bytes::Bytes::from_static(b"??"),
                version: None,
                body: MessageBody::Error(KrpcError {
                    code: KrpcError::PROTOCOL,
                    message: "Protocol Error".into(),
                }),
            }),
        };
        if let Some(reply) = reply {
            let _ = socket.send_to(&reply.encode(), peer);
        }
    }
}

fn handle(msg: &Message, peer: SocketAddrV4, own_id: NodeId, state: &NodeState) -> Option<Message> {
    let MessageBody::Query(ref q) = msg.body else {
        // Responses/errors to us: a full client would match transactions;
        // the server half just learns the contact.
        return None;
    };
    state.queries_served.fetch_add(1, Ordering::Relaxed);
    // Every valid query teaches us a live contact (Kademlia's passive
    // table maintenance).
    state.table.lock().insert(Contact::new(q.sender_id(), peer));

    let response = match q {
        Query::Ping { .. } => Response::pong(own_id),
        Query::FindNode { target, .. } => {
            let nodes = state.table.lock().closest_nodes(target, 8);
            Response::found_nodes(own_id, nodes)
        }
        Query::GetPeers { info_hash, .. } => {
            // Known peers win; otherwise fall back to closest nodes.
            let values = state.peers.lock().get(info_hash).cloned();
            let nodes = if values.is_none() {
                Some(state.table.lock().closest_nodes(&NodeId(*info_hash), 8))
            } else {
                None
            };
            Response {
                id: Some(own_id),
                nodes,
                token: Some(bytes::Bytes::copy_from_slice(&token_for(
                    peer.ip(),
                    TOKEN_SECRET,
                ))),
                values,
            }
        }
        Query::AnnouncePeer {
            info_hash,
            port,
            token,
            implied_port,
            ..
        } => {
            // BEP-5: the token must be the one we handed this IP.
            if token.as_ref() != token_for(peer.ip(), TOKEN_SECRET) {
                return Some(Message {
                    transaction: msg.transaction.clone(),
                    version: None,
                    body: MessageBody::Error(KrpcError {
                        code: KrpcError::PROTOCOL,
                        message: "Bad token".into(),
                    }),
                });
            }
            let peer_port = if *implied_port { peer.port() } else { *port };
            let addr = SocketAddrV4::new(*peer.ip(), peer_port);
            let mut peers = state.peers.lock();
            let swarm = peers.entry(*info_hash).or_default();
            if !swarm.contains(&addr) {
                swarm.push(addr);
            }
            Response::pong(own_id)
        }
    };
    Some(Message::response(&msg.transaction[..], response).with_version(*b"AR\x00\x01"))
}

/// Real-socket [`crate::sim::KrpcTransport`]: lets the §3.1 crawler run
/// against an actual DHT (a loopback swarm in tests; the live network in a
/// deployment). Virtual time passes through untouched — pacing real crawls
/// is the engine's rate limiter's job, while each query here blocks for at
/// most `timeout`.
pub struct UdpKrpc {
    /// Seed endpoints handed out by `bootstrap` (a real deployment would
    /// resolve `router.bittorrent.com:6881` and friends).
    pub bootstrap_peers: Vec<SocketAddrV4>,
    pub timeout: Duration,
}

impl crate::sim::KrpcTransport for UdpKrpc {
    fn bootstrap(&mut self, _now: ar_simnet::time::SimTime, n: usize) -> Vec<SocketAddrV4> {
        self.bootstrap_peers
            .iter()
            .copied()
            .take(n.max(1))
            .collect()
    }

    fn query(
        &mut self,
        now: ar_simnet::time::SimTime,
        dst: SocketAddrV4,
        msg: &Message,
    ) -> Option<crate::sim::Delivered> {
        let reply = query_once(dst, msg, self.timeout).ok()?;
        Some(crate::sim::Delivered {
            // Wall-clock latency is irrelevant to the analysis; stamp the
            // reply just after the virtual send instant.
            at: now + ar_simnet::time::SimDuration(1),
            from: dst,
            message: reply,
        })
    }
}

/// Fire one query at `dst` from an ephemeral socket and wait for the reply.
pub fn query_once(dst: SocketAddrV4, msg: &Message, timeout: Duration) -> io::Result<Message> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(timeout))?;
    socket.send_to(&msg.encode(), dst)?;
    let mut buf = [0u8; MAX_DATAGRAM];
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let (len, from) = socket.recv_from(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(io::ErrorKind::TimedOut, "no reply within timeout")
            } else {
                e
            }
        })?;
        if from != SocketAddr::V4(dst) {
            if std::time::Instant::now() > deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "no reply"));
            }
            continue;
        }
        return Message::decode(&buf[..len])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn loopback() -> SocketAddrV4 {
        "127.0.0.1:0".parse().unwrap()
    }

    fn ids(n: usize) -> Vec<NodeId> {
        let mut rng = SmallRng::seed_from_u64(9);
        (0..n).map(|_| NodeId::random(&mut rng)).collect()
    }

    #[test]
    fn ping_over_real_udp() {
        let ids = ids(2);
        let node = DhtNode::spawn(ids[0], loopback()).unwrap();
        let reply = query_once(
            node.addr(),
            &Message::query(b"q1", Query::Ping { id: ids[1] }),
            Duration::from_secs(2),
        )
        .unwrap();
        match reply.body {
            MessageBody::Response(r) => assert_eq!(r.id, Some(ids[0])),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reply.transaction.as_ref(), b"q1");
        assert_eq!(node.queries_served(), 1);
        node.shutdown();
    }

    #[test]
    fn find_node_walks_between_real_nodes() {
        let ids = ids(4);
        let a = DhtNode::spawn(ids[0], loopback()).unwrap();
        let b = DhtNode::spawn(ids[1], loopback()).unwrap();
        let c = DhtNode::spawn(ids[2], loopback()).unwrap();
        // a knows b and c.
        a.add_contact(b.id(), b.addr());
        a.add_contact(c.id(), c.addr());

        let reply = query_once(
            a.addr(),
            &Message::query(
                b"fn",
                Query::FindNode {
                    id: ids[3],
                    target: b.id(),
                },
            ),
            Duration::from_secs(2),
        )
        .unwrap();
        let MessageBody::Response(r) = reply.body else {
            panic!("expected response");
        };
        let nodes = r.nodes.unwrap();
        assert!(nodes.iter().any(|n| n.id == b.id() && n.addr == b.addr()));
        // Querying taught `a` about the querier? The querier used an
        // ephemeral socket, so at least b/c plus the sender are present.
        assert!(a.routing_len() >= 2);
    }

    #[test]
    fn announce_and_get_peers_full_cycle() {
        let ids = ids(3);
        let node = DhtNode::spawn(ids[0], loopback()).unwrap();
        let info_hash = [0x5A; 20];

        // 1. get_peers before any announce: nodes + token, no values.
        let reply = query_once(
            node.addr(),
            &Message::query(
                b"g1",
                Query::GetPeers {
                    id: ids[1],
                    info_hash,
                },
            ),
            Duration::from_secs(2),
        )
        .unwrap();
        let MessageBody::Response(r) = reply.body else {
            panic!("expected response");
        };
        assert!(r.values.is_none());
        let token = r.token.expect("get_peers hands out a token");

        // 2. announce with a BAD token: protocol error, nothing stored.
        let bad = query_once(
            node.addr(),
            &Message::query(
                b"a0",
                Query::AnnouncePeer {
                    id: ids[1],
                    info_hash,
                    port: 7777,
                    token: bytes::Bytes::from_static(b"forged!!"),
                    implied_port: false,
                },
            ),
            Duration::from_secs(2),
        )
        .unwrap();
        assert!(matches!(bad.body, MessageBody::Error(_)));

        // 3. announce with the real token.
        let ok = query_once(
            node.addr(),
            &Message::query(
                b"a1",
                Query::AnnouncePeer {
                    id: ids[1],
                    info_hash,
                    port: 7777,
                    token: token.clone(),
                    implied_port: false,
                },
            ),
            Duration::from_secs(2),
        )
        .unwrap();
        assert!(matches!(ok.body, MessageBody::Response(_)));

        // 4. get_peers now returns the announced peer.
        let reply = query_once(
            node.addr(),
            &Message::query(
                b"g2",
                Query::GetPeers {
                    id: ids[2],
                    info_hash,
                },
            ),
            Duration::from_secs(2),
        )
        .unwrap();
        let MessageBody::Response(r) = reply.body else {
            panic!("expected response");
        };
        let values = r.values.expect("announced peers returned");
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].port(), 7777);
        node.shutdown();
    }

    #[test]
    fn malformed_datagrams_get_protocol_error() {
        let ids = ids(1);
        let node = DhtNode::spawn(ids[0], loopback()).unwrap();
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket.send_to(b"this is not bencode", node.addr()).unwrap();
        let mut buf = [0u8; MAX_DATAGRAM];
        let (len, _) = socket.recv_from(&mut buf).unwrap();
        let reply = Message::decode(&buf[..len]).unwrap();
        match reply.body {
            MessageBody::Error(e) => assert_eq!(e.code, KrpcError::PROTOCOL),
            other => panic!("unexpected {other:?}"),
        }
    }
}
