//! Kademlia-style k-bucket routing table (BEP-5).
//!
//! The crawler itself keeps a flat frontier (it wants *every* node, not the
//! closest ones), but a conforming DHT *node* — like the UDP demo node and
//! the simulated peers' neighbour model — maintains this table: 160
//! buckets of up to `k` good contacts, evicting the least-recently-seen
//! contact only when it stops responding.

use crate::node_id::NodeId;
use crate::wire::NodeInfo;
use std::net::SocketAddrV4;

/// Standard Mainline bucket capacity.
pub const K: usize = 8;

/// A contact in the routing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    pub id: NodeId,
    pub addr: SocketAddrV4,
    /// Consecutive failed queries (contact is "bad" at 2+).
    pub failures: u8,
}

impl Contact {
    pub fn new(id: NodeId, addr: SocketAddrV4) -> Self {
        Contact {
            id,
            addr,
            failures: 0,
        }
    }

    pub fn is_good(&self) -> bool {
        self.failures < 2
    }
}

/// Outcome of inserting a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New contact stored.
    Added,
    /// Contact already present; freshness updated.
    Refreshed,
    /// Bucket full of good contacts; new contact dropped.
    BucketFull,
    /// A bad contact was evicted to make room.
    ReplacedBad,
    /// Own ID is never stored.
    SelfId,
}

/// Fixed-depth routing table: bucket `i` holds contacts whose XOR distance
/// from `own_id` has its highest set bit at position `i`.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    own_id: NodeId,
    buckets: Vec<Vec<Contact>>,
    k: usize,
}

impl RoutingTable {
    pub fn new(own_id: NodeId) -> Self {
        Self::with_k(own_id, K)
    }

    pub fn with_k(own_id: NodeId, k: usize) -> Self {
        assert!(k > 0);
        RoutingTable {
            own_id,
            buckets: vec![Vec::new(); NodeId::BITS],
            k,
        }
    }

    pub fn own_id(&self) -> NodeId {
        self.own_id
    }

    /// Total stored contacts.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or refresh a contact (most-recently-seen goes to the back of
    /// its bucket, Kademlia style).
    pub fn insert(&mut self, contact: Contact) -> InsertOutcome {
        let Some(idx) = self.own_id.bucket_index(&contact.id) else {
            return InsertOutcome::SelfId;
        };
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|c| c.id == contact.id) {
            let mut existing = bucket.remove(pos);
            existing.addr = contact.addr;
            existing.failures = 0;
            bucket.push(existing);
            return InsertOutcome::Refreshed;
        }
        if bucket.len() < self.k {
            bucket.push(contact);
            return InsertOutcome::Added;
        }
        // Full: evict the least-recently-seen bad contact, if any.
        if let Some(pos) = bucket.iter().position(|c| !c.is_good()) {
            bucket.remove(pos);
            bucket.push(contact);
            return InsertOutcome::ReplacedBad;
        }
        InsertOutcome::BucketFull
    }

    /// Record a failed query to `id`.
    pub fn note_failure(&mut self, id: &NodeId) {
        if let Some(idx) = self.own_id.bucket_index(id) {
            if let Some(c) = self.buckets[idx].iter_mut().find(|c| c.id == *id) {
                c.failures = c.failures.saturating_add(1);
            }
        }
    }

    /// Record a successful response from `id`.
    pub fn note_success(&mut self, id: &NodeId) {
        if let Some(idx) = self.own_id.bucket_index(id) {
            let bucket = &mut self.buckets[idx];
            if let Some(pos) = bucket.iter().position(|c| c.id == *id) {
                let mut c = bucket.remove(pos);
                c.failures = 0;
                bucket.push(c);
            }
        }
    }

    /// The `n` good contacts closest to `target` by XOR distance.
    pub fn closest(&self, target: &NodeId, n: usize) -> Vec<Contact> {
        let mut all: Vec<Contact> = self
            .buckets
            .iter()
            .flatten()
            .filter(|c| c.is_good())
            .copied()
            .collect();
        all.sort_by_key(|c| c.id.distance(target));
        all.truncate(n);
        all
    }

    /// Closest contacts in compact `NodeInfo` form (for find_node replies).
    pub fn closest_nodes(&self, target: &NodeId, n: usize) -> Vec<NodeInfo> {
        self.closest(target, n)
            .into_iter()
            .map(|c| NodeInfo {
                id: c.id,
                addr: c.addr,
            })
            .collect()
    }

    /// Iterate every contact (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Contact> {
        self.buckets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::net::Ipv4Addr;

    fn addr(n: u16) -> SocketAddrV4 {
        SocketAddrV4::new(Ipv4Addr::new(10, 0, (n >> 8) as u8, n as u8), 6881)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn insert_and_refresh() {
        let mut rng = rng();
        let own = NodeId::random(&mut rng);
        let mut table = RoutingTable::new(own);
        let id = NodeId::random(&mut rng);
        assert_eq!(
            table.insert(Contact::new(id, addr(1))),
            InsertOutcome::Added
        );
        assert_eq!(
            table.insert(Contact::new(id, addr(2))),
            InsertOutcome::Refreshed
        );
        assert_eq!(table.len(), 1);
        // Refresh updated the address.
        assert_eq!(table.iter().next().unwrap().addr, addr(2));
        assert_eq!(
            table.insert(Contact::new(own, addr(3))),
            InsertOutcome::SelfId
        );
    }

    #[test]
    fn bucket_eviction_prefers_bad_contacts() {
        let own = NodeId([0u8; 20]);
        let mut table = RoutingTable::with_k(own, 2);
        // Two ids in the same (top) bucket.
        let mut a = [0u8; 20];
        a[0] = 0x80;
        let mut b = [0u8; 20];
        b[0] = 0x81;
        let mut c = [0u8; 20];
        c[0] = 0x82;
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        table.insert(Contact::new(a, addr(1)));
        table.insert(Contact::new(b, addr(2)));
        assert_eq!(
            table.insert(Contact::new(c, addr(3))),
            InsertOutcome::BucketFull
        );
        // Make `a` bad; now c replaces it.
        table.note_failure(&a);
        table.note_failure(&a);
        assert_eq!(
            table.insert(Contact::new(c, addr(3))),
            InsertOutcome::ReplacedBad
        );
        assert!(table.iter().all(|x| x.id != a));
    }

    #[test]
    fn closest_returns_sorted_good_contacts() {
        let mut rng = rng();
        let own = NodeId::random(&mut rng);
        let mut table = RoutingTable::new(own);
        let mut port = 0;
        for _ in 0..200 {
            port += 1;
            table.insert(Contact::new(NodeId::random(&mut rng), addr(port)));
        }
        let target = NodeId::random(&mut rng);
        let closest = table.closest(&target, 8);
        assert_eq!(closest.len(), 8);
        for w in closest.windows(2) {
            assert!(w[0].id.distance(&target) <= w[1].id.distance(&target));
        }
        // And they are at least as close as any other stored contact.
        let worst = closest.last().unwrap().id.distance(&target);
        for c in table.iter() {
            if !closest.iter().any(|x| x.id == c.id) {
                assert!(c.id.distance(&target) >= worst);
            }
        }
    }

    #[test]
    fn failures_hide_contacts_from_lookups() {
        let mut rng = rng();
        let own = NodeId::random(&mut rng);
        let mut table = RoutingTable::new(own);
        let id = NodeId::random(&mut rng);
        table.insert(Contact::new(id, addr(1)));
        table.note_failure(&id);
        table.note_failure(&id);
        assert!(table.closest(&id, 8).is_empty());
        table.note_success(&id);
        assert_eq!(table.closest(&id, 8).len(), 1);
    }

    #[test]
    fn random_fill_respects_capacity() {
        let mut rng = rng();
        let own = NodeId::random(&mut rng);
        let mut table = RoutingTable::new(own);
        for _ in 0..10_000 {
            let _ = table.insert(Contact::new(NodeId::random(&mut rng), addr(rng.gen())));
        }
        for (i, bucket) in table.buckets.iter().enumerate() {
            assert!(bucket.len() <= K, "bucket {i} over capacity");
        }
        // High buckets should be full; low buckets almost certainly empty.
        assert_eq!(table.buckets[159].len(), K);
        assert_eq!(table.buckets[0].len(), 0);
    }
}
