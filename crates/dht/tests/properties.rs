//! Property tests for the DHT protocol layer.

use ar_dht::{Contact, Message, NodeId, NodeInfo, Query, Response, RoutingTable, K};
use bytes::Bytes;
use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddrV4};

fn arb_node_id() -> impl Strategy<Value = NodeId> {
    proptest::array::uniform20(any::<u8>()).prop_map(NodeId)
}

fn arb_addr() -> impl Strategy<Value = SocketAddrV4> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| SocketAddrV4::new(Ipv4Addr::from(ip), port))
}

fn arb_node_info() -> impl Strategy<Value = NodeInfo> {
    (arb_node_id(), arb_addr()).prop_map(|(id, addr)| NodeInfo { id, addr })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        arb_node_id().prop_map(|id| Query::Ping { id }),
        (arb_node_id(), arb_node_id()).prop_map(|(id, target)| Query::FindNode { id, target }),
        (arb_node_id(), proptest::array::uniform20(any::<u8>()))
            .prop_map(|(id, info_hash)| Query::GetPeers { id, info_hash }),
        (
            arb_node_id(),
            proptest::array::uniform20(any::<u8>()),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            any::<bool>()
        )
            .prop_map(
                |(id, info_hash, port, token, implied_port)| Query::AnnouncePeer {
                    id,
                    info_hash,
                    port,
                    token: Bytes::from(token),
                    implied_port,
                }
            ),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        proptest::option::of(arb_node_id()),
        proptest::option::of(proptest::collection::vec(arb_node_info(), 0..9)),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..12)),
        proptest::option::of(proptest::collection::vec(arb_addr(), 0..6)),
    )
        .prop_map(|(id, nodes, token, values)| Response {
            id,
            nodes,
            token: token.map(Bytes::from),
            values,
        })
}

proptest! {
    /// Every query round-trips the wire byte-exactly.
    #[test]
    fn query_roundtrip(tx in proptest::collection::vec(any::<u8>(), 1..5), q in arb_query()) {
        let msg = Message::query(&tx, q);
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Every response round-trips the wire.
    #[test]
    fn response_roundtrip(
        tx in proptest::collection::vec(any::<u8>(), 1..5),
        r in arb_response(),
        v in proptest::option::of(proptest::array::uniform4(any::<u8>())),
    ) {
        let mut msg = Message::response(&tx, r);
        if let Some(version) = v {
            msg = msg.with_version(version);
        }
        let back = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Compact node lists round-trip and have the exact wire length.
    #[test]
    fn compact_roundtrip(nodes in proptest::collection::vec(arb_node_info(), 0..64)) {
        let raw = NodeInfo::encode_list(&nodes);
        prop_assert_eq!(raw.len(), nodes.len() * NodeInfo::WIRE_LEN);
        prop_assert_eq!(NodeInfo::decode_list(&raw).unwrap(), nodes);
    }

    /// The message decoder is total (never panics) on arbitrary bytes.
    #[test]
    fn decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(&bytes);
    }

    /// XOR distance: symmetry, identity, and the triangle property of the
    /// XOR metric (d(a,c) <= d(a,b) XOR... actually d(a,c) = d(a,b) ^ d(b,c)).
    #[test]
    fn xor_metric(a in arb_node_id(), b in arb_node_id(), c in arb_node_id()) {
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert_eq!(a.distance(&a).leading_zeros(), 160);
        // XOR identity: d(a,c) == d(a,b) ⊕ d(b,c) byte-wise.
        let ab = a.distance(&b).0;
        let bc = b.distance(&c).0;
        let ac = a.distance(&c).0;
        for i in 0..20 {
            prop_assert_eq!(ac[i], ab[i] ^ bc[i]);
        }
    }

    /// Routing tables never exceed K per bucket and closest() is sorted.
    #[test]
    fn routing_invariants(
        own in arb_node_id(),
        contacts in proptest::collection::vec((arb_node_id(), arb_addr()), 1..300),
        target in arb_node_id(),
    ) {
        let mut table = RoutingTable::new(own);
        for (id, addr) in &contacts {
            table.insert(Contact::new(*id, *addr));
        }
        prop_assert!(table.len() <= contacts.len());
        let closest = table.closest(&target, K);
        prop_assert!(closest.len() <= K);
        for w in closest.windows(2) {
            prop_assert!(w[0].id.distance(&target) <= w[1].id.distance(&target));
        }
        // Own id never stored.
        prop_assert!(table.iter().all(|ct| ct.id != own));
    }
}
