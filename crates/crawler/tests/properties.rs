//! Property tests for the crawler's classification rule.

use ar_crawler::{IpClass, IpObservation, Sighting};
use ar_dht::NodeId;
use ar_simnet::time::SimTime;
use proptest::prelude::*;

fn id(n: u8) -> NodeId {
    NodeId([n; 20])
}

proptest! {
    /// The paper's rule, characterised: a round confirms NAT iff it has at
    /// least two responders with distinct ports AND distinct node_ids.
    #[test]
    fn round_rule_characterisation(
        responders in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12)
    ) {
        let pairs: Vec<(u16, NodeId)> =
            responders.iter().map(|&(p, n)| (p, id(n))).collect();
        let mut obs = IpObservation::default();
        let confirmed = obs.apply_round(SimTime(1), &pairs);

        let ports: std::collections::HashSet<u16> =
            pairs.iter().map(|(p, _)| *p).collect();
        let ids: std::collections::HashSet<NodeId> =
            pairs.iter().map(|(_, n)| *n).collect();
        let expected = pairs.len() >= 2 && ports.len() >= 2 && ids.len() >= 2;
        prop_assert_eq!(confirmed, expected);
        prop_assert_eq!(obs.nat.is_some(), expected);
        if let Some(e) = obs.nat {
            prop_assert!(e.max_simultaneous_users >= 2);
            prop_assert!(e.max_simultaneous_users as usize <= ports.len().min(ids.len()));
        }
    }

    /// The user lower bound never decreases across rounds and equals the
    /// best round's distinct-pair count.
    #[test]
    fn user_bound_is_running_max(rounds in proptest::collection::vec(
        proptest::collection::vec((any::<u16>(), any::<u8>()), 0..10), 1..8)
    ) {
        let mut obs = IpObservation::default();
        let mut best = 0u32;
        let mut prev_bound = 0u32;
        for (i, round) in rounds.iter().enumerate() {
            let pairs: Vec<(u16, NodeId)> = round.iter().map(|&(p, n)| (p, id(n))).collect();
            let ports: std::collections::HashSet<u16> = pairs.iter().map(|(p, _)| *p).collect();
            let ids: std::collections::HashSet<NodeId> = pairs.iter().map(|(_, n)| *n).collect();
            if pairs.len() >= 2 && ports.len() >= 2 && ids.len() >= 2 {
                best = best.max(ports.len().min(ids.len()) as u32);
            }
            obs.apply_round(SimTime(i as u64), &pairs);
            let bound = obs.nat.map_or(0, |e| e.max_simultaneous_users);
            prop_assert!(bound >= prev_bound, "bound regressed");
            prev_bound = bound;
        }
        prop_assert_eq!(prev_bound, best);
    }

    /// Recording sightings never produces a NAT verdict by itself, no
    /// matter how many ports/ids are seen (only responses in a round can).
    #[test]
    fn sightings_alone_never_confirm(
        sightings in proptest::collection::vec((any::<u16>(), any::<u8>(), 0u64..1000), 0..50)
    ) {
        let mut obs = IpObservation::default();
        for &(port, n, t) in &sightings {
            obs.record(port, id(n), SimTime(t), Sighting::Advertised);
        }
        prop_assert!(obs.nat.is_none());
        let class = obs.class();
        if sightings.iter().map(|(p, _, _)| p).collect::<std::collections::HashSet<_>>().len() >= 2 {
            prop_assert_eq!(class, IpClass::MultiPortUnconfirmed);
        } else {
            prop_assert_ne!(class, IpClass::Natted);
        }
    }
}
