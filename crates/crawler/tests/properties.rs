//! Property tests for the crawler's classification rule and the
//! checkpoint/resume machinery.

use ar_crawler::{
    crawl, crawl_until, resume, CrawlConfig, CrawlReport, IpClass, IpObservation, Sighting,
};
use ar_dht::{NodeId, SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;
use ar_simnet::time::{date, SimDuration, SimTime, TimeWindow};
use ar_simnet::universe::Universe;
use proptest::prelude::*;

fn id(n: u8) -> NodeId {
    NodeId([n; 20])
}

proptest! {
    /// The paper's rule, characterised: a round confirms NAT iff it has at
    /// least two responders with distinct ports AND distinct node_ids.
    #[test]
    fn round_rule_characterisation(
        responders in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12)
    ) {
        let pairs: Vec<(u16, NodeId)> =
            responders.iter().map(|&(p, n)| (p, id(n))).collect();
        let mut obs = IpObservation::default();
        let confirmed = obs.apply_round(SimTime(1), &pairs);

        let ports: std::collections::HashSet<u16> =
            pairs.iter().map(|(p, _)| *p).collect();
        let ids: std::collections::HashSet<NodeId> =
            pairs.iter().map(|(_, n)| *n).collect();
        let expected = pairs.len() >= 2 && ports.len() >= 2 && ids.len() >= 2;
        prop_assert_eq!(confirmed, expected);
        prop_assert_eq!(obs.nat.is_some(), expected);
        if let Some(e) = obs.nat {
            prop_assert!(e.max_simultaneous_users >= 2);
            prop_assert!(e.max_simultaneous_users as usize <= ports.len().min(ids.len()));
        }
    }

    /// The user lower bound never decreases across rounds and equals the
    /// best round's distinct-pair count.
    #[test]
    fn user_bound_is_running_max(rounds in proptest::collection::vec(
        proptest::collection::vec((any::<u16>(), any::<u8>()), 0..10), 1..8)
    ) {
        let mut obs = IpObservation::default();
        let mut best = 0u32;
        let mut prev_bound = 0u32;
        for (i, round) in rounds.iter().enumerate() {
            let pairs: Vec<(u16, NodeId)> = round.iter().map(|&(p, n)| (p, id(n))).collect();
            let ports: std::collections::HashSet<u16> = pairs.iter().map(|(p, _)| *p).collect();
            let ids: std::collections::HashSet<NodeId> = pairs.iter().map(|(_, n)| *n).collect();
            if pairs.len() >= 2 && ports.len() >= 2 && ids.len() >= 2 {
                best = best.max(ports.len().min(ids.len()) as u32);
            }
            obs.apply_round(SimTime(i as u64), &pairs);
            let bound = obs.nat.map_or(0, |e| e.max_simultaneous_users);
            prop_assert!(bound >= prev_bound, "bound regressed");
            prev_bound = bound;
        }
        prop_assert_eq!(prev_bound, best);
    }

    /// Recording sightings never produces a NAT verdict by itself, no
    /// matter how many ports/ids are seen (only responses in a round can).
    #[test]
    fn sightings_alone_never_confirm(
        sightings in proptest::collection::vec((any::<u16>(), any::<u8>(), 0u64..1000), 0..50)
    ) {
        let mut obs = IpObservation::default();
        for &(port, n, t) in &sightings {
            obs.record(port, id(n), SimTime(t), Sighting::Advertised);
        }
        prop_assert!(obs.nat.is_none());
        let class = obs.class();
        if sightings.iter().map(|(p, _, _)| p).collect::<std::collections::HashSet<_>>().len() >= 2 {
            prop_assert_eq!(class, IpClass::MultiPortUnconfirmed);
        } else {
            prop_assert_ne!(class, IpClass::Natted);
        }
    }
}

/// Everything a crawl observed, in comparable form.
fn fingerprint(r: &CrawlReport) -> (u64, u64, u64, u64, u64, Vec<std::net::Ipv4Addr>, usize) {
    let mut natted: Vec<_> = r.natted_ips().collect();
    natted.sort();
    (
        r.stats.get_nodes_sent,
        r.stats.pings_sent,
        r.stats.replies_received,
        r.stats.unique_ips,
        r.stats.unique_node_ids,
        natted,
        r.bittorrent_ips().count(),
    )
}

proptest! {
    // Full crawls are expensive; a handful of (seed, boundary) cases keeps
    // this a seconds-scale test while still roaming the boundary space.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// An uninterrupted crawl and a crawl checkpointed at an arbitrary
    /// moment then resumed observe *exactly* the same world — under lossy
    /// network conditions, not just on a quiet fabric.
    #[test]
    fn checkpoint_boundary_never_changes_the_report(
        seed in 1u64..500,
        // Checkpoint anywhere inside the window, minute granularity.
        boundary_mins in 1u64..(3 * 24 * 60),
    ) {
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 6));
        let universe = Universe::generate(Seed(seed), &UniverseConfig::tiny());
        let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);
        let lossy = SimParams {
            query_loss: 0.25,
            reply_loss: 0.25,
            ..SimParams::default()
        };
        let config = CrawlConfig::new(window);

        let full = {
            let mut net = SimNetwork::new(&universe, &alloc, lossy.clone());
            crawl(&mut net, &config)
        };
        let split = {
            let mut net = SimNetwork::new(&universe, &alloc, lossy);
            let stop = window.start + SimDuration::from_mins(boundary_mins);
            let checkpoint = crawl_until(&mut net, &config, stop);
            resume(&mut net, &config, checkpoint)
        };
        prop_assert_eq!(fingerprint(&full), fingerprint(&split));
    }
}
