//! # ar-crawler — BitTorrent-DHT crawler for NATed-address detection
//!
//! Implements §3.1 of the paper: crawl the DHT with `get_nodes`, notice IPs
//! that surface with multiple ports, verify with hourly `bt_ping` rounds,
//! and classify an IP as NATed only when one round produces ≥ 2 responses
//! with distinct node_ids on distinct ports. The maximum number of
//! simultaneous responders is the paper's lower bound on users harmed by
//! blocklisting that IP (Figure 8).
//!
//! ```no_run
//! use ar_crawler::{crawl, CrawlConfig};
//! use ar_dht::{SimNetwork, SimParams};
//! use ar_simnet::alloc::{AllocationPlan, InterestSet};
//! use ar_simnet::{Seed, Universe, UniverseConfig, PERIOD_1};
//!
//! let universe = Universe::generate(Seed(1), &UniverseConfig::small());
//! let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
//! let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
//! let report = crawl(&mut net, &CrawlConfig::new(PERIOD_1));
//! println!("NATed IPs found: {}", report.stats.natted_ips);
//! ```

pub mod config;
pub mod engine;
pub mod log;
pub mod observations;
pub mod report;
pub mod shard;

pub use config::{CrawlConfig, RetryPolicy, Scope};
pub use engine::{
    crawl, crawl_until, resume, resume_until, CrawlCheckpoint, CrawlReport, CrawlStats,
};
pub use log::{Direction, MessageKind, MessageLog, MessageRecord};
pub use observations::{IpClass, IpObservation, NatEvidence, PortRecord, Sighting};
pub use report::render_crawl_report;
pub use shard::crawl_sharded;

#[cfg(test)]
mod tests {
    use super::*;
    use ar_dht::{SimNetwork, SimParams};
    use ar_simnet::alloc::{AllocationPlan, InterestSet};
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::ip::Prefix24;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::{date, TimeWindow, PERIOD_1};
    use ar_simnet::universe::Universe;

    struct Fx {
        universe: Universe,
        alloc: AllocationPlan,
    }

    impl Fx {
        fn new(seed: u64) -> Self {
            let universe = Universe::generate(Seed(seed), &UniverseConfig::tiny());
            let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
            Fx { universe, alloc }
        }
        fn net(&self) -> SimNetwork<'_> {
            SimNetwork::new(&self.universe, &self.alloc, SimParams::default())
        }
    }

    /// A one-week window keeps unit-test crawls quick.
    fn short_window() -> TimeWindow {
        TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10))
    }

    #[test]
    fn crawl_discovers_most_of_the_population() {
        let fx = Fx::new(101);
        let mut net = fx.net();
        let report = crawl(&mut net, &CrawlConfig::new(short_window()));
        let discovered = report.stats.unique_ips as f64;
        // Unique public IPs the BT population can occupy is at most the BT
        // host count; NATs compress it. Expect substantial coverage.
        let bt_hosts = fx.universe.bittorrent_hosts().count() as f64;
        assert!(
            discovered > bt_hosts * 0.3,
            "discovered {discovered} of {bt_hosts} BT hosts"
        );
        assert!(report.stats.get_nodes_sent > 0);
        assert!(report.stats.pings_sent > 0);
        assert!(report.stats.ping_rounds >= 7 * 24);
        // More node_ids than IPs (reboots, NAT sharing) — the 203M vs 48.7M
        // relationship from §4.
        assert!(report.stats.unique_node_ids >= report.stats.unique_ips);
    }

    #[test]
    fn nat_detection_has_perfect_precision_against_ground_truth() {
        let fx = Fx::new(102);
        let mut net = fx.net();
        let report = crawl(&mut net, &CrawlConfig::new(short_window()));
        let mut found = 0;
        for ip in report.natted_ips() {
            found += 1;
            assert!(
                fx.universe.is_truly_natted(ip),
                "false positive: {ip} flagged NATed but ground truth disagrees"
            );
        }
        assert!(found > 0, "tiny universe must yield some NAT detections");
    }

    #[test]
    fn user_bounds_never_exceed_ground_truth() {
        let fx = Fx::new(103);
        let mut net = fx.net();
        let report = crawl(&mut net, &CrawlConfig::new(short_window()));
        for ip in report.natted_ips() {
            let bound = report.user_lower_bound(ip).unwrap();
            let truth = fx.universe.true_nat_user_count(ip).unwrap() as u32;
            assert!(
                bound <= truth,
                "{ip}: detected {bound} users but only {truth} exist"
            );
            assert!(bound >= 2);
        }
    }

    #[test]
    fn scope_restricts_contact_but_not_sightings() {
        let fx = Fx::new(104);
        // Scope: first half of announced prefixes.
        let half: std::sync::Arc<ar_index::PrefixSet> = std::sync::Arc::new(
            fx.universe
                .prefixes
                .iter()
                .take(fx.universe.prefixes.len() / 2)
                .map(|r| r.prefix)
                .collect(),
        );
        let mut net = fx.net();
        let config = CrawlConfig::new(short_window()).with_scope(Scope::Prefixes(half.clone()));
        let report = crawl(&mut net, &config);
        // NAT verdicts only inside scope.
        for ip in report.natted_ips() {
            assert!(half.contains(Prefix24::of(ip)), "{ip} out of scope");
        }
        // But sightings may cover out-of-scope space (we just never contact
        // it).
        let out_of_scope_sighted = report
            .bittorrent_ips()
            .filter(|ip| !half.contains(Prefix24::of(*ip)))
            .count();
        assert!(out_of_scope_sighted > 0);
    }

    #[test]
    fn ping_verification_prevents_false_positives() {
        let fx = Fx::new(105);
        let mut net = fx.net();
        let report = crawl(&mut net, &CrawlConfig::new(short_window()));
        // Discovery-only candidates include port-churners; verified NATs
        // must be a subset.
        let discovery: std::collections::HashSet<_> =
            report.discovery_only_nat_candidates().collect();
        let verified: std::collections::HashSet<_> = report.natted_ips().collect();
        assert!(verified.is_subset(&discovery));
        // And discovery-only overcounts: some candidates are single-user
        // hosts whose port churned.
        let false_candidates = discovery
            .iter()
            .filter(|ip| !fx.universe.is_truly_natted(**ip))
            .count();
        assert!(
            false_candidates > 0,
            "expected discovery-only rule to overcount (it flagged {})",
            discovery.len()
        );
    }

    #[test]
    fn crawl_is_deterministic() {
        let fx = Fx::new(106);
        let r1 = crawl(&mut fx.net(), &CrawlConfig::new(short_window()));
        let r2 = crawl(&mut fx.net(), &CrawlConfig::new(short_window()));
        assert_eq!(r1.stats.get_nodes_sent, r2.stats.get_nodes_sent);
        assert_eq!(r1.stats.pings_sent, r2.stats.pings_sent);
        assert_eq!(r1.stats.unique_ips, r2.stats.unique_ips);
        let mut n1: Vec<_> = r1.natted_ips().collect();
        let mut n2: Vec<_> = r2.natted_ips().collect();
        n1.sort();
        n2.sort();
        assert_eq!(n1, n2);
    }

    #[test]
    fn adaptive_rate_backs_off_under_dead_air() {
        // Point the crawler at a universe through a lossy fabric: the AIMD
        // controller must shrink traffic relative to the fixed-rate crawl.
        let fx = Fx::new(112);
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 8));
        let lossy = ar_dht::SimParams {
            query_loss: 0.6,
            reply_loss: 0.6,
            ..ar_dht::SimParams::default()
        };

        let fixed = {
            let mut net = SimNetwork::new(&fx.universe, &fx.alloc, lossy.clone());
            crawl(&mut net, &CrawlConfig::new(window)).stats
        };
        let adaptive = {
            let mut net = SimNetwork::new(&fx.universe, &fx.alloc, lossy);
            let mut config = CrawlConfig::new(window);
            config.adaptive_rate = true;
            crawl(&mut net, &config).stats
        };
        // Dead air (<20% responses) must throttle discovery probing.
        let fixed_sent = fixed.get_nodes_sent;
        let adaptive_sent = adaptive.get_nodes_sent;
        assert!(
            (adaptive_sent as f64) < (fixed_sent as f64) * 0.8,
            "adaptive {adaptive_sent} vs fixed {fixed_sent}"
        );
        // It still makes progress.
        assert!(adaptive.unique_ips > 0);
    }

    #[test]
    fn client_versions_are_recorded_from_replies() {
        let fx = Fx::new(111);
        let mut net = fx.net();
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 5));
        let report = crawl(&mut net, &CrawlConfig::new(window));
        let with_version = report
            .observations
            .values()
            .flat_map(|o| o.ports.values())
            .filter(|p| p.version.is_some())
            .count();
        assert!(
            with_version > 50,
            "responding ports carry versions: {with_version}"
        );
        // Advertised-only ports have none.
        let advertised_only = report
            .observations
            .values()
            .flat_map(|o| o.ports.values())
            .filter(|p| !p.confirmed_live)
            .all(|p| p.version.is_none());
        assert!(advertised_only);
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_crawl() {
        let fx = Fx::new(110);
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 7));
        let config = CrawlConfig::new(window);

        // Uninterrupted reference.
        let full = {
            let mut net = fx.net();
            crawl(&mut net, &config)
        };

        // Split run over one network instance (the RNG stream continues
        // across the checkpoint, as it would for one long-lived process
        // serialising its state to disk).
        let resumed = {
            let mut net = fx.net();
            let stop = date(2019, 8, 5);
            let checkpoint = crawl_until(&mut net, &config, stop);
            assert_eq!(checkpoint.resume_at, stop);
            // Round-trip through serde, as a real checkpoint file would.
            let json = serde_json::to_string(&checkpoint).expect("checkpoint serialises");
            let restored: CrawlCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
            resume(&mut net, &config, restored)
        };

        assert_eq!(full.stats.get_nodes_sent, resumed.stats.get_nodes_sent);
        assert_eq!(full.stats.pings_sent, resumed.stats.pings_sent);
        assert_eq!(full.stats.unique_ips, resumed.stats.unique_ips);
        assert_eq!(full.stats.natted_ips, resumed.stats.natted_ips);
        let mut a: Vec<_> = full.natted_ips().collect();
        let mut b: Vec<_> = resumed.natted_ips().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn ping_round_interval_is_honoured() {
        let fx = Fx::new(109);
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 6));
        let hourly = {
            let mut net = fx.net();
            crawl(&mut net, &CrawlConfig::new(window)).stats
        };
        let four_hourly = {
            let mut net = fx.net();
            let mut config = CrawlConfig::new(window);
            config.ping_round_every = ar_simnet::time::SimDuration::from_hours(4);
            crawl(&mut net, &config).stats
        };
        assert_eq!(hourly.ping_rounds, 72);
        assert_eq!(four_hourly.ping_rounds, 18);
        assert!(four_hourly.pings_sent < hourly.pings_sent);
    }

    #[test]
    fn message_log_counters_match_stats() {
        let fx = Fx::new(108);
        let mut net = fx.net();
        let mut config = CrawlConfig::new(TimeWindow::new(date(2019, 8, 3), date(2019, 8, 5)));
        config.log_head = 50;
        config.log_tail = 50;
        let report = crawl(&mut net, &config);
        assert_eq!(
            report.log.sent,
            report.stats.get_nodes_sent + report.stats.pings_sent
        );
        assert_eq!(report.log.received, report.stats.replies_received);
        assert!(report.log.retained() <= 100);
        assert!(report.log.truncated(), "full crawls exceed retention");
        // Sent records are time-ordered (replies interleave at their
        // arrival times, which may trail the next send).
        let sent_times: Vec<_> = report
            .log
            .records()
            .filter(|r| r.direction == Direction::Sent)
            .map(|r| r.time)
            .collect();
        assert!(sent_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn response_rate_in_plausible_band() {
        let fx = Fx::new(107);
        let mut net = fx.net();
        let report = crawl(&mut net, &CrawlConfig::new(short_window()));
        let rate = report.stats.response_rate();
        // The paper measured 48.6%; the simulation should land in the same
        // region (offline hosts + stale ports + datagram loss).
        assert!(rate > 0.15 && rate < 0.85, "response rate {rate}");
    }
}
