//! Per-IP observation state and the NAT-classification rule.
//!
//! Paper §3.1: "To determine if more than one active BitTorrent users share
//! the same IP address at the same time, the crawler issues bt_ping's to
//! all discovered ports behind a given IP address, and waits for responses.
//! If the crawler gets more than two responses with two different node_id's
//! and two different port numbers, we conclude that the IP address is
//! shared by multiple BitTorrent users."

use ar_dht::NodeId;
use ar_simnet::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// How the crawler learned about an (ip, port, node_id) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sighting {
    /// Listed in somebody's get_nodes reply (possibly stale!).
    Advertised,
    /// The endpoint itself answered one of our queries (live).
    Responded,
}

/// What the crawler knows about one port of one IP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortRecord {
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    /// Last node_id observed on this port.
    pub last_node_id: NodeId,
    /// Whether the port ever answered us directly.
    pub confirmed_live: bool,
    /// Client version bytes from the last direct reply ("the BitTorrent
    /// version of the node", §3.1). None until the port answers.
    pub version: Option<[u8; 4]>,
}

/// Evidence that an IP hosts ≥ 2 simultaneous BitTorrent users.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NatEvidence {
    /// First verification round that confirmed the NAT.
    pub first_confirmed: SimTime,
    /// Maximum simultaneous distinct (port, node_id) responders observed in
    /// any single round — the paper's lower bound on affected users
    /// (Figure 8).
    pub max_simultaneous_users: u32,
    /// Number of rounds that re-confirmed the NAT.
    pub rounds_confirmed: u32,
}

/// All crawler knowledge about one IP address.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IpObservation {
    /// Ports ever associated with the IP, with freshness metadata.
    pub ports: BTreeMap<u16, PortRecord>,
    /// When the crawler last sent *anything* to this IP (cooldown basis).
    pub last_contact: Option<SimTime>,
    /// NAT verdict, once confirmed.
    pub nat: Option<NatEvidence>,
}

impl IpObservation {
    /// Record a sighting of (port, node_id) at `t`.
    pub fn record(&mut self, port: u16, node_id: NodeId, t: SimTime, sighting: Sighting) {
        self.record_with_version(port, node_id, t, sighting, None)
    }

    /// Record a sighting including the replying client's version bytes.
    pub fn record_with_version(
        &mut self,
        port: u16,
        node_id: NodeId,
        t: SimTime,
        sighting: Sighting,
        version: Option<[u8; 4]>,
    ) {
        let entry = self.ports.entry(port).or_insert(PortRecord {
            first_seen: t,
            last_seen: t,
            last_node_id: node_id,
            confirmed_live: false,
            version: None,
        });
        entry.last_seen = entry.last_seen.max(t);
        entry.last_node_id = node_id;
        if sighting == Sighting::Responded {
            entry.confirmed_live = true;
            if version.is_some() {
                entry.version = version;
            }
        }
    }

    /// Candidate for bt_ping verification: more than one known port.
    pub fn is_multiport(&self) -> bool {
        self.ports.len() >= 2
    }

    /// Apply the paper's rule to one verification round's responders.
    ///
    /// `responders` are the (port, node_id) pairs that answered within the
    /// round. Returns true when this round confirms NAT.
    pub fn apply_round(&mut self, t: SimTime, responders: &[(u16, NodeId)]) -> bool {
        let distinct_ports: BTreeSet<u16> = responders.iter().map(|(p, _)| *p).collect();
        let distinct_ids: BTreeSet<NodeId> = responders.iter().map(|(_, id)| *id).collect();
        let confirmed =
            responders.len() >= 2 && distinct_ports.len() >= 2 && distinct_ids.len() >= 2;
        if confirmed {
            // Users simultaneously distinguished: pair up distinct ports with
            // distinct ids conservatively.
            let users = distinct_ports.len().min(distinct_ids.len()) as u32;
            match &mut self.nat {
                Some(e) => {
                    e.max_simultaneous_users = e.max_simultaneous_users.max(users);
                    e.rounds_confirmed += 1;
                }
                None => {
                    self.nat = Some(NatEvidence {
                        first_confirmed: t,
                        max_simultaneous_users: users,
                        rounds_confirmed: 1,
                    });
                }
            }
        }
        confirmed
    }
}

/// Classification of an IP after the crawl (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IpClass {
    /// Confirmed NATed (≥ 2 simultaneous users).
    Natted,
    /// Multiple ports seen but never ≥ 2 simultaneous responders —
    /// consistent with port churn / stale info.
    MultiPortUnconfirmed,
    /// Single port only.
    SinglePort,
}

impl IpObservation {
    pub fn class(&self) -> IpClass {
        if self.nat.is_some() {
            IpClass::Natted
        } else if self.is_multiport() {
            IpClass::MultiPortUnconfirmed
        } else {
            IpClass::SinglePort
        }
    }
}

/// Convenience map alias used by the engine.
pub type ObservationMap = std::collections::BTreeMap<Ipv4Addr, IpObservation>;

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> NodeId {
        NodeId([n; 20])
    }

    fn t(s: u64) -> SimTime {
        SimTime(s)
    }

    #[test]
    fn single_port_is_not_candidate() {
        let mut obs = IpObservation::default();
        obs.record(1000, id(1), t(10), Sighting::Advertised);
        assert!(!obs.is_multiport());
        assert_eq!(obs.class(), IpClass::SinglePort);
    }

    #[test]
    fn two_responders_with_distinct_ids_confirm_nat() {
        let mut obs = IpObservation::default();
        obs.record(1000, id(1), t(10), Sighting::Responded);
        obs.record(2000, id(2), t(11), Sighting::Advertised);
        assert!(obs.is_multiport());
        assert!(obs.apply_round(t(100), &[(1000, id(1)), (2000, id(2))]));
        let e = obs.nat.unwrap();
        assert_eq!(e.max_simultaneous_users, 2);
        assert_eq!(e.rounds_confirmed, 1);
        assert_eq!(obs.class(), IpClass::Natted);
    }

    #[test]
    fn same_node_id_on_two_ports_is_not_nat() {
        // One client that re-bound its socket: two ports answer with the
        // same node_id (e.g. ping raced a rebind) — must NOT be flagged.
        let mut obs = IpObservation::default();
        assert!(!obs.apply_round(t(5), &[(1000, id(1)), (2000, id(1))]));
        assert!(obs.nat.is_none());
    }

    #[test]
    fn one_responder_is_not_nat() {
        // The paper's Figure 1: IP1 has two known ports but only one
        // responds — stale information, not NAT.
        let mut obs = IpObservation::default();
        obs.record(2215, id(1), t(1), Sighting::Advertised);
        obs.record(12281, id(2), t(2), Sighting::Advertised);
        assert!(!obs.apply_round(t(3), &[(12281, id(2))]));
        assert_eq!(obs.class(), IpClass::MultiPortUnconfirmed);
    }

    #[test]
    fn user_lower_bound_takes_round_maximum() {
        let mut obs = IpObservation::default();
        obs.apply_round(t(1), &[(1, id(1)), (2, id(2))]);
        obs.apply_round(t(2), &[(1, id(1)), (2, id(2)), (3, id(3)), (4, id(4))]);
        obs.apply_round(t(3), &[(1, id(1)), (2, id(2)), (3, id(3))]);
        let e = obs.nat.unwrap();
        assert_eq!(e.max_simultaneous_users, 4);
        assert_eq!(e.rounds_confirmed, 3);
    }

    #[test]
    fn record_tracks_freshness_and_liveness() {
        let mut obs = IpObservation::default();
        obs.record(5, id(1), t(10), Sighting::Advertised);
        obs.record(5, id(2), t(20), Sighting::Responded);
        let rec = &obs.ports[&5];
        assert_eq!(rec.first_seen, t(10));
        assert_eq!(rec.last_seen, t(20));
        assert_eq!(rec.last_node_id, id(2));
        assert!(rec.confirmed_live);
    }
}
