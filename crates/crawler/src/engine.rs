//! The crawl engine (paper §3.1, Figure 1).
//!
//! The crawler interleaves two activities over the measurement window:
//!
//! 1. **Discovery** — `get_nodes` (KRPC `find_node`) issued to endpoints in
//!    discovery order, starting from the bootstrap node. Replies surface
//!    new `(ip, port, node_id)` sightings; an IP observed with two
//!    different ports becomes a *verification candidate*.
//! 2. **Verification** — hourly `bt_ping` rounds to *all discovered ports*
//!    of every candidate IP. An IP is classified NATed only when a single
//!    round yields ≥ 2 responses with ≥ 2 distinct node_ids on ≥ 2
//!    distinct ports (responses, not sightings — stale ports don't answer).
//!
//! Politeness mirrors the paper: a global send-rate cap, and no IP is
//! contacted twice within 20 minutes.

use crate::config::CrawlConfig;
use crate::log::{Direction, MessageKind, MessageLog, MessageRecord};
use crate::observations::{IpClass, IpObservation, ObservationMap, Sighting};
use ar_dht::{KrpcTransport, Message, MessageBody, NodeId, Query};
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::net::{Ipv4Addr, SocketAddrV4};

/// Aggregate crawl statistics (paper §4 reports these for the real crawl:
/// 1.6B pings, 779M responses / 48.6%, 48.7M unique IPs, 203M node_ids).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    pub get_nodes_sent: u64,
    pub pings_sent: u64,
    pub replies_received: u64,
    pub unique_ips: u64,
    pub unique_node_ids: u64,
    pub multiport_ips: u64,
    pub natted_ips: u64,
    pub ping_rounds: u64,
    /// bt_ping re-sends issued by the retry policy (0 unless enabled).
    pub ping_retries: u64,
    /// Ping replies that only arrived on a retry attempt — verification
    /// evidence the retry-free crawler would have lost.
    pub pings_recovered: u64,
    /// bt_pings that drew a reply (any attempt); `pings_sent` minus this
    /// is the timed-out count.
    pub ping_replies: u64,
    /// Cross-shard discoveries routed through the hand-off queues of the
    /// partitioned crawl (0 for the serial engine).
    pub handoffs_routed: u64,
    /// Hand-offs discarded because a bounded queue was full.
    pub handoffs_dropped: u64,
}

impl std::ops::AddAssign<&CrawlStats> for CrawlStats {
    /// Accumulate another crawl's counters. Exhaustively destructures the
    /// right-hand side so a field added to `CrawlStats` without a matching
    /// line here is a compile error — not a silently dropped total.
    fn add_assign(&mut self, other: &CrawlStats) {
        let CrawlStats {
            get_nodes_sent,
            pings_sent,
            replies_received,
            unique_ips,
            unique_node_ids,
            multiport_ips,
            natted_ips,
            ping_rounds,
            ping_retries,
            pings_recovered,
            ping_replies,
            handoffs_routed,
            handoffs_dropped,
        } = *other;
        self.get_nodes_sent += get_nodes_sent;
        self.pings_sent += pings_sent;
        self.replies_received += replies_received;
        self.unique_ips += unique_ips;
        self.unique_node_ids += unique_node_ids;
        self.multiport_ips += multiport_ips;
        self.natted_ips += natted_ips;
        self.ping_rounds += ping_rounds;
        self.ping_retries += ping_retries;
        self.pings_recovered += pings_recovered;
        self.ping_replies += ping_replies;
        self.handoffs_routed += handoffs_routed;
        self.handoffs_dropped += handoffs_dropped;
    }
}

impl CrawlStats {
    /// Fraction of sent messages that drew a reply; 0.0 when nothing was
    /// sent (never NaN — empty crawls are a legitimate degraded outcome).
    pub fn response_rate(&self) -> f64 {
        let sent = self.get_nodes_sent + self.pings_sent;
        if sent == 0 {
            0.0
        } else {
            self.replies_received as f64 / sent as f64
        }
    }

    /// Fraction of issued retries that recovered a reply; 0.0 with retries
    /// off.
    pub fn ping_recovery_rate(&self) -> f64 {
        if self.ping_retries == 0 {
            0.0
        } else {
            self.pings_recovered as f64 / self.ping_retries as f64
        }
    }

    /// bt_pings that never drew a reply on any attempt.
    pub fn pings_timed_out(&self) -> u64 {
        self.pings_sent.saturating_sub(self.ping_replies)
    }

    /// NATed IPs per multiport candidate — how often verification confirms
    /// a candidate; 0.0 when no candidates emerged.
    pub fn nat_yield(&self) -> f64 {
        if self.multiport_ips == 0 {
            0.0
        } else {
            self.natted_ips as f64 / self.multiport_ips as f64
        }
    }
}

/// The crawl's output: everything the analysis crates consume.
#[derive(Debug)]
pub struct CrawlReport {
    pub window: TimeWindow,
    pub stats: CrawlStats,
    pub observations: ObservationMap,
    /// Bounded message log (counters always; records when enabled).
    pub log: MessageLog,
}

impl CrawlReport {
    /// A report with no observations at all — the graceful-degradation
    /// stand-in when a crawl phase fails outright.
    pub fn empty(window: TimeWindow) -> CrawlReport {
        CrawlReport {
            window,
            stats: CrawlStats::default(),
            observations: ObservationMap::default(),
            log: MessageLog::new(0, 0),
        }
    }

    /// IPs confirmed as NATed (≥ 2 simultaneous users).
    pub fn natted_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.observations
            .iter()
            .filter(|(_, o)| o.nat.is_some())
            .map(|(ip, _)| *ip)
    }

    /// Lower bound on users behind a NATed IP (Figure 8's metric).
    pub fn user_lower_bound(&self, ip: Ipv4Addr) -> Option<u32> {
        self.observations
            .get(&ip)?
            .nat
            .map(|e| e.max_simultaneous_users)
    }

    /// Every IP the crawler saw running BitTorrent.
    pub fn bittorrent_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.observations.keys().copied()
    }

    /// What a crawler WITHOUT the bt_ping verification round would have
    /// flagged: any IP whose discovered ports carried ≥ 2 distinct
    /// node_ids. Used by the `ablation_pingverify` experiment to quantify
    /// the false positives the paper's design rule avoids.
    pub fn discovery_only_nat_candidates(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.observations
            .iter()
            .filter(|(_, o)| {
                if !o.is_multiport() {
                    return false;
                }
                let ids: BTreeSet<NodeId> = o.ports.values().map(|p| p.last_node_id).collect();
                ids.len() >= 2
            })
            .map(|(ip, _)| *ip)
    }

    pub fn class_of(&self, ip: Ipv4Addr) -> Option<IpClass> {
        self.observations.get(&ip).map(IpObservation::class)
    }

    /// Publish this crawl's counters into the metrics registry under
    /// `crawler.*`. Counters add (study totals accumulate across periods);
    /// `phase` labels per-period gauges. Pure observation — reading the
    /// report never changes it.
    ///
    /// Everything is accumulated in a local [`ar_obs::ObsBatch`] and
    /// published with one locked merge at the end — concurrent per-period
    /// crawls no longer take a registry lock per metric.
    pub fn record_obs(&self, obs: &ar_obs::Obs, phase: &str) {
        if !obs.enabled() {
            return;
        }
        let s = &self.stats;
        let mut batch = ar_obs::ObsBatch::new();
        batch.add("crawler.get_nodes_sent", s.get_nodes_sent);
        batch.add("crawler.pings_sent", s.pings_sent);
        batch.add("crawler.ping_replies", s.ping_replies);
        batch.add("crawler.pings_timed_out", s.pings_timed_out());
        batch.add("crawler.ping_retries", s.ping_retries);
        batch.add("crawler.pings_recovered", s.pings_recovered);
        batch.add("crawler.replies_received", s.replies_received);
        batch.add("crawler.ping_rounds", s.ping_rounds);
        batch.add("crawler.unique_ips", s.unique_ips);
        batch.add("crawler.unique_node_ids", s.unique_node_ids);
        batch.add("crawler.multiport_ips", s.multiport_ips);
        batch.add("crawler.natted_ips", s.natted_ips);
        batch.add("crawler.handoffs_routed", s.handoffs_routed);
        batch.add("crawler.handoffs_dropped", s.handoffs_dropped);
        batch.add("crawler.observations", self.observations.len() as u64);
        self.log.batch_obs(&mut batch, phase);
        batch.merge_into(obs);
        let ports = obs.histogram("crawler.ports_per_ip");
        for o in self.observations.values() {
            ports.observe(o.ports.len() as u64);
        }
    }
}

/// Version bytes from a reply envelope, when it carries exactly four.
fn version_bytes(msg: &Message) -> Option<[u8; 4]> {
    msg.version
        .as_ref()
        .and_then(|v| <[u8; 4]>::try_from(v.as_ref()).ok())
}

/// Run a full crawl of `net` under `config`.
pub fn crawl<N: KrpcTransport>(net: &mut N, config: &CrawlConfig) -> CrawlReport {
    let mut engine = Engine::new(config);
    engine.bootstrap(net);
    let mut next_ping_round = config.window.start;
    engine.run_range(
        net,
        config.window.start,
        config.window.end,
        &mut next_ping_round,
    );
    engine.finish()
}

/// Serialised crawl state: everything needed to continue a long crawl in
/// a later process. (The bounded message log is not carried over; a
/// resumed crawl's log covers only its own segment.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlCheckpoint {
    pub window: TimeWindow,
    pub resume_at: SimTime,
    pub next_ping_round: SimTime,
    observations: ObservationMap,
    frontier: Vec<SocketAddrV4>,
    enqueued: Vec<SocketAddrV4>,
    live_endpoints: Vec<(SocketAddrV4, SimTime)>,
    multiport: Vec<Ipv4Addr>,
    node_id_digests: Vec<u64>,
    stats: CrawlStats,
    tx_counter: u64,
    effective_rate: f64,
}

/// Crawl from the window start until `stop`, returning a resumable
/// checkpoint instead of a report.
pub fn crawl_until<N: KrpcTransport>(
    net: &mut N,
    config: &CrawlConfig,
    stop: SimTime,
) -> CrawlCheckpoint {
    let stop = stop.min(config.window.end);
    let mut engine = Engine::new(config);
    engine.bootstrap(net);
    let mut next_ping_round = config.window.start;
    engine.run_range(net, config.window.start, stop, &mut next_ping_round);
    engine.into_checkpoint(stop, next_ping_round)
}

impl CrawlCheckpoint {
    /// Push the resume point forward by `downtime` — the crawler host was
    /// dead for that long, and the hours in between are simply never
    /// crawled. Verification cadence resumes immediately on restart.
    pub fn delay_resume(&mut self, downtime: SimDuration) {
        self.resume_at = (self.resume_at + downtime).min(self.window.end);
        self.next_ping_round = self.next_ping_round.max(self.resume_at);
    }
}

/// Resume a checkpointed crawl and run it up to `stop`, yielding another
/// checkpoint. Used when several outages hit one crawl: each middle
/// segment runs checkpoint-to-checkpoint, and [`resume`] finishes the last.
pub fn resume_until<N: KrpcTransport>(
    net: &mut N,
    config: &CrawlConfig,
    checkpoint: CrawlCheckpoint,
    stop: SimTime,
) -> CrawlCheckpoint {
    let stop = stop.min(config.window.end);
    let mut next_ping_round = checkpoint.next_ping_round;
    let resume_at = checkpoint.resume_at;
    let mut engine = Engine::from_checkpoint(config, checkpoint);
    engine.run_range(net, resume_at, stop, &mut next_ping_round);
    engine.into_checkpoint(stop, next_ping_round)
}

/// Resume a checkpointed crawl and run it to the window end.
pub fn resume<N: KrpcTransport>(
    net: &mut N,
    config: &CrawlConfig,
    checkpoint: CrawlCheckpoint,
) -> CrawlReport {
    let mut next_ping_round = checkpoint.next_ping_round;
    let resume_at = checkpoint.resume_at;
    let mut engine = Engine::from_checkpoint(config, checkpoint);
    engine.run_range(net, resume_at, config.window.end, &mut next_ping_round);
    engine.finish()
}

/// Owner shard of an IP under a `count`-way partition: FNV-1a over its
/// /24 prefix bytes, mod the shard count. Pure — the partition layout is a
/// function of the address space alone, never of threads, schedules or
/// iteration order, which is what keeps sharded artifacts byte-identical
/// at any worker count.
pub(crate) fn shard_of(ip: Ipv4Addr, count: usize) -> usize {
    let o = ip.octets();
    let h = ar_simnet::fnv::fnv1a64(&[o[0], o[1], o[2]]);
    (h % count.max(1) as u64) as usize
}

/// A discovery crossing a shard boundary: the source shard saw (or was
/// handed) an endpoint whose IP belongs to another shard's partition, and
/// routes it there instead of touching foreign state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Handoff {
    pub(crate) ep: SocketAddrV4,
    /// Advertised node id to record at the owner; `None` means
    /// enqueue-only (a bootstrap endpoint).
    pub(crate) node_id: Option<NodeId>,
    pub(crate) at: SimTime,
}

/// Per-shard partition state of a partitioned crawl.
struct ShardCtx {
    id: usize,
    count: usize,
    /// Outgoing hand-offs accumulated this round, one bounded queue per
    /// destination shard; the driver drains them at the round's sync point.
    outbox: Vec<Vec<Handoff>>,
    cap: usize,
}

pub(crate) struct Engine<'c> {
    config: &'c CrawlConfig,
    observations: ObservationMap,
    /// Endpoints waiting for their first get_nodes, in discovery order.
    frontier: VecDeque<SocketAddrV4>,
    /// Endpoints ever enqueued (dedup).
    enqueued: HashSet<SocketAddrV4>,
    /// Endpoints that answered at least once, with last crawl time
    /// (sorted: iteration must be deterministic).
    live_endpoints: BTreeMap<SocketAddrV4, SimTime>,
    /// Verification candidates (sorted for determinism).
    multiport: BTreeSet<Ipv4Addr>,
    /// 64-bit digests of observed node_ids.
    node_id_digests: HashSet<u64>,
    stats: CrawlStats,
    /// Our crawler's own node id.
    self_id: NodeId,
    tx_counter: u64,
    log: MessageLog,
    /// Current discovery rate (messages/second/vantage); equals the
    /// configured rate unless `adaptive_rate` has backed it off.
    effective_rate: f64,
    /// `Some` when this engine is one partition of a sharded crawl;
    /// `None` keeps every serial code path bit-identical to the
    /// pre-sharding engine.
    shard: Option<ShardCtx>,
}

impl<'c> Engine<'c> {
    fn new(config: &'c CrawlConfig) -> Self {
        Engine {
            config,
            observations: ObservationMap::default(),
            frontier: VecDeque::new(),
            enqueued: HashSet::new(),
            live_endpoints: BTreeMap::new(),
            multiport: BTreeSet::new(),
            node_id_digests: HashSet::new(),
            stats: CrawlStats::default(),
            self_id: NodeId::from_ip_and_nonce(Ipv4Addr::new(127, 0, 0, 1), 0xC4A3),
            tx_counter: 0,
            log: MessageLog::new(config.log_head, config.log_tail),
            effective_rate: f64::from(config.rate_per_sec),
            shard: None,
        }
    }

    /// One partition of a `count`-way sharded crawl. The shard owns the
    /// IPs with `shard_of(ip, count) == id`: only those enter its
    /// frontier, observations or candidate set; everything else it
    /// discovers is routed to the owner through the hand-off outbox.
    pub(crate) fn new_shard(config: &'c CrawlConfig, id: usize, count: usize) -> Self {
        let mut engine = Engine::new(config);
        // Disjoint transaction-id ranges keep merged message streams
        // collision-free and independent of scheduling.
        engine.tx_counter = (id as u64) << 24;
        engine.shard = Some(ShardCtx {
            id,
            count,
            outbox: vec![Vec::new(); count],
            cap: config.handoff_cap,
        });
        engine
    }

    /// Does this engine's partition own `ip`? Serial engines own everything.
    fn owns(&self, ip: Ipv4Addr) -> bool {
        match self.shard.as_ref() {
            Some(s) => shard_of(ip, s.count) == s.id,
            None => true,
        }
    }

    /// Queue a discovery for its owner shard (no-op when serial — callers
    /// only route endpoints [`Self::owns`] rejected, which cannot happen
    /// without a shard context).
    fn route_handoff(&mut self, ep: SocketAddrV4, node_id: Option<NodeId>, at: SimTime) {
        let Some(shard) = self.shard.as_mut() else {
            return;
        };
        let dest = shard_of(*ep.ip(), shard.count);
        let queue = &mut shard.outbox[dest];
        if queue.len() >= shard.cap {
            self.stats.handoffs_dropped += 1;
        } else {
            queue.push(Handoff { ep, node_id, at });
            self.stats.handoffs_routed += 1;
        }
    }

    /// Hand this round's outbox to the driver, leaving empty queues behind.
    pub(crate) fn take_outbox(&mut self) -> Vec<Vec<Handoff>> {
        match self.shard.as_mut() {
            Some(shard) => {
                let count = shard.count;
                std::mem::replace(&mut shard.outbox, vec![Vec::new(); count])
            }
            None => Vec::new(),
        }
    }

    /// Apply hand-offs received at a sync point. Batches are sorted by
    /// source shard id before application — combined with each source's
    /// canonical send order this makes the drain order (and therefore the
    /// artifacts) independent of which thread flushed first.
    pub(crate) fn apply_inbox(&mut self, mut batches: Vec<(usize, Vec<Handoff>)>) {
        batches.sort_by_key(|&(src, _)| src);
        for (_, queue) in batches {
            for handoff in queue {
                if let Some(id) = handoff.node_id {
                    self.record(
                        *handoff.ep.ip(),
                        handoff.ep.port(),
                        id,
                        handoff.at,
                        Sighting::Advertised,
                    );
                }
                self.enqueue(handoff.ep);
            }
        }
    }

    /// Seed the frontier. Each vantage point gets its own bootstrap draw,
    /// widening the initial frontier the way geographically separate
    /// crawlers would. A shard keeps only its own partition of the draw
    /// and routes the rest to the owners.
    pub(crate) fn bootstrap<N: KrpcTransport>(&mut self, net: &mut N) {
        let window = self.config.window;
        let vantages = self.config.vantage_points.max(1);
        for _ in 0..vantages {
            for ep in net.bootstrap(window.start, self.config.bootstrap_size) {
                if self.owns(*ep.ip()) {
                    self.enqueue(ep);
                } else {
                    self.route_handoff(ep, None, window.start);
                }
            }
        }
    }

    /// One crawl hour: a verification round when due, then discovery and
    /// recrawl scheduling. The unit the sharded driver steps all
    /// partitions through in lockstep.
    pub(crate) fn step_hour<N: KrpcTransport>(
        &mut self,
        net: &mut N,
        now: SimTime,
        next_ping_round: &mut SimTime,
    ) {
        if !self.config.disable_ping_verification && now >= *next_ping_round {
            self.ping_round(net, now);
            // Under adaptive backoff the verification cadence stretches
            // with the same factor — pings are the bulk of the traffic
            // the paper's network admins objected to.
            let backoff = if self.config.adaptive_rate {
                (f64::from(self.config.rate_per_sec) / self.effective_rate).clamp(1.0, 24.0)
            } else {
                1.0
            };
            let gap = (self.config.ping_round_every.as_secs() as f64 * backoff) as u64;
            *next_ping_round = now + SimDuration::from_secs(gap);
        }
        self.discover(net, now);
        self.schedule_recrawls(now);
    }

    /// Advance the crawl clock from `from` to `to`.
    fn run_range<N: KrpcTransport>(
        &mut self,
        net: &mut N,
        from: SimTime,
        to: SimTime,
        next_ping_round: &mut SimTime,
    ) {
        let hour = SimDuration::from_hours(1);
        let mut now = from;
        while now < to {
            self.step_hour(net, now, next_ping_round);
            now += hour;
        }
    }

    fn finish(mut self) -> CrawlReport {
        self.stats.unique_ips = self.observations.len() as u64;
        self.stats.unique_node_ids = self.node_id_digests.len() as u64;
        self.stats.multiport_ips = self.multiport.len() as u64;
        self.stats.natted_ips = self
            .observations
            .values()
            .filter(|o| o.nat.is_some())
            .count() as u64;

        CrawlReport {
            window: self.config.window,
            stats: self.stats,
            observations: self.observations,
            log: self.log,
        }
    }

    fn into_checkpoint(self, resume_at: SimTime, next_ping_round: SimTime) -> CrawlCheckpoint {
        // Sets and maps are serialised as sorted vectors so checkpoints are
        // byte-stable across runs.
        let mut enqueued: Vec<SocketAddrV4> = self.enqueued.into_iter().collect();
        enqueued.sort();
        let mut digests: Vec<u64> = self.node_id_digests.into_iter().collect();
        digests.sort_unstable();
        CrawlCheckpoint {
            window: self.config.window,
            resume_at,
            next_ping_round,
            observations: self.observations,
            frontier: self.frontier.into_iter().collect(),
            enqueued,
            live_endpoints: self.live_endpoints.into_iter().collect(),
            multiport: self.multiport.into_iter().collect(),
            node_id_digests: digests,
            stats: self.stats,
            tx_counter: self.tx_counter,
            effective_rate: self.effective_rate,
        }
    }

    fn from_checkpoint(config: &'c CrawlConfig, cp: CrawlCheckpoint) -> Self {
        Engine {
            config,
            observations: cp.observations,
            frontier: cp.frontier.into(),
            enqueued: cp.enqueued.into_iter().collect(),
            live_endpoints: cp.live_endpoints.into_iter().collect(),
            multiport: cp.multiport.into_iter().collect(),
            node_id_digests: cp.node_id_digests.into_iter().collect(),
            stats: cp.stats,
            self_id: NodeId::from_ip_and_nonce(Ipv4Addr::new(127, 0, 0, 1), 0xC4A3),
            tx_counter: cp.tx_counter,
            log: MessageLog::new(config.log_head, config.log_tail),
            effective_rate: cp.effective_rate,
            shard: None,
        }
    }

    /// Merge finished shard engines into the canonical crawl report.
    ///
    /// The merge order is fixed: shard id, then each shard's own canonical
    /// event order. Observations are disjoint across shards by
    /// construction — every sighting of an IP is recorded at its owner —
    /// so extending the sorted map is a pure union; node-id digests can
    /// overlap (IP churn moves a node id across partitions over time) and
    /// are re-deduplicated here.
    pub(crate) fn finish_merged(config: &CrawlConfig, engines: Vec<Engine<'_>>) -> CrawlReport {
        let mut observations = ObservationMap::default();
        let mut multiport: BTreeSet<Ipv4Addr> = BTreeSet::new();
        let mut digests: HashSet<u64> = HashSet::new();
        let mut stats = CrawlStats::default();
        let mut rounds = 0u64;
        let mut logs = Vec::with_capacity(engines.len());
        for engine in engines {
            observations.extend(engine.observations);
            multiport.extend(engine.multiport);
            digests.extend(engine.node_id_digests);
            rounds = rounds.max(engine.stats.ping_rounds);
            stats += &engine.stats;
            logs.push(engine.log);
        }
        // Shards tick verification rounds in lockstep: the campaign ran
        // max-over-shards rounds, not the per-shard sum.
        stats.ping_rounds = rounds;
        stats.unique_ips = observations.len() as u64;
        stats.unique_node_ids = digests.len() as u64;
        stats.multiport_ips = multiport.len() as u64;
        stats.natted_ips = observations.values().filter(|o| o.nat.is_some()).count() as u64;
        CrawlReport {
            window: config.window,
            stats,
            observations,
            log: MessageLog::merge_shards(config.log_head, config.log_tail, logs),
        }
    }

    fn next_tx(&mut self) -> [u8; 4] {
        self.tx_counter += 1;
        (self.tx_counter as u32).to_be_bytes()
    }

    fn enqueue(&mut self, ep: SocketAddrV4) {
        if self.config.scope.contains(*ep.ip()) && self.enqueued.insert(ep) {
            self.frontier.push_back(ep);
        }
    }

    fn digest_node_id(&mut self, id: NodeId) {
        self.node_id_digests
            .insert(ar_simnet::fnv::fnv1a64(id.as_bytes()));
    }

    fn record(&mut self, ip: Ipv4Addr, port: u16, id: NodeId, t: SimTime, sighting: Sighting) {
        self.record_with_version(ip, port, id, t, sighting, None);
    }

    fn record_with_version(
        &mut self,
        ip: Ipv4Addr,
        port: u16,
        id: NodeId,
        t: SimTime,
        sighting: Sighting,
        version: Option<[u8; 4]>,
    ) {
        let obs = self.observations.entry(ip).or_default();
        obs.record_with_version(port, id, t, sighting, version);
        if obs.is_multiport() && self.config.scope.contains(ip) {
            self.multiport.insert(ip);
        }
        self.digest_node_id(id);
    }

    fn cooled_down(&self, ip: Ipv4Addr, now: SimTime) -> bool {
        match self.observations.get(&ip).and_then(|o| o.last_contact) {
            Some(last) => now.saturating_sub(last) >= self.config.per_ip_cooldown,
            None => true,
        }
    }

    fn touch(&mut self, ip: Ipv4Addr, now: SimTime) {
        self.observations.entry(ip).or_default().last_contact = Some(now);
    }

    /// One hour of discovery traffic (all vantage points combined: each
    /// contributes its own rate budget, so V vantages sweep the frontier
    /// V× faster without any single network bearing more probe load).
    fn discover<N: KrpcTransport>(&mut self, net: &mut N, hour_start: SimTime) {
        let total_budget = ((self.effective_rate * 3600.0) as u64).max(60)
            * u64::from(self.config.vantage_points.max(1));
        // A shard spends its slice of the global politeness budget, so the
        // partitioned crawl's aggregate send rate matches the serial one.
        let budget = match &self.shard {
            Some(shard) => {
                let count = shard.count as u64;
                total_budget / count + u64::from((shard.id as u64) < total_budget % count)
            }
            None => total_budget,
        };
        let sent_before = self.stats.get_nodes_sent + self.stats.pings_sent;
        let replies_before = self.stats.replies_received;
        let mut sent: u64 = 0;
        let mut deferred: Vec<SocketAddrV4> = Vec::new();
        let hour_end = hour_start + SimDuration::from_hours(1);

        while sent < budget {
            let Some(ep) = self.frontier.pop_front() else {
                break;
            };
            // Spread sends across the hour at the combined vantage rate.
            let per_sec = (budget / 3600).max(1);
            let t = SimTime(hour_start.as_secs() + (sent / per_sec));
            if t >= hour_end || t >= self.config.window.end {
                self.frontier.push_front(ep);
                break;
            }
            if !self.cooled_down(*ep.ip(), t) {
                deferred.push(ep);
                continue;
            }
            sent += 1;
            self.touch(*ep.ip(), t);
            self.stats.get_nodes_sent += 1;
            self.log.push(MessageRecord {
                time: t,
                direction: Direction::Sent,
                kind: MessageKind::GetNodes,
                endpoint: ep,
            });
            let tx = self.next_tx();
            let msg = Message::query(
                tx,
                Query::FindNode {
                    id: self.self_id,
                    target: NodeId::from_ip_and_nonce(*ep.ip(), u64::from(ep.port())),
                },
            );
            let Some(delivered) = net.query(t, ep, &msg) else {
                continue;
            };
            self.stats.replies_received += 1;
            self.log.push(MessageRecord {
                time: delivered.at,
                direction: Direction::Received,
                kind: MessageKind::Reply,
                endpoint: delivered.from,
            });
            self.live_endpoints.insert(ep, t);
            let version = version_bytes(&delivered.message);
            let MessageBody::Response(r) = delivered.message.body else {
                continue;
            };
            if let Some(id) = r.id {
                self.record_with_version(
                    *ep.ip(),
                    ep.port(),
                    id,
                    delivered.at,
                    Sighting::Responded,
                    version,
                );
            }
            for node in r.nodes.unwrap_or_default() {
                if self.owns(*node.addr.ip()) {
                    self.record(
                        *node.addr.ip(),
                        node.addr.port(),
                        node.id,
                        delivered.at,
                        Sighting::Advertised,
                    );
                    self.enqueue(node.addr);
                } else {
                    // Foreign partition: the owner records the sighting and
                    // decides whether to enqueue, at the next sync point.
                    self.route_handoff(node.addr, Some(node.id), delivered.at);
                }
            }
        }
        // Cooling endpoints try again next hour.
        for ep in deferred {
            self.frontier.push_back(ep);
        }

        // AIMD politeness: back off hard on dead air, recover slowly.
        if self.config.adaptive_rate {
            let sent_hour = (self.stats.get_nodes_sent + self.stats.pings_sent) - sent_before;
            let replies_hour = self.stats.replies_received - replies_before;
            if sent_hour >= 50 {
                let response = replies_hour as f64 / sent_hour as f64;
                if response < 0.2 {
                    // Floor well below 1 msg/s: dead space deserves little.
                    self.effective_rate = (self.effective_rate / 2.0).max(0.05);
                } else if response > 0.5 {
                    self.effective_rate =
                        (self.effective_rate * 1.1).min(f64::from(self.config.rate_per_sec));
                }
            }
        }
    }

    /// Hourly bt_ping verification of every multiport candidate.
    fn ping_round<N: KrpcTransport>(&mut self, net: &mut N, now: SimTime) {
        self.stats.ping_rounds += 1;
        let candidates: Vec<Ipv4Addr> = self
            .multiport
            .iter()
            .copied()
            .filter(|ip| self.cooled_down(*ip, now))
            .collect();
        for ip in candidates {
            // Ping only freshly-sighted ports (newest first, capped): dead
            // ports from old reboot eras waste probes and cannot answer.
            let obs = &self.observations[&ip];
            let mut fresh: Vec<(SimTime, u16)> = obs
                .ports
                .iter()
                .filter(|(_, rec)| {
                    now.saturating_sub(rec.last_seen) <= self.config.port_stale_after
                })
                .map(|(port, rec)| (rec.last_seen, *port))
                .collect();
            fresh.sort_unstable_by(|a, b| b.cmp(a));
            fresh.truncate(self.config.max_ports_per_ip);
            let ports: Vec<u16> = fresh.into_iter().map(|(_, p)| p).collect();
            if ports.len() < 2 {
                continue; // nothing verifiable this round
            }
            let mut responders: Vec<(u16, NodeId)> = Vec::new();
            self.touch(ip, now);
            for port in ports {
                let endpoint = SocketAddrV4::new(ip, port);
                // Retry-with-exponential-backoff: attempt 0 is the normal
                // ping; with `ping_retry` enabled, unanswered pings are
                // re-sent after a doubling delay until the policy's retry
                // or deadline budget runs out. With the default (off)
                // policy this loop body executes exactly once, preserving
                // the retry-free engine's behaviour bit for bit.
                let policy = self.config.ping_retry;
                let deadline = (now + policy.deadline)
                    .min(self.config.window.end)
                    .min(now + self.config.ping_round_every);
                let mut send_at = now;
                let mut delay = policy.backoff;
                for attempt in 0..=policy.max_retries {
                    self.stats.pings_sent += 1;
                    if attempt > 0 {
                        self.stats.ping_retries += 1;
                    }
                    self.log.push(MessageRecord {
                        time: send_at,
                        direction: Direction::Sent,
                        kind: MessageKind::BtPing,
                        endpoint,
                    });
                    let tx = self.next_tx();
                    let msg = Message::query(tx, Query::Ping { id: self.self_id });
                    if let Some(delivered) = net.query(send_at, endpoint, &msg) {
                        self.stats.replies_received += 1;
                        self.stats.ping_replies += 1;
                        if attempt > 0 {
                            self.stats.pings_recovered += 1;
                        }
                        self.log.push(MessageRecord {
                            time: delivered.at,
                            direction: Direction::Received,
                            kind: MessageKind::Reply,
                            endpoint,
                        });
                        let version = version_bytes(&delivered.message);
                        if let MessageBody::Response(r) = delivered.message.body {
                            if let Some(id) = r.id {
                                responders.push((port, id));
                                self.record_with_version(
                                    ip,
                                    port,
                                    id,
                                    delivered.at,
                                    Sighting::Responded,
                                    version,
                                );
                            }
                        }
                        break;
                    }
                    let next = send_at + delay;
                    if next >= deadline {
                        break;
                    }
                    send_at = next;
                    delay = delay.mul(2);
                }
            }
            self.observations
                .get_mut(&ip)
                .expect("candidate has observations")
                .apply_round(now, &responders);
        }
    }

    /// Re-enqueue live endpoints whose recrawl timer expired.
    fn schedule_recrawls(&mut self, now: SimTime) {
        let due: Vec<SocketAddrV4> = self
            .live_endpoints
            .iter()
            .filter(|(_, last)| now.saturating_sub(**last) >= self.config.recrawl_after)
            .map(|(ep, _)| *ep)
            .collect();
        for ep in due {
            self.live_endpoints.insert(ep, now);
            // Bypass the dedup set: recrawls are intentional revisits.
            self.frontier.push_back(ep);
        }
    }
}

// Tests live in crawler/src/lib.rs's integration-style module and in
// tests/ at the workspace root; the engine's pieces are unit-tested via
// `observations` and `config`.

#[cfg(test)]
mod stats_tests {
    use super::CrawlStats;

    #[test]
    fn add_assign_sums_every_field() {
        let a = CrawlStats {
            get_nodes_sent: 1,
            pings_sent: 2,
            replies_received: 3,
            unique_ips: 4,
            unique_node_ids: 5,
            multiport_ips: 6,
            natted_ips: 7,
            ping_rounds: 8,
            ping_retries: 9,
            pings_recovered: 10,
            ping_replies: 11,
            handoffs_routed: 12,
            handoffs_dropped: 13,
        };
        let mut total = a;
        total += &a;
        assert_eq!(
            total,
            CrawlStats {
                get_nodes_sent: 2,
                pings_sent: 4,
                replies_received: 6,
                unique_ips: 8,
                unique_node_ids: 10,
                multiport_ips: 12,
                natted_ips: 14,
                ping_rounds: 16,
                ping_retries: 18,
                pings_recovered: 20,
                ping_replies: 22,
                handoffs_routed: 24,
                handoffs_dropped: 26,
            }
        );
    }

    #[test]
    fn pings_timed_out_is_sent_minus_replies() {
        let stats = CrawlStats {
            pings_sent: 10,
            ping_replies: 7,
            ..CrawlStats::default()
        };
        assert_eq!(stats.pings_timed_out(), 3);
        assert_eq!(CrawlStats::default().pings_timed_out(), 0);
    }

    #[test]
    fn ratios_are_zero_not_nan_on_empty_stats() {
        // Regression: a crawl that never sent anything (failed phase,
        // empty scope) must report 0.0, not NaN, from every ratio.
        let empty = CrawlStats::default();
        assert_eq!(empty.response_rate(), 0.0);
        assert_eq!(empty.ping_recovery_rate(), 0.0);
        assert_eq!(empty.nat_yield(), 0.0);
    }
}
