//! Crawl message log.
//!
//! "The crawler logs all the messages (bt_ping or get_nodes) sent and all
//! the messages received with the timestamps, which are then processed to
//! determine NATed addresses" (§3.1). At full volume that log is enormous
//! (the real crawl sent 1.6B messages), so retention is bounded: the log
//! keeps the first `head` and the most recent `tail` records, plus exact
//! counters — enough to audit behaviour and replay message timelines in
//! tests without unbounded memory.

use ar_simnet::time::SimTime;
use serde::Serialize;
use std::collections::VecDeque;
use std::net::SocketAddrV4;

/// Message direction, crawler-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    Sent,
    Received,
}

/// What kind of message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MessageKind {
    GetNodes,
    BtPing,
    Reply,
}

/// One log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MessageRecord {
    pub time: SimTime,
    pub direction: Direction,
    pub kind: MessageKind,
    /// Remote endpoint (destination when sent, source when received).
    pub endpoint: SocketAddrV4,
}

/// Bounded-retention message log.
#[derive(Debug, Clone, Serialize)]
pub struct MessageLog {
    head_cap: usize,
    tail_cap: usize,
    head: Vec<MessageRecord>,
    tail: VecDeque<MessageRecord>,
    /// Exact count of records ever offered (including evicted ones).
    pub total: u64,
    pub sent: u64,
    pub received: u64,
}

impl MessageLog {
    /// A log retaining the first `head_cap` and last `tail_cap` records.
    /// `disabled()` keeps counters only.
    pub fn new(head_cap: usize, tail_cap: usize) -> Self {
        MessageLog {
            head_cap,
            tail_cap,
            head: Vec::with_capacity(head_cap.min(1024)),
            tail: VecDeque::with_capacity(tail_cap.min(1024)),
            total: 0,
            sent: 0,
            received: 0,
        }
    }

    /// Counters only — the default for full-scale crawls.
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    pub fn push(&mut self, record: MessageRecord) {
        self.total += 1;
        match record.direction {
            Direction::Sent => self.sent += 1,
            Direction::Received => self.received += 1,
        }
        if self.head.len() < self.head_cap {
            self.head.push(record);
            return;
        }
        if self.tail_cap == 0 {
            return;
        }
        if self.tail.len() == self.tail_cap {
            self.tail.pop_front();
        }
        self.tail.push_back(record);
    }

    /// Retained records, oldest first. A gap may exist between the head
    /// and tail segments; `truncated()` says whether it does.
    pub fn records(&self) -> impl Iterator<Item = &MessageRecord> {
        self.head.iter().chain(self.tail.iter())
    }

    pub fn retained(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    pub fn truncated(&self) -> bool {
        self.total > self.retained() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> MessageRecord {
        MessageRecord {
            time: SimTime(t),
            direction: if t % 2 == 0 {
                Direction::Sent
            } else {
                Direction::Received
            },
            kind: MessageKind::BtPing,
            endpoint: "192.0.2.1:6881".parse().unwrap(),
        }
    }

    #[test]
    fn head_and_tail_retention() {
        let mut log = MessageLog::new(3, 2);
        for t in 0..10 {
            log.push(rec(t));
        }
        assert_eq!(log.total, 10);
        assert_eq!(log.sent, 5);
        assert_eq!(log.received, 5);
        let times: Vec<u64> = log.records().map(|r| r.time.0).collect();
        // First three, last two.
        assert_eq!(times, vec![0, 1, 2, 8, 9]);
        assert!(log.truncated());
    }

    #[test]
    fn small_volumes_keep_everything() {
        let mut log = MessageLog::new(8, 8);
        for t in 0..5 {
            log.push(rec(t));
        }
        assert_eq!(log.retained(), 5);
        assert!(!log.truncated());
    }

    #[test]
    fn disabled_counts_only() {
        let mut log = MessageLog::disabled();
        for t in 0..100 {
            log.push(rec(t));
        }
        assert_eq!(log.total, 100);
        assert_eq!(log.retained(), 0);
        assert!(log.truncated());
    }
}
