//! Crawl message log.
//!
//! "The crawler logs all the messages (bt_ping or get_nodes) sent and all
//! the messages received with the timestamps, which are then processed to
//! determine NATed addresses" (§3.1). At full volume that log is enormous
//! (the real crawl sent 1.6B messages), so retention is bounded: the log
//! keeps the first `head` and the most recent `tail` records, plus exact
//! counters — enough to audit behaviour and replay message timelines in
//! tests without unbounded memory.

use ar_simnet::time::SimTime;
use serde::Serialize;
use std::collections::VecDeque;
use std::net::SocketAddrV4;

/// Message direction, crawler-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    Sent,
    Received,
}

/// What kind of message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MessageKind {
    GetNodes,
    BtPing,
    Reply,
}

/// One log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MessageRecord {
    pub time: SimTime,
    pub direction: Direction,
    pub kind: MessageKind,
    /// Remote endpoint (destination when sent, source when received).
    pub endpoint: SocketAddrV4,
}

/// Bounded-retention message log.
#[derive(Debug, Clone, Serialize)]
pub struct MessageLog {
    head_cap: usize,
    tail_cap: usize,
    head: Vec<MessageRecord>,
    tail: VecDeque<MessageRecord>,
    /// Exact count of records ever offered (including evicted ones).
    pub total: u64,
    pub sent: u64,
    pub received: u64,
    /// Exact per-kind counts, independent of retention.
    pub get_nodes: u64,
    pub bt_pings: u64,
    pub replies: u64,
}

impl MessageLog {
    /// A log retaining the first `head_cap` and last `tail_cap` records.
    /// `disabled()` keeps counters only.
    pub fn new(head_cap: usize, tail_cap: usize) -> Self {
        MessageLog {
            head_cap,
            tail_cap,
            head: Vec::with_capacity(head_cap.min(1024)),
            tail: VecDeque::with_capacity(tail_cap.min(1024)),
            total: 0,
            sent: 0,
            received: 0,
            get_nodes: 0,
            bt_pings: 0,
            replies: 0,
        }
    }

    /// Counters only — the default for full-scale crawls.
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    /// Deterministically merge per-shard logs into one canonical log.
    ///
    /// Exact counters sum. Retained records follow the sharded crawl's
    /// merge rule — shard id first, then each shard's own order: the head
    /// is the concatenation of shard heads truncated to `head_cap`, and
    /// the tail keeps the last `tail_cap` records of the concatenated
    /// shard tails. Independent of thread count by construction, since the
    /// inputs and the rule are.
    pub fn merge_shards(head_cap: usize, tail_cap: usize, parts: Vec<MessageLog>) -> MessageLog {
        let mut out = MessageLog::new(head_cap, tail_cap);
        for part in parts {
            out.total += part.total;
            out.sent += part.sent;
            out.received += part.received;
            out.get_nodes += part.get_nodes;
            out.bt_pings += part.bt_pings;
            out.replies += part.replies;
            for record in part.head.into_iter().chain(part.tail) {
                if out.head.len() < head_cap {
                    out.head.push(record);
                    continue;
                }
                if tail_cap == 0 {
                    break;
                }
                if out.tail.len() == tail_cap {
                    out.tail.pop_front();
                }
                out.tail.push_back(record);
            }
        }
        out
    }

    pub fn push(&mut self, record: MessageRecord) {
        self.total += 1;
        match record.direction {
            Direction::Sent => self.sent += 1,
            Direction::Received => self.received += 1,
        }
        match record.kind {
            MessageKind::GetNodes => self.get_nodes += 1,
            MessageKind::BtPing => self.bt_pings += 1,
            MessageKind::Reply => self.replies += 1,
        }
        if self.head.len() < self.head_cap {
            self.head.push(record);
            return;
        }
        if self.tail_cap == 0 {
            return;
        }
        if self.tail.len() == self.tail_cap {
            self.tail.pop_front();
        }
        self.tail.push_back(record);
    }

    /// Retained records, oldest first. A gap may exist between the head
    /// and tail segments; `truncated()` says whether it does.
    pub fn records(&self) -> impl Iterator<Item = &MessageRecord> {
        self.head.iter().chain(self.tail.iter())
    }

    pub fn retained(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    pub fn truncated(&self) -> bool {
        self.total > self.retained() as u64
    }

    /// How many records were offered but not retained (the head/tail gap).
    pub fn dropped_records(&self) -> u64 {
        self.total - self.retained() as u64
    }

    /// Accumulate the exact counters (and the truncation gauge) into a
    /// metrics batch under `crawler.log.*`. The gauge is suffixed with
    /// the crawl's phase label because each period has its own log.
    pub fn batch_obs(&self, batch: &mut ar_obs::ObsBatch, phase: &str) {
        batch.add("crawler.log.records", self.total);
        batch.add("crawler.log.sent", self.sent);
        batch.add("crawler.log.received", self.received);
        batch.add("crawler.log.get_nodes", self.get_nodes);
        batch.add("crawler.log.bt_pings", self.bt_pings);
        batch.add("crawler.log.replies", self.replies);
        batch.set_gauge(
            &format!("crawler.log.dropped_records.{phase}"),
            self.dropped_records() as i64,
        );
    }

    /// Publish the counters directly into the registry (standalone use;
    /// the crawl report batches instead — see [`Self::batch_obs`]).
    pub fn record_obs(&self, obs: &ar_obs::Obs, phase: &str) {
        if !obs.enabled() {
            return;
        }
        let mut batch = ar_obs::ObsBatch::new();
        self.batch_obs(&mut batch, phase);
        batch.merge_into(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> MessageRecord {
        MessageRecord {
            time: SimTime(t),
            direction: if t % 2 == 0 {
                Direction::Sent
            } else {
                Direction::Received
            },
            kind: MessageKind::BtPing,
            endpoint: "192.0.2.1:6881".parse().unwrap(),
        }
    }

    #[test]
    fn head_and_tail_retention() {
        let mut log = MessageLog::new(3, 2);
        for t in 0..10 {
            log.push(rec(t));
        }
        assert_eq!(log.total, 10);
        assert_eq!(log.sent, 5);
        assert_eq!(log.received, 5);
        let times: Vec<u64> = log.records().map(|r| r.time.0).collect();
        // First three, last two.
        assert_eq!(times, vec![0, 1, 2, 8, 9]);
        assert!(log.truncated());
        assert_eq!(log.dropped_records(), 5);
        assert_eq!(log.bt_pings, 10);
    }

    #[test]
    fn per_kind_counters_are_exact_despite_truncation() {
        let mut log = MessageLog::new(1, 1);
        for t in 0..6 {
            let mut r = rec(t);
            r.kind = match t % 3 {
                0 => MessageKind::GetNodes,
                1 => MessageKind::BtPing,
                _ => MessageKind::Reply,
            };
            log.push(r);
        }
        assert_eq!(log.retained(), 2);
        assert_eq!((log.get_nodes, log.bt_pings, log.replies), (2, 2, 2));
        assert_eq!(log.dropped_records(), 4);

        let obs = ar_obs::Obs::new();
        log.record_obs(&obs, "crawl[0]");
        let report = obs.report();
        assert_eq!(report.counters["crawler.log.bt_pings"], 2);
        assert_eq!(report.counters["crawler.log.records"], 6);
        assert_eq!(report.gauges["crawler.log.dropped_records.crawl[0]"], 4);
    }

    #[test]
    fn small_volumes_keep_everything() {
        let mut log = MessageLog::new(8, 8);
        for t in 0..5 {
            log.push(rec(t));
        }
        assert_eq!(log.retained(), 5);
        assert!(!log.truncated());
    }

    #[test]
    fn merge_shards_sums_counters_and_keeps_head_tail_rule() {
        // Three shard logs with distinct time ranges; merged retention is
        // shard order (not time order), head first, last records in tail.
        let mut parts = Vec::new();
        for shard in 0..3u64 {
            let mut log = MessageLog::new(2, 2);
            for t in 0..5 {
                log.push(rec(shard * 100 + t));
            }
            parts.push(log);
        }
        let merged = MessageLog::merge_shards(3, 2, parts);
        assert_eq!(merged.total, 15);
        assert_eq!(merged.bt_pings, 15);
        assert_eq!(merged.sent + merged.received, 15);
        let times: Vec<u64> = merged.records().map(|r| r.time.0).collect();
        // Head: shard 0's retained head (0,1) + shard 0's first tail
        // record (3); tail: the last two retained records overall.
        assert_eq!(times, vec![0, 1, 3, 203, 204]);
        assert!(merged.truncated());

        // Counter-only merge keeps nothing but stays exact.
        let a = MessageLog::merge_shards(0, 0, vec![MessageLog::new(1, 1)]);
        assert_eq!(a.retained(), 0);
    }

    #[test]
    fn disabled_counts_only() {
        let mut log = MessageLog::disabled();
        for t in 0..100 {
            log.push(rec(t));
        }
        assert_eq!(log.total, 100);
        assert_eq!(log.retained(), 0);
        assert!(log.truncated());
    }
}
