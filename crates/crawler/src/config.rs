//! Crawl configuration.

use ar_index::PrefixSet;
use ar_simnet::time::{SimDuration, TimeWindow};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Which part of the address space the crawler contacts.
///
/// The paper restricts its crawler "only to address spaces where blocklists
/// are present" (899K /24 prefixes) to limit probing burden (§3.1/§4).
/// The prefix index is shared via `Arc`: concurrent per-period crawls all
/// read the same set instead of each cloning it.
#[derive(Debug, Clone)]
pub enum Scope {
    /// Contact any discovered endpoint.
    All,
    /// Contact only endpoints inside these /24 prefixes.
    Prefixes(Arc<PrefixSet>),
}

impl Scope {
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        match self {
            Scope::All => true,
            Scope::Prefixes(set) => set.contains_ip(ip),
        }
    }

    pub fn prefix_count(&self) -> Option<usize> {
        match self {
            Scope::All => None,
            Scope::Prefixes(set) => Some(set.len()),
        }
    }
}

/// Retry-with-exponential-backoff for the bt_ping verification path.
///
/// A lost ping is not evidence of absence — under bursty loss or transient
/// blackouts an entire verification round can silently miss a live NAT.
/// With retries enabled, each unanswered ping is re-sent after `backoff`
/// (doubling per attempt) until `max_retries` re-sends have been spent or
/// the next send would land past `deadline` / the crawl window.
///
/// The default is **off** (`max_retries == 0`): a retry-free engine is
/// byte-identical to the pre-retry engine, which the determinism matrix
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-sends allowed per unanswered ping (0 = feature off).
    pub max_retries: u32,
    /// Delay before the first re-send; doubles on each further attempt.
    pub backoff: SimDuration,
    /// No re-send is issued later than this far past the original send.
    pub deadline: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: SimDuration::from_secs(30),
            deadline: SimDuration::from_mins(10),
        }
    }
}

impl RetryPolicy {
    /// The resilience setting used by fault-sweep studies: up to three
    /// re-sends, 30 s initial backoff, 10-minute deadline.
    pub fn resilient() -> Self {
        RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        }
    }

    pub fn is_off(&self) -> bool {
        self.max_retries == 0
    }
}

/// Crawler parameters (§3.1).
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// The measurement window to crawl.
    pub window: TimeWindow,
    /// Address-space restriction.
    pub scope: Scope,
    /// Endpoints requested from the bootstrap node.
    pub bootstrap_size: usize,
    /// Maximum messages sent per virtual second (rate limiting to spare the
    /// network, as the paper's admins demanded).
    pub rate_per_sec: u32,
    /// Re-issue get_nodes to a known endpoint after this long, keeping
    /// discovery continuous across the window.
    pub recrawl_after: SimDuration,
    /// Interval between bt_ping verification rounds (paper: hourly).
    pub ping_round_every: SimDuration,
    /// Per-IP contact suppression (paper: 20 minutes).
    pub per_ip_cooldown: SimDuration,
    /// Ports drop out of the hourly ping set when not sighted for this
    /// long. Without pruning, reboot-era port churn accretes dead ports
    /// for every IP, and the bt_ping volume explodes while the response
    /// rate collapses — the paper's 1.6B pings / 48.6% responses imply its
    /// crawler also confined pings to fresh ports.
    pub port_stale_after: SimDuration,
    /// Hard cap on ports pinged per IP and round (freshest first).
    pub max_ports_per_ip: usize,
    /// Number of crawler vantage points. The paper runs one and notes
    /// "we could reduce this burden and have a faster coverage by having
    /// the crawler at multiple vantage points in different networks"
    /// (§3.1) — each vantage contributes its own send budget and bootstrap
    /// draw, while per-IP politeness remains global.
    pub vantage_points: u32,
    /// Skip the bt_ping verification round entirely and classify from
    /// discovery alone. **Ablation only** — quantifies the false positives
    /// the paper's design avoids (see `ablation_pingverify`).
    pub disable_ping_verification: bool,
    /// Retry policy for unanswered verification pings (default: off).
    pub ping_retry: RetryPolicy,
    /// Adaptive politeness (AIMD): halve the discovery rate when an hour's
    /// response rate falls below 20% (probing dead space annoys networks
    /// for nothing — the paper throttled after its "ping replies generated
    /// tremendous amount of incoming traffic"), and recover by 10% per
    /// healthy hour up to `rate_per_sec`.
    pub adaptive_rate: bool,
    /// Message-log retention: keep the first `log_head` and the most
    /// recent `log_tail` message records (0/0 keeps counters only —
    /// full-volume crawls would otherwise hold millions of records).
    pub log_head: usize,
    pub log_tail: usize,
    /// Logical partitions of the sharded crawl (`crawl_sharded`): the
    /// address space is split by /24 prefix into this many independent
    /// crawl partitions with their own frontier, RNG stream and buffers.
    /// **Fixed regardless of worker threads** — the shard layout, not the
    /// thread count, determines the artifacts, which is what makes them
    /// byte-identical at any parallelism. The serial [`crate::crawl`]
    /// ignores this field.
    pub shards: usize,
    /// Bound on cross-shard hand-offs queued per (source shard,
    /// destination shard, round); overflow is counted in
    /// `CrawlStats::handoffs_dropped` rather than growing without limit.
    pub handoff_cap: usize,
}

impl CrawlConfig {
    pub fn new(window: TimeWindow) -> Self {
        CrawlConfig {
            window,
            scope: Scope::All,
            bootstrap_size: 64,
            rate_per_sec: 600,
            recrawl_after: SimDuration::from_hours(24),
            ping_round_every: SimDuration::from_hours(1),
            per_ip_cooldown: SimDuration::from_mins(20),
            port_stale_after: SimDuration::from_days(3),
            max_ports_per_ip: 128,
            vantage_points: 1,
            disable_ping_verification: false,
            ping_retry: RetryPolicy::default(),
            adaptive_rate: false,
            log_head: 0,
            log_tail: 0,
            shards: 8,
            handoff_cap: 1 << 16,
        }
    }

    pub fn with_scope(mut self, scope: Scope) -> Self {
        self.scope = scope;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::time::PERIOD_1;

    #[test]
    fn scope_filtering() {
        let p: ar_simnet::ip::Prefix24 = "10.1.2.0/24".parse().unwrap();
        let scope = Scope::Prefixes(Arc::new([p].into_iter().collect()));
        assert!(scope.contains("10.1.2.77".parse().unwrap()));
        assert!(!scope.contains("10.1.3.77".parse().unwrap()));
        assert!(Scope::All.contains("8.8.8.8".parse().unwrap()));
        assert_eq!(scope.prefix_count(), Some(1));
        assert_eq!(Scope::All.prefix_count(), None);
    }

    #[test]
    fn defaults_match_paper() {
        let c = CrawlConfig::new(PERIOD_1);
        assert_eq!(c.per_ip_cooldown, SimDuration::from_mins(20));
        assert_eq!(c.ping_round_every, SimDuration::from_hours(1));
        assert!(!c.disable_ping_verification);
        assert!(c.ping_retry.is_off(), "retries must default off");
    }

    #[test]
    fn resilient_retry_policy_is_on() {
        let p = RetryPolicy::resilient();
        assert!(!p.is_off());
        assert_eq!(p.max_retries, 3);
        assert!(!p.backoff.is_zero());
        assert!(p.deadline.as_secs() >= p.backoff.as_secs());
    }
}
