//! The partitioned crawl: one logical crawl split into N shard partitions
//! that run concurrently and merge deterministically.
//!
//! ## Why artifacts are byte-identical at any thread count
//!
//! Everything observable is a function of the *shard layout*, never the
//! schedule:
//!
//! * the partition of the address space is `shard_of(ip)` — pure in the
//!   /24 prefix;
//! * each shard owns its frontier, dedup set, observation map, message
//!   log and RNG stream (seeded per shard index by the transport);
//! * cross-shard discoveries travel through hand-off queues that are
//!   drained only at per-round sync points, sorted by source shard id;
//! * the merge walks shards in id order and re-derives the global
//!   uniques.
//!
//! Worker threads are therefore a pure performance knob: `threads = 1`
//! steps the shards round-robin on the caller's thread, `threads = N`
//! fans the same shard set out over a persistent pool with two barriers
//! per simulated hour (one after hand-off application, one after the
//! hour's traffic) so no shard can observe round `r+1` hand-offs while
//! draining round `r`.

use crate::config::CrawlConfig;
use crate::engine::{CrawlReport, Engine, Handoff};
use ar_dht::KrpcTransport;
use ar_simnet::time::{SimDuration, SimTime};
use std::sync::{Barrier, Mutex};

/// A shard's inbox: batches of hand-offs tagged with their source shard.
type Inbox = Mutex<Vec<(usize, Vec<Handoff>)>>;

/// One worker's slice of the crawl: `(shard id, engine, transport)`.
type Slot<'c, N> = (usize, Engine<'c>, N);

/// Run one crawl partitioned over `nets.len()` shards on up to `threads`
/// worker threads. `nets[i]` is shard `i`'s transport — for the simulated
/// fabric, [`ar_dht::ShardedSimNetwork::shards`] builds the set with one
/// deterministic RNG stream per shard.
///
/// The report is byte-identical for every `threads` value (including 1);
/// only wall-clock changes. Faulted crawls (checkpoint/resume, fault
/// transports) keep using the serial [`crate::crawl`] family.
pub fn crawl_sharded<N: KrpcTransport + Send>(
    nets: Vec<N>,
    config: &CrawlConfig,
    threads: usize,
) -> CrawlReport {
    if nets.is_empty() {
        return CrawlReport::empty(config.window);
    }
    let count = nets.len();
    let mut slots: Vec<Slot<'_, N>> = nets
        .into_iter()
        .enumerate()
        .map(|(id, net)| (id, Engine::new_shard(config, id, count), net))
        .collect();
    let inboxes: Vec<Inbox> = (0..count).map(|_| Mutex::new(Vec::new())).collect();

    let workers = threads.max(1).min(count);
    if workers <= 1 {
        run_worker(&mut slots, &inboxes, config, None);
    } else {
        // Contiguous shard→worker chunks; the barrier is sized to the
        // actual chunk count (ceil division can produce fewer chunks
        // than requested workers).
        let per_worker = count.div_ceil(workers);
        let chunks: Vec<&mut [Slot<'_, N>]> = slots.chunks_mut(per_worker).collect();
        let barrier = Barrier::new(chunks.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let inboxes = &inboxes;
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    run_worker(chunk, inboxes, config, Some(barrier));
                }));
            }
            for handle in handles {
                // A worker panic propagates to the caller, like par_map's.
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    let engines: Vec<Engine<'_>> = slots.into_iter().map(|(_, engine, _)| engine).collect();
    Engine::finish_merged(config, engines)
}

/// Drive one worker's shards through the whole window in lockstep with
/// the rest of the pool (barrier `None` = single-worker inline mode).
fn run_worker<N: KrpcTransport>(
    slots: &mut [Slot<'_, N>],
    inboxes: &[Inbox],
    config: &CrawlConfig,
    barrier: Option<&Barrier>,
) {
    let sync = || {
        if let Some(b) = barrier {
            b.wait();
        }
    };

    // Round "-1": bootstrap draws seed each shard's own partition and
    // route the rest; the first loop round drains them everywhere.
    for (id, engine, net) in slots.iter_mut() {
        engine.bootstrap(net);
        flush_outbox(*id, engine, inboxes);
    }
    sync();

    let hour = SimDuration::from_hours(1);
    let mut next_ping: Vec<SimTime> = vec![config.window.start; slots.len()];
    let mut now = config.window.start;
    while now < config.window.end {
        // Phase 1: apply hand-offs from the previous round. The barrier
        // below keeps any fast worker from pushing round-r hand-offs into
        // an inbox a slow worker has not yet drained for round r-1.
        for (id, engine, _) in slots.iter_mut() {
            engine.apply_inbox(drain(&inboxes[*id]));
        }
        sync();
        // Phase 2: one simulated hour of traffic per shard, then flush
        // the hand-offs it produced. The trailing barrier makes the
        // flush visible to every shard before the next drain.
        for (slot, (id, engine, net)) in slots.iter_mut().enumerate() {
            engine.step_hour(net, now, &mut next_ping[slot]);
            flush_outbox(*id, engine, inboxes);
        }
        sync();
        now += hour;
    }

    // Final drain: the last hour's cross-shard sightings still count as
    // observations even though no further round will crawl them.
    for (id, engine, _) in slots.iter_mut() {
        engine.apply_inbox(drain(&inboxes[*id]));
    }
}

fn drain(inbox: &Inbox) -> Vec<(usize, Vec<Handoff>)> {
    match inbox.lock() {
        Ok(mut queue) => std::mem::take(&mut *queue),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

fn flush_outbox(src: usize, engine: &mut Engine<'_>, inboxes: &[Inbox]) {
    for (dest, queue) in engine.take_outbox().into_iter().enumerate() {
        if queue.is_empty() {
            continue;
        }
        match inboxes[dest].lock() {
            Ok(mut inbox) => inbox.push((src, queue)),
            Err(poisoned) => poisoned.into_inner().push((src, queue)),
        }
    }
}
