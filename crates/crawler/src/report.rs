//! Crawl-report rendering: the §4 paragraph, generated.

use crate::engine::CrawlReport;
use crate::observations::IpClass;
use std::fmt::Write as _;

/// Render a crawl report in the style of the paper's §4 prose statistics.
pub fn render_crawl_report(report: &CrawlReport) -> String {
    let s = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "crawl window: {} → {} ({} days)",
        report.window.start,
        report.window.end,
        report.window.days()
    );
    let _ = writeln!(
        out,
        "messages: {} get_nodes + {} bt_pings sent, {} replies ({:.1}% response rate)",
        s.get_nodes_sent,
        s.pings_sent,
        s.replies_received,
        100.0 * s.response_rate()
    );
    let _ = writeln!(
        out,
        "discovered: {} unique IPs under {} unique node_ids ({:.1} ids/IP)",
        s.unique_ips,
        s.unique_node_ids,
        s.unique_node_ids as f64 / s.unique_ips.max(1) as f64
    );

    let mut single = 0usize;
    let mut churned = 0usize;
    let mut natted = 0usize;
    for obs in report.observations.values() {
        match obs.class() {
            IpClass::SinglePort => single += 1,
            IpClass::MultiPortUnconfirmed => churned += 1,
            IpClass::Natted => natted += 1,
        }
    }
    let _ = writeln!(
        out,
        "classification: {single} single-port, {churned} multi-port unconfirmed (port churn), {natted} NATed"
    );

    if natted > 0 {
        let max_users = report
            .observations
            .values()
            .filter_map(|o| o.nat.map(|e| e.max_simultaneous_users))
            .max()
            .unwrap_or(0);
        let total_users: u64 = report
            .observations
            .values()
            .filter_map(|o| o.nat.map(|e| u64::from(e.max_simultaneous_users)))
            .sum();
        let _ = writeln!(
            out,
            "NAT impact: ≥{total_users} users share the {natted} NATed addresses (max {max_users} behind one)"
        );
    }
    let _ = writeln!(
        out,
        "message log: {} records retained of {} total{}",
        report.log.retained(),
        report.log.total,
        if report.log.truncated() {
            " (bounded)"
        } else {
            ""
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrawlConfig;
    use crate::engine::crawl;
    use ar_dht::{SimNetwork, SimParams};
    use ar_simnet::alloc::{AllocationPlan, InterestSet};
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::{date, TimeWindow};
    use ar_simnet::universe::Universe;

    #[test]
    fn report_contains_all_sections() {
        let universe = Universe::generate(Seed(606), &UniverseConfig::tiny());
        let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 6));
        let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);
        let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
        let report = crawl(&mut net, &CrawlConfig::new(window));
        let text = render_crawl_report(&report);
        assert!(text.contains("crawl window: 2019-08-03T00:00:00Z"));
        assert!(text.contains("(3 days)"));
        assert!(text.contains("response rate"));
        assert!(text.contains("classification:"));
        assert!(text.contains("message log:"));
        // Numbers round-trip from the stats.
        assert!(text.contains(&format!("{} unique IPs", report.stats.unique_ips)));
    }
}
