//! The sorted-array `/24` prefix set and its merge-joins against [`IpSet`].

use crate::ipset::IpSet;
use ar_simnet::ip::Prefix24;
use serde::Serialize;
use std::net::Ipv4Addr;

/// A set of `/24` prefixes stored as a deduplicated, ascending `Vec<u32>`
/// of raw 24-bit values.
///
/// Besides binary-search membership, the set supports merge-joins against
/// an [`IpSet`]: because an ascending address sequence maps to a
/// non-decreasing prefix sequence, "which of these addresses fall inside
/// these prefixes" is a single two-pointer pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
#[serde(transparent)]
pub struct PrefixSet {
    prefixes: Vec<u32>,
}

impl PrefixSet {
    pub fn new() -> Self {
        PrefixSet::default()
    }

    /// Build from raw 24-bit values in any order (sorts + dedups).
    pub fn from_raw(mut prefixes: Vec<u32>) -> Self {
        prefixes.sort_unstable();
        prefixes.dedup();
        PrefixSet { prefixes }
    }

    /// Build from an ascending, deduplicated raw sequence (debug-asserted).
    pub fn from_sorted_raw(prefixes: Vec<u32>) -> Self {
        debug_assert!(
            prefixes.windows(2).all(|w| w[0] < w[1]),
            "not sorted/deduped"
        );
        PrefixSet { prefixes }
    }

    /// Build from an ascending prefix sequence (e.g. a `BTreeSet` or an
    /// already-sorted slice) without re-sorting.
    pub fn from_sorted<'a, I: IntoIterator<Item = &'a Prefix24>>(iter: I) -> Self {
        PrefixSet::from_sorted_raw(iter.into_iter().map(|p| p.raw()).collect())
    }

    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    pub fn contains(&self, p: Prefix24) -> bool {
        self.prefixes.binary_search(&p.raw()).is_ok()
    }

    /// Does any member prefix cover `ip`?
    pub fn contains_ip(&self, ip: Ipv4Addr) -> bool {
        self.prefixes.binary_search(&(u32::from(ip) >> 8)).is_ok()
    }

    /// Ascending iteration.
    pub fn iter(&self) -> impl Iterator<Item = Prefix24> + '_ {
        self.prefixes.iter().map(|&raw| Prefix24::from_raw(raw))
    }

    /// The subset of `ips` covered by some member prefix, via a single
    /// two-pointer merge (no per-address hash or tree probe).
    pub fn covered(&self, ips: &IpSet) -> IpSet {
        let mut out = Vec::new();
        let mut p = 0;
        for &addr in ips.as_raw() {
            let prefix = addr >> 8;
            while p < self.prefixes.len() && self.prefixes[p] < prefix {
                p += 1;
            }
            if p == self.prefixes.len() {
                break;
            }
            if self.prefixes[p] == prefix {
                out.push(addr);
            }
        }
        IpSet::from_sorted(out)
    }

    /// `|covered(ips)|` without materialising the subset.
    pub fn covered_count(&self, ips: &IpSet) -> usize {
        let mut n = 0;
        let mut p = 0;
        for &addr in ips.as_raw() {
            let prefix = addr >> 8;
            while p < self.prefixes.len() && self.prefixes[p] < prefix {
                p += 1;
            }
            if p == self.prefixes.len() {
                break;
            }
            if self.prefixes[p] == prefix {
                n += 1;
            }
        }
        n
    }
}

impl FromIterator<Prefix24> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix24>>(iter: I) -> Self {
        PrefixSet::from_raw(iter.into_iter().map(|p| p.raw()).collect())
    }
}

/// Total multiplicity of `hist` entries whose prefix appears in `prefixes`.
///
/// `hist` is an [`IpSet::prefix_histogram`]; `prefixes` is any *ascending*
/// prefix sequence (a `BTreeSet` iterator, a sorted slice, a
/// [`PrefixSet::iter`]). One two-pointer pass; the addresses behind `hist`
/// were each converted to their `/24` exactly once, up front.
pub fn weighted_prefix_intersection<I>(hist: &[(Prefix24, u32)], prefixes: I) -> u64
where
    I: IntoIterator<Item = Prefix24>,
{
    let mut total = 0u64;
    let mut h = hist.iter().peekable();
    for p in prefixes {
        loop {
            match h.peek() {
                Some((hp, _)) if *hp < p => {
                    h.next();
                }
                Some((hp, n)) if *hp == p => {
                    total += u64::from(*n);
                    h.next();
                    break;
                }
                _ => break,
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Prefix24 {
        s.parse().unwrap()
    }

    #[test]
    fn membership_and_dedup() {
        let set: PrefixSet = [p("10.0.1.0/24"), p("10.0.0.0/24"), p("10.0.1.0/24")]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
        assert!(set.contains(p("10.0.0.0/24")));
        assert!(set.contains_ip(ip("10.0.1.200")));
        assert!(!set.contains_ip(ip("10.0.2.200")));
        let v: Vec<Prefix24> = set.iter().collect();
        assert_eq!(v, vec![p("10.0.0.0/24"), p("10.0.1.0/24")]);
    }

    #[test]
    fn covered_merge_join_matches_naive() {
        let prefixes: PrefixSet = [p("10.0.0.0/24"), p("10.0.2.0/24"), p("192.168.1.0/24")]
            .into_iter()
            .collect();
        let ips: IpSet = [
            "9.255.255.255",
            "10.0.0.1",
            "10.0.0.200",
            "10.0.1.7",
            "10.0.2.9",
            "192.168.1.1",
            "200.0.0.1",
        ]
        .iter()
        .map(|s| ip(s))
        .collect();
        let covered = prefixes.covered(&ips);
        let naive: IpSet = ips.iter().filter(|&i| prefixes.contains_ip(i)).collect();
        assert_eq!(covered, naive);
        assert_eq!(prefixes.covered_count(&ips), naive.len());
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn covered_handles_empty_sides() {
        let empty = PrefixSet::new();
        let ips: IpSet = ["10.0.0.1"].iter().map(|s| ip(s)).collect();
        assert_eq!(empty.covered(&ips).len(), 0);
        let set: PrefixSet = [p("10.0.0.0/24")].into_iter().collect();
        assert_eq!(set.covered(&IpSet::new()).len(), 0);
    }

    #[test]
    fn covered_join_respects_a_slash24_boundary() {
        // Addresses straddling the 10.0.0.0/24 ↔ 10.0.1.0/24 boundary: the
        // merge-join must keep .255 of the covered block and reject .0 of
        // the next one, in both the materialising and counting joins.
        let prefixes: PrefixSet = [p("10.0.0.0/24")].into_iter().collect();
        let straddle: IpSet = ["9.255.255.255", "10.0.0.0", "10.0.0.255", "10.0.1.0"]
            .iter()
            .map(|s| ip(s))
            .collect();
        let covered = prefixes.covered(&straddle);
        assert_eq!(covered.len(), 2);
        assert!(covered.contains(ip("10.0.0.0")));
        assert!(covered.contains(ip("10.0.0.255")));
        assert!(!covered.contains(ip("9.255.255.255")));
        assert!(!covered.contains(ip("10.0.1.0")));
        assert_eq!(prefixes.covered_count(&straddle), 2);
        // And it agrees with the naive per-address probe.
        let naive: IpSet = straddle
            .iter()
            .filter(|&i| prefixes.contains_ip(i))
            .collect();
        assert_eq!(covered, naive);
    }

    #[test]
    fn weighted_intersection_sums_multiplicities() {
        let ips: IpSet = ["10.0.0.1", "10.0.0.2", "10.0.1.1", "10.0.3.9"]
            .iter()
            .map(|s| ip(s))
            .collect();
        let hist = ips.prefix_histogram();
        let stage: std::collections::BTreeSet<Prefix24> =
            [p("10.0.0.0/24"), p("10.0.3.0/24"), p("172.16.0.0/24")]
                .into_iter()
                .collect();
        assert_eq!(
            weighted_prefix_intersection(&hist, stage.iter().copied()),
            3
        );
        assert_eq!(weighted_prefix_intersection(&hist, std::iter::empty()), 0);
        assert_eq!(weighted_prefix_intersection(&[], stage.iter().copied()), 0);
    }
}
