//! The sorted-array IPv4 set.

use crate::prefixset::PrefixSet;
use ar_simnet::ip::Prefix24;
use serde::Serialize;
use std::net::Ipv4Addr;

/// A set of IPv4 addresses stored as a deduplicated, ascending `Vec<u32>`.
///
/// `contains` is a binary search; the set algebra (`intersect`, `union`,
/// `intersection_count`) runs as linear merges, so joining two sets costs
/// one pass over contiguous memory instead of one hash probe per element.
/// Iteration order is ascending and therefore deterministic — collecting
/// the same addresses in any order yields an identical set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
#[serde(transparent)]
pub struct IpSet {
    addrs: Vec<u32>,
}

impl IpSet {
    /// The empty set.
    pub fn new() -> Self {
        IpSet::default()
    }

    /// Build from raw `u32` address values in any order (sorts + dedups).
    pub fn from_raw(mut addrs: Vec<u32>) -> Self {
        addrs.sort_unstable();
        addrs.dedup();
        IpSet { addrs }
    }

    /// Build from an ascending, deduplicated sequence (debug-asserted).
    pub fn from_sorted(addrs: Vec<u32>) -> Self {
        debug_assert!(addrs.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        IpSet { addrs }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership by binary search.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.addrs.binary_search(&u32::from(ip)).is_ok()
    }

    /// Ascending iteration.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.addrs.iter().map(|&raw| Ipv4Addr::from(raw))
    }

    /// The underlying sorted raw values.
    pub fn as_raw(&self) -> &[u32] {
        &self.addrs
    }

    /// `self ∩ other` by linear merge.
    pub fn intersect(&self, other: &IpSet) -> IpSet {
        let (mut a, mut b) = (0, 0);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while a < self.addrs.len() && b < other.addrs.len() {
            match self.addrs[a].cmp(&other.addrs[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        IpSet { addrs: out }
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersection_count(&self, other: &IpSet) -> usize {
        let (mut a, mut b) = (0, 0);
        let mut n = 0;
        while a < self.addrs.len() && b < other.addrs.len() {
            match self.addrs[a].cmp(&other.addrs[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
        n
    }

    /// `self ∪ other` by linear merge.
    pub fn union(&self, other: &IpSet) -> IpSet {
        let (mut a, mut b) = (0, 0);
        let mut out = Vec::with_capacity(self.len() + other.len());
        while a < self.addrs.len() && b < other.addrs.len() {
            match self.addrs[a].cmp(&other.addrs[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.addrs[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.addrs[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[a..]);
        out.extend_from_slice(&other.addrs[b..]);
        IpSet { addrs: out }
    }

    /// `self \ other` by linear merge.
    pub fn difference(&self, other: &IpSet) -> IpSet {
        let (mut a, mut b) = (0, 0);
        let mut out = Vec::new();
        while a < self.addrs.len() && b < other.addrs.len() {
            match self.addrs[a].cmp(&other.addrs[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.addrs[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    a += 1;
                    b += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[a..]);
        IpSet { addrs: out }
    }

    /// Is every member of `self` also in `other`?
    pub fn is_subset(&self, other: &IpSet) -> bool {
        self.intersection_count(other) == self.len()
    }

    /// Keep only addresses satisfying `pred` (order preserved).
    pub fn filter(&self, mut pred: impl FnMut(Ipv4Addr) -> bool) -> IpSet {
        IpSet {
            addrs: self
                .addrs
                .iter()
                .copied()
                .filter(|&raw| pred(Ipv4Addr::from(raw)))
                .collect(),
        }
    }

    /// The covering `/24` prefixes of every member.
    pub fn prefixes(&self) -> PrefixSet {
        // Ascending addresses map to non-decreasing prefixes: dedup by
        // comparing against the previous emission, no sort needed.
        let mut out: Vec<u32> = Vec::new();
        for &raw in &self.addrs {
            let p = raw >> 8;
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        PrefixSet::from_sorted_raw(out)
    }

    /// Per-`/24` member multiplicities, ascending by prefix. The input to
    /// [`weighted_prefix_intersection`](crate::weighted_prefix_intersection):
    /// computing it once maps every address to its prefix exactly once, no
    /// matter how many prefix sets it is subsequently joined against.
    pub fn prefix_histogram(&self) -> Vec<(Prefix24, u32)> {
        let mut out: Vec<(Prefix24, u32)> = Vec::new();
        for &raw in &self.addrs {
            let p = Prefix24::from_raw(raw >> 8);
            match out.last_mut() {
                Some((last, n)) if *last == p => *n += 1,
                _ => out.push((p, 1)),
            }
        }
        out
    }
}

impl FromIterator<Ipv4Addr> for IpSet {
    fn from_iter<I: IntoIterator<Item = Ipv4Addr>>(iter: I) -> Self {
        IpSet::from_raw(iter.into_iter().map(u32::from).collect())
    }
}

impl<'a> IntoIterator for &'a IpSet {
    type Item = Ipv4Addr;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> Ipv4Addr>;
    fn into_iter(self) -> Self::IntoIter {
        fn conv(raw: &u32) -> Ipv4Addr {
            Ipv4Addr::from(*raw)
        }
        self.addrs.iter().map(conv)
    }
}

impl IntoIterator for IpSet {
    type Item = Ipv4Addr;
    type IntoIter = std::iter::Map<std::vec::IntoIter<u32>, fn(u32) -> Ipv4Addr>;
    fn into_iter(self) -> Self::IntoIter {
        self.addrs.into_iter().map(Ipv4Addr::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn set(ips: &[&str]) -> IpSet {
        ips.iter().map(|s| ip(s)).collect()
    }

    #[test]
    fn dedups_and_sorts() {
        let s = set(&["10.0.0.2", "10.0.0.1", "10.0.0.2", "9.9.9.9"]);
        assert_eq!(s.len(), 3);
        let v: Vec<Ipv4Addr> = s.iter().collect();
        assert_eq!(v, vec![ip("9.9.9.9"), ip("10.0.0.1"), ip("10.0.0.2")]);
        assert!(s.contains(ip("10.0.0.1")));
        assert!(!s.contains(ip("10.0.0.3")));
    }

    #[test]
    fn order_of_insertion_is_irrelevant() {
        let a = set(&["1.2.3.4", "5.6.7.8", "9.9.9.9"]);
        let b = set(&["9.9.9.9", "1.2.3.4", "5.6.7.8"]);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_algebra() {
        let a = set(&["10.0.0.1", "10.0.0.2", "10.0.0.5"]);
        let b = set(&["10.0.0.2", "10.0.0.5", "10.0.0.9"]);
        assert_eq!(a.intersect(&b), set(&["10.0.0.2", "10.0.0.5"]));
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(
            a.union(&b),
            set(&["10.0.0.1", "10.0.0.2", "10.0.0.5", "10.0.0.9"])
        );
        assert_eq!(a.intersect(&IpSet::new()).len(), 0);
        assert_eq!(a.union(&IpSet::new()), a);
        assert_eq!(a.difference(&b), set(&["10.0.0.1"]));
        assert_eq!(b.difference(&a), set(&["10.0.0.9"]));
        assert_eq!(a.difference(&IpSet::new()), a);
        assert!(a.intersect(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(IpSet::new().is_subset(&a));
    }

    #[test]
    fn empty_set_intersections_are_empty_both_ways() {
        let a = set(&["10.0.0.1", "10.0.0.2"]);
        let empty = IpSet::new();
        assert_eq!(empty.intersect(&a), IpSet::new());
        assert_eq!(a.intersect(&empty), IpSet::new());
        assert_eq!(empty.intersect(&empty), IpSet::new());
        assert_eq!(empty.intersection_count(&a), 0);
        assert_eq!(a.intersection_count(&empty), 0);
    }

    #[test]
    fn single_element_membership_at_array_ends() {
        // A one-element set: the element is simultaneously the first and
        // last array slot, where binary-search off-by-ones live.
        let s = set(&["10.0.0.5"]);
        assert!(s.contains(ip("10.0.0.5")));
        assert!(!s.contains(ip("10.0.0.4"))); // just below the only slot
        assert!(!s.contains(ip("10.0.0.6"))); // just above the only slot
        assert!(!s.contains(ip("0.0.0.0"))); // absolute low end
        assert!(!s.contains(ip("255.255.255.255"))); // absolute high end

        // Boundary probes against a multi-element set: membership must hold
        // at both array ends, and miss just outside them.
        let multi = set(&["0.0.0.1", "10.0.0.5", "255.255.255.254"]);
        assert!(multi.contains(ip("0.0.0.1")));
        assert!(multi.contains(ip("255.255.255.254")));
        assert!(!multi.contains(ip("0.0.0.0")));
        assert!(!multi.contains(ip("255.255.255.255")));
    }

    #[test]
    fn filter_and_prefixes() {
        let s = set(&["10.0.0.1", "10.0.0.200", "10.0.1.7", "172.16.0.1"]);
        let even = s.filter(|ip| u32::from(ip) % 2 == 0);
        assert_eq!(even.len(), 1);
        let p = s.prefixes();
        assert_eq!(p.len(), 3);
        assert!(p.contains_ip(ip("10.0.0.99")));
        assert!(!p.contains_ip(ip("10.0.2.99")));
    }

    #[test]
    fn prefix_histogram_counts_members() {
        let s = set(&["10.0.0.1", "10.0.0.2", "10.0.1.1", "172.16.0.9"]);
        let h = s.prefix_histogram();
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], (Prefix24::of(ip("10.0.0.0")), 2));
        assert_eq!(h[1], (Prefix24::of(ip("10.0.1.0")), 1));
        assert_eq!(h[2], (Prefix24::of(ip("172.16.0.0")), 1));
    }
}
