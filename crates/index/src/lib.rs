//! # ar-index — compact membership indexes for the join layer
//!
//! Every headline number of the paper is a set join over millions of
//! simulated addresses: blocklisted ∩ NATed, blocklisted ∩ dynamic-/24,
//! the Figure 4 funnel. Hash sets answer those joins one probe at a time
//! with poor locality and a fresh allocation per call site; this crate
//! replaces them with sorted-array indexes in the style of routing-table
//! software:
//!
//! * [`IpSet`] — a deduplicated, sorted `Vec<u32>` of IPv4 addresses.
//!   Membership is a binary search; intersections, unions and counts are
//!   single linear merges over contiguous memory.
//! * [`PrefixSet`] — the same representation for `/24` prefixes, with
//!   merge-joins against an [`IpSet`] ("how many of these addresses fall
//!   inside these prefixes?") that convert each address to its prefix
//!   exactly once.
//!
//! Both types are plain data: cheap to clone, `Send + Sync`, and
//! deterministic in iteration order — which is what lets the parallel
//! study orchestrator hand them across threads and still produce
//! byte-identical results.

mod ipset;
mod prefixset;

/// The workspace's shared FNV-1a 64 implementation, re-exported from
/// `ar-simnet` for crates that sit above the join layer (`ar-serve`
/// checksums verdict streams with it; `ar-bench` digests artifacts).
pub use ar_simnet::fnv;
pub use ipset::IpSet;
pub use prefixset::{weighted_prefix_intersection, PrefixSet};
