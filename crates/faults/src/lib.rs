//! # ar-faults — seeded, deterministic fault plans for the measurement pipeline
//!
//! Real measurement campaigns run against a hostile, lossy Internet: whole
//! ASes fall off the routing table for hours, the crawler host crashes
//! mid-crawl, blocklist feeds miss collection days or ship truncated files,
//! Atlas probes go dark, and DHT packet loss comes in bursts rather than
//! i.i.d. drops. This crate schedules all of those failures up front as a
//! [`FaultPlan`] — a pure function of `(Seed, FaultConfig, FaultDomain)` —
//! so a faulted study is exactly as reproducible as a fault-free one.
//!
//! Two invariants make the plan safe to thread through every subsystem:
//!
//! 1. **Zero intensity is a strict no-op.** A plan generated at intensity
//!    0.0 has every schedule empty, every `has_*` probe returns `false`,
//!    and consumers take their unfaulted code paths — output stays
//!    byte-identical to a study with no plan at all.
//! 2. **Fault coins never touch consumer RNG streams.** The plan is
//!    generated from its own forked seed, and per-packet loss decisions use
//!    the stateless [`coin`] hash over `(plan seed, time, endpoint, nonce)`
//!    rather than advancing any simulation RNG, so injecting faults cannot
//!    perturb the rest of the simulation's randomness.

pub mod coin;
pub mod plan;
pub mod serve_plan;

pub use plan::{
    AtlasGap, Blackout, CrawlerOutage, FaultConfig, FaultDomain, FaultPlan, FaultSpec, FeedFault,
    FeedFaultKind, LossBurst, PlanSummary,
};
pub use serve_plan::{
    ClientMisbehavior, ServeFaultConfig, ServeFaultPlan, ServePlanSummary, SnapshotFault,
};
