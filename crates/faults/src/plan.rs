//! The fault plan: every scheduled failure for one study, generated up
//! front from a seed so that injection is reproducible and thread-count
//! independent.

use ar_simnet::asn::Asn;
use ar_simnet::rng::Seed;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow, HOUR};
use rand::Rng;
use serde::Serialize;
use std::collections::BTreeMap;

/// Dial positions for fault generation. `intensity` is the master knob
/// (0.0 = nothing, 1.0 = the paper-hostile Internet); the per-class scales
/// let an experiment exaggerate or mute one failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultConfig {
    /// Master fault intensity in `[0, 1]` (values above 1 are allowed and
    /// simply scale schedules further).
    pub intensity: f64,
    /// Per-AS blackout windows (routing incidents, national outages).
    pub blackout_scale: f64,
    /// Crawler-vantage crashes mid-crawl.
    pub outage_scale: f64,
    /// Blocklist feed failures: missed days, truncated or corrupt files.
    pub feed_scale: f64,
    /// Atlas connection-log collection gaps.
    pub atlas_scale: f64,
    /// Bursty elevated DHT packet loss.
    pub dht_scale: f64,
}

impl FaultConfig {
    /// Everything off. `FaultPlan::generate` with this config yields a
    /// provably empty plan.
    pub fn off() -> Self {
        Self::at_intensity(0.0)
    }

    /// All fault classes at their default mix, scaled by one knob.
    pub fn at_intensity(intensity: f64) -> Self {
        FaultConfig {
            intensity,
            blackout_scale: 1.0,
            outage_scale: 1.0,
            feed_scale: 1.0,
            atlas_scale: 1.0,
            dht_scale: 1.0,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.intensity <= 0.0
    }
}

/// What the study exposes to fault generation: the shape of the world the
/// plan schedules failures over. Kept deliberately small so `ar-faults`
/// depends only on `ar-simnet`.
#[derive(Debug, Clone)]
pub struct FaultDomain {
    /// Every AS in the universe (blackout candidates).
    pub asns: Vec<Asn>,
    /// The crawl measurement periods, in order.
    pub periods: Vec<TimeWindow>,
    /// The Atlas connection-log window.
    pub atlas_window: TimeWindow,
    /// Number of blocklist feeds (fault targets are list ids `0..feed_count`).
    pub feed_count: u16,
}

/// The seed + config pair a `StudyConfig` carries; the plan itself is built
/// once the universe (and hence the domain) exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultSpec {
    pub seed: Seed,
    pub config: FaultConfig,
}

impl FaultSpec {
    pub fn new(seed: Seed, intensity: f64) -> Self {
        FaultSpec {
            seed,
            config: FaultConfig::at_intensity(intensity),
        }
    }
}

/// One AS dropping off the routing table for a window: every packet to or
/// from it is lost, every host in it stops responding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Blackout {
    pub asn: Asn,
    pub window: TimeWindow,
}

/// The crawler process dying mid-crawl. The engine must checkpoint at
/// `crash_at` and resume `downtime` later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CrawlerOutage {
    /// Index into `FaultDomain::periods`.
    pub period: usize,
    pub crash_at: SimTime,
    pub downtime: SimDuration,
}

/// How one feed snapshot for one day is damaged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FeedFaultKind {
    /// The collection run never happened; no snapshot for that day.
    MissedDay,
    /// The file was cut off: only the leading `keep` fraction of entries
    /// survives.
    Truncated { keep: f64 },
    /// Line-level corruption: each entry is independently dropped with
    /// probability `drop`.
    CorruptLines { drop: f64 },
}

/// A scheduled feed failure, keyed by list id and snapshot day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FeedFault {
    pub list: u16,
    /// Midnight of the affected collection day.
    pub day: SimTime,
    pub kind: FeedFaultKind,
}

/// An Atlas collection gap: connection-log entries timestamped inside the
/// window never reach the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AtlasGap {
    pub window: TimeWindow,
}

/// A window of elevated DHT loss on top of the baseline i.i.d. loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LossBurst {
    pub window: TimeWindow,
    /// Additional independent drop probability applied to queries in the
    /// window.
    pub extra_loss: f64,
}

/// Aggregate counts for reports and `Degraded` phase annotations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlanSummary {
    pub intensity: f64,
    pub blackouts: usize,
    pub crawler_outages: usize,
    pub feed_missed_days: usize,
    pub feed_truncated: usize,
    pub feed_corrupt: usize,
    pub atlas_gaps: usize,
    pub loss_bursts: usize,
}

/// Every failure scheduled for one study. Pure function of
/// `(Seed, FaultConfig, FaultDomain)`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultPlan {
    pub seed: Seed,
    pub config: FaultConfig,
    pub blackouts: Vec<Blackout>,
    pub crawler_outages: Vec<CrawlerOutage>,
    pub feed_faults: Vec<FeedFault>,
    pub atlas_gaps: Vec<AtlasGap>,
    pub loss_bursts: Vec<LossBurst>,
    /// Blackout windows grouped by AS for O(log n) membership tests.
    #[serde(skip)]
    blackout_index: BTreeMap<Asn, Vec<TimeWindow>>,
    /// Feed faults keyed by `(list, day_index)`.
    #[serde(skip)]
    feed_index: BTreeMap<(u16, u64), FeedFaultKind>,
}

impl FaultPlan {
    /// An explicitly empty plan: every lookup is `false`/`None`/`0.0`.
    pub fn zero(seed: Seed) -> Self {
        FaultPlan {
            seed,
            config: FaultConfig::off(),
            blackouts: Vec::new(),
            crawler_outages: Vec::new(),
            feed_faults: Vec::new(),
            atlas_gaps: Vec::new(),
            loss_bursts: Vec::new(),
            blackout_index: BTreeMap::new(),
            feed_index: BTreeMap::new(),
        }
    }

    /// Schedule every fault class over `domain`. All randomness comes from
    /// `seed.fork("fault-plan")`, so generating a plan never perturbs any
    /// other subsystem's stream, and the same `(seed, config, domain)`
    /// always yields the same plan.
    pub fn generate(seed: Seed, config: &FaultConfig, domain: &FaultDomain) -> Self {
        let mut rng = seed.fork("fault-plan").rng();
        let i = config.intensity.max(0.0);
        let mut plan = FaultPlan::zero(seed);
        plan.config = *config;
        if i == 0.0 {
            return plan;
        }

        // Per-AS blackouts: at full intensity roughly one AS in five loses
        // a 4–36 h window per measurement period.
        if !domain.asns.is_empty() {
            for period in &domain.periods {
                let n = frac_count(
                    &mut rng,
                    i * config.blackout_scale * domain.asns.len() as f64 * 0.2,
                );
                for _ in 0..n {
                    let asn = domain.asns[rng.gen_range(0..domain.asns.len())];
                    let hours = rng.gen_range(4..=36);
                    let start = period.start
                        + HOUR.mul(rng.gen_range(0..(period.duration().as_secs() / 3600).max(1)));
                    let end = (start + HOUR.mul(hours)).min(period.end);
                    plan.blackouts.push(Blackout {
                        asn,
                        window: TimeWindow::new(start, end),
                    });
                }
            }
        }

        // Crawler-vantage outages: at full intensity expect ~1.5 crashes
        // per period, each costing 2–24 h of downtime. Crashes land in the
        // middle 10–80% of the period so there is always a segment to
        // checkpoint and a segment to resume.
        for (idx, period) in domain.periods.iter().enumerate() {
            let n = frac_count(&mut rng, i * config.outage_scale * 1.5);
            let span = period.duration().as_secs();
            let (lo, hi) = (span / 10, (span * 8 / 10).max(span / 10 + 1));
            let mut crashes: Vec<SimTime> = (0..n)
                .map(|_| period.start + SimDuration::from_secs(rng.gen_range(lo..hi)))
                .collect();
            crashes.sort();
            crashes.dedup();
            for crash_at in crashes {
                plan.crawler_outages.push(CrawlerOutage {
                    period: idx,
                    crash_at,
                    downtime: HOUR.mul(rng.gen_range(2..=24)),
                });
            }
        }

        // Feed faults: independent per (list, collection day). At full
        // intensity a day has a 6% chance of being missed outright, 5% of a
        // truncated file, 4% of line corruption.
        let p_missed = (i * config.feed_scale * 0.06).min(1.0);
        let p_trunc = (i * config.feed_scale * 0.05).min(1.0);
        let p_corrupt = (i * config.feed_scale * 0.04).min(1.0);
        for list in 0..domain.feed_count {
            for period in &domain.periods {
                for day in period.days_iter() {
                    let u: f64 = rng.gen();
                    let kind = if u < p_missed {
                        FeedFaultKind::MissedDay
                    } else if u < p_missed + p_trunc {
                        FeedFaultKind::Truncated {
                            keep: rng.gen_range(0.3..0.9),
                        }
                    } else if u < p_missed + p_trunc + p_corrupt {
                        FeedFaultKind::CorruptLines {
                            drop: rng.gen_range(0.05..0.3),
                        }
                    } else {
                        continue;
                    };
                    plan.feed_faults.push(FeedFault { list, day, kind });
                }
            }
        }

        // Atlas collection gaps: up to ~6 gaps of 12 h – 5 days across the
        // (long) connection-log window.
        let n = frac_count(&mut rng, i * config.atlas_scale * 6.0);
        let span = domain.atlas_window.duration().as_secs().max(1);
        for _ in 0..n {
            let start = domain.atlas_window.start + SimDuration::from_secs(rng.gen_range(0..span));
            let end = (start + HOUR.mul(rng.gen_range(12..=120))).min(domain.atlas_window.end);
            plan.atlas_gaps.push(AtlasGap {
                window: TimeWindow::new(start, end),
            });
        }

        // DHT loss bursts: short (1–8 h) windows of sharply elevated loss
        // during the crawl periods.
        for period in &domain.periods {
            let n = frac_count(&mut rng, i * config.dht_scale * 8.0);
            let span = period.duration().as_secs().max(1);
            for _ in 0..n {
                let start = period.start + SimDuration::from_secs(rng.gen_range(0..span));
                let end = (start + HOUR.mul(rng.gen_range(1..=8))).min(period.end);
                plan.loss_bursts.push(LossBurst {
                    window: TimeWindow::new(start, end),
                    extra_loss: (rng.gen_range(0.2..0.8) * i).min(0.95),
                });
            }
        }

        plan.rebuild_indexes();
        plan
    }

    /// Sort schedules into canonical order and rebuild lookup indexes.
    /// Call after mutating the schedule vectors directly (tests, hand-built
    /// plans); `generate` does it for you.
    pub fn rebuild_indexes(&mut self) {
        self.blackouts
            .sort_by_key(|b| (b.asn, b.window.start, b.window.end));
        self.crawler_outages.sort_by_key(|o| (o.period, o.crash_at));
        self.feed_faults.sort_by_key(|f| (f.list, f.day));
        self.atlas_gaps
            .sort_by_key(|g| (g.window.start, g.window.end));
        self.loss_bursts
            .sort_by_key(|b| (b.window.start, b.window.end));
        self.blackout_index.clear();
        for b in &self.blackouts {
            self.blackout_index.entry(b.asn).or_default().push(b.window);
        }
        self.feed_index = self
            .feed_faults
            .iter()
            .map(|f| ((f.list, f.day.day_index()), f.kind))
            .collect();
    }

    // ---- membership probes ------------------------------------------------

    pub fn is_zero(&self) -> bool {
        !self.has_any()
    }

    pub fn has_any(&self) -> bool {
        self.has_network_faults()
            || self.has_outages()
            || self.has_feed_faults()
            || self.has_atlas_gaps()
    }

    /// Anything that perturbs packet delivery (blackouts or loss bursts).
    pub fn has_network_faults(&self) -> bool {
        !self.blackouts.is_empty() || !self.loss_bursts.is_empty()
    }

    pub fn has_outages(&self) -> bool {
        !self.crawler_outages.is_empty()
    }

    pub fn has_feed_faults(&self) -> bool {
        !self.feed_faults.is_empty()
    }

    pub fn has_atlas_gaps(&self) -> bool {
        !self.atlas_gaps.is_empty()
    }

    /// Is `asn` blacked out at `t`? `None` (unrouted space) never is.
    pub fn blackout_at(&self, asn: Option<Asn>, t: SimTime) -> bool {
        let Some(asn) = asn else { return false };
        self.blackout_index
            .get(&asn)
            .is_some_and(|ws| ws.iter().any(|w| w.contains(t)))
    }

    /// Additional drop probability from loss bursts covering `t` (the max
    /// of overlapping bursts, not a product — one saturated path dominates).
    pub fn extra_loss_at(&self, t: SimTime) -> f64 {
        let mut worst = 0.0f64;
        for b in &self.loss_bursts {
            if b.window.start > t {
                break;
            }
            if b.window.contains(t) {
                worst = worst.max(b.extra_loss);
            }
        }
        worst
    }

    /// The scheduled damage (if any) to `list`'s snapshot on `day`.
    pub fn feed_fault(&self, list: u16, day: SimTime) -> Option<FeedFaultKind> {
        self.feed_index.get(&(list, day.day_index())).copied()
    }

    /// Is `t` inside an Atlas collection gap?
    pub fn in_atlas_gap(&self, t: SimTime) -> bool {
        self.atlas_gaps.iter().any(|g| g.window.contains(t))
    }

    /// Outages scheduled for period `idx`, sorted by crash time.
    pub fn outages_for_period(&self, idx: usize) -> Vec<CrawlerOutage> {
        self.crawler_outages
            .iter()
            .filter(|o| o.period == idx)
            .copied()
            .collect()
    }

    pub fn summary(&self) -> PlanSummary {
        let kind_count = |pred: fn(&FeedFaultKind) -> bool| {
            self.feed_faults.iter().filter(|f| pred(&f.kind)).count()
        };
        PlanSummary {
            intensity: self.config.intensity,
            blackouts: self.blackouts.len(),
            crawler_outages: self.crawler_outages.len(),
            feed_missed_days: kind_count(|k| matches!(k, FeedFaultKind::MissedDay)),
            feed_truncated: kind_count(|k| matches!(k, FeedFaultKind::Truncated { .. })),
            feed_corrupt: kind_count(|k| matches!(k, FeedFaultKind::CorruptLines { .. })),
            atlas_gaps: self.atlas_gaps.len(),
            loss_bursts: self.loss_bursts.len(),
        }
    }
}

/// Draw a nonnegative integer with expectation `x`: `floor(x)` plus a
/// Bernoulli on the fractional part. `x = 0` always yields 0.
fn frac_count(rng: &mut impl Rng, x: f64) -> usize {
    let base = x.max(0.0).floor();
    let extra = rng.gen_bool((x.max(0.0) - base).clamp(0.0, 1.0));
    base as usize + extra as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::time::{ATLAS_WINDOW, PERIOD_1, PERIOD_2};

    fn domain() -> FaultDomain {
        FaultDomain {
            asns: (1..=30).map(Asn).collect(),
            periods: vec![PERIOD_1, PERIOD_2],
            atlas_window: ATLAS_WINDOW,
            feed_count: 151,
        }
    }

    #[test]
    fn zero_intensity_is_empty() {
        let plan = FaultPlan::generate(Seed(7), &FaultConfig::off(), &domain());
        assert!(plan.is_zero());
        assert!(!plan.has_any());
        assert!(plan.blackouts.is_empty());
        assert!(plan.crawler_outages.is_empty());
        assert!(plan.feed_faults.is_empty());
        assert!(plan.atlas_gaps.is_empty());
        assert!(plan.loss_bursts.is_empty());
        assert_eq!(plan.extra_loss_at(PERIOD_1.start), 0.0);
        assert!(!plan.blackout_at(Some(Asn(1)), PERIOD_1.start));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(Seed(11), &FaultConfig::at_intensity(0.7), &domain());
        let b = FaultPlan::generate(Seed(11), &FaultConfig::at_intensity(0.7), &domain());
        assert_eq!(a.blackouts, b.blackouts);
        assert_eq!(a.crawler_outages, b.crawler_outages);
        assert_eq!(a.feed_faults, b.feed_faults);
        assert_eq!(a.atlas_gaps, b.atlas_gaps);
        assert_eq!(a.loss_bursts, b.loss_bursts);
        let c = FaultPlan::generate(Seed(12), &FaultConfig::at_intensity(0.7), &domain());
        assert_ne!(a.feed_faults, c.feed_faults, "seed must matter");
    }

    #[test]
    fn nonzero_intensity_schedules_every_class() {
        let plan = FaultPlan::generate(Seed(3), &FaultConfig::at_intensity(1.0), &domain());
        assert!(plan.has_network_faults());
        assert!(plan.has_outages());
        assert!(plan.has_feed_faults());
        assert!(plan.has_atlas_gaps());
        let s = plan.summary();
        assert!(s.blackouts > 0 && s.crawler_outages > 0 && s.loss_bursts > 0);
        assert!(s.feed_missed_days > 0 && s.feed_truncated > 0 && s.feed_corrupt > 0);
    }

    #[test]
    fn schedules_respect_their_windows() {
        let plan = FaultPlan::generate(Seed(5), &FaultConfig::at_intensity(1.0), &domain());
        for b in &plan.blackouts {
            assert!(b.window.start < b.window.end);
            assert!(PERIOD_1.contains(b.window.start) || PERIOD_2.contains(b.window.start));
        }
        for o in &plan.crawler_outages {
            let p = [PERIOD_1, PERIOD_2][o.period];
            assert!(p.contains(o.crash_at), "crash outside its period");
            assert!(!o.downtime.is_zero());
        }
        for g in &plan.atlas_gaps {
            assert!(ATLAS_WINDOW.contains(g.window.start));
            assert!(g.window.end <= ATLAS_WINDOW.end);
        }
        for burst in &plan.loss_bursts {
            assert!((0.0..=0.95).contains(&burst.extra_loss));
        }
        for f in &plan.feed_faults {
            assert!(f.list < 151);
            assert_eq!(f.day, f.day.floor_day());
        }
    }

    #[test]
    fn lookups_match_schedules() {
        let plan = FaultPlan::generate(Seed(9), &FaultConfig::at_intensity(1.0), &domain());
        let b = plan.blackouts[0];
        assert!(plan.blackout_at(Some(b.asn), b.window.start));
        assert!(!plan.blackout_at(None, b.window.start));
        let f = plan.feed_faults[0];
        assert_eq!(plan.feed_fault(f.list, f.day), Some(f.kind));
        assert_eq!(plan.feed_fault(f.list, f.day + HOUR.mul(5)), Some(f.kind));
        let g = plan.atlas_gaps[0];
        assert!(plan.in_atlas_gap(g.window.start));
        assert!(!plan.in_atlas_gap(ATLAS_WINDOW.end + HOUR));
        let burst = plan.loss_bursts[0];
        assert!(plan.extra_loss_at(burst.window.start) >= burst.extra_loss - 1e-12);
    }

    #[test]
    fn intensity_scales_fault_volume() {
        let lo = FaultPlan::generate(Seed(21), &FaultConfig::at_intensity(0.2), &domain());
        let hi = FaultPlan::generate(Seed(21), &FaultConfig::at_intensity(1.0), &domain());
        assert!(hi.feed_faults.len() > lo.feed_faults.len());
        assert!(hi.blackouts.len() >= lo.blackouts.len());
    }
}
