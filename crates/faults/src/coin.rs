//! Stateless fault coins.
//!
//! Per-packet fault decisions (burst loss, corrupt-line selection) must not
//! advance any simulation RNG — otherwise enabling a fault class would shift
//! every downstream random draw and a "zero extra loss" burst would still
//! change the study. Instead each decision hashes its full identity
//! `(plan seed, time, endpoint, nonce, …)` through a splitmix64 chain: the
//! same decision point always lands the same way, and unrelated decision
//! points are independent.

/// Fold a slice of words into one well-mixed hash.
pub fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        h ^= p;
        h = splitmix64(h);
    }
    h
}

/// A uniform draw in `[0, 1)` keyed by `parts`.
pub fn unit(parts: &[u64]) -> f64 {
    // 53 high-quality bits → the standard uniform-double construction.
    (mix(parts) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A biased coin keyed by `parts`: true with probability `p`.
pub fn flip(p: f64, parts: &[u64]) -> bool {
    p > 0.0 && unit(parts) < p
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_are_stable_and_distinct() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut acc = 0.0;
        for i in 0..10_000u64 {
            let u = unit(&[99, i]);
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn flip_edge_probabilities() {
        for i in 0..100u64 {
            assert!(!flip(0.0, &[i]));
            assert!(flip(1.0, &[i]));
        }
    }
}
